"""Shared fixtures for the figure/table regeneration harness.

Every benchmark prints the rows/series the corresponding paper artifact
reports (via repro.analysis.reporting) and asserts the *shape* claims —
who wins, by roughly what factor — not absolute numbers.
"""

import pytest

from repro.runtime.engine import ExperimentEngine


@pytest.fixture(scope="session")
def quick_benchmarks():
    """A representative subset for the slower sweeps."""
    return ("bzip2", "mcf", "libquantum", "sphinx3")


@pytest.fixture(scope="session")
def engine():
    """The fan-out engine for sweep regeneration.

    Serial by default; export ``REPRO_WORKERS=auto`` (or pass
    ``--workers`` via the CLI) to fan the figure sweeps out per core.
    The artifact cache makes repeat benchmark runs nearly free either
    way — set ``REPRO_NO_CACHE=1`` to measure cold paths.
    """
    return ExperimentEngine()
