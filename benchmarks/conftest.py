"""Shared fixtures for the figure/table regeneration harness.

Every benchmark prints the rows/series the corresponding paper artifact
reports (via repro.analysis.reporting) and asserts the *shape* claims —
who wins, by roughly what factor — not absolute numbers.
"""

import pytest


@pytest.fixture(scope="session")
def quick_benchmarks():
    """A representative subset for the slower sweeps."""
    return ("bzip2", "mcf", "libquantum", "sphinx3")
