"""Figure 11 — effect of hardware RAT size on performance.

Paper: even a 32-entry RAT costs only 0.37%; no measurable degradation
at 512 entries or more, because call→return distances are short.
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_table, percent
from repro.workloads import SPEC_NAMES

SIZES = (32, 64, 128, 256, 512, 1024, 2048)


def test_fig11_rat_sizes(benchmark):
    rows = benchmark.pedantic(experiments.fig11_rat_sizes,
                              args=(SPEC_NAMES,), rounds=1, iterations=1,
                              kwargs={"sizes": SIZES})
    print()
    print(format_table(
        ["benchmark"] + [str(size) for size in SIZES],
        [[r.benchmark] + [percent(r.overhead[size]) for size in SIZES]
         for r in rows],
        "Figure 11 — Overhead vs RAT Size (0% = best observed)"))
    for row in rows:
        # large RATs show no meaningful overhead
        assert row.overhead[2048] < 0.02
        assert row.overhead[512] < 0.04
        # even the smallest RAT stays cheap (paper: 0.37% at 32 entries)
        assert row.overhead[32] < 0.25
    average_small = sum(r.overhead[32] for r in rows) / len(rows)
    print(f"average overhead with 32-entry RAT: {percent(average_small)} "
          f"(paper: 0.37%)")
