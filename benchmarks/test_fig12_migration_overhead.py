"""Figure 12 — cross-ISA migration overhead per direction.

Paper: 909 μs average migrating ARM→x86, 1287 μs x86→ARM... (reported
per benchmark from ten random checkpoints).  Note the paper's direction
labels describe the *state production* cost; in our cost model the
expensive direction is landing on the big x86 core.  The shape asserted:
sub-two-millisecond migrations, consistently asymmetric directions.
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_table
from repro.workloads import SPEC_NAMES


def test_fig12_migration_overhead(benchmark):
    rows = benchmark.pedantic(experiments.fig12_migration_overhead,
                              args=(SPEC_NAMES,), rounds=1, iterations=1,
                              kwargs={"checkpoints": 4})
    print()
    print(format_table(
        ["benchmark", "migrations", "arm→x86 (μs)", "x86→arm (μs)"],
        [(r.benchmark, r.migrations, f"{r.arm_to_x86_micros:.0f}",
          f"{r.x86_to_arm_micros:.0f}") for r in rows],
        "Figure 12 — Migration Overhead"))
    measured = [r for r in rows if r.migrations > 0]
    assert measured, "no migrations were recorded"
    avg_to_x86 = sum(r.arm_to_x86_micros for r in measured) / len(measured)
    avg_to_arm = sum(r.x86_to_arm_micros for r in measured) / len(measured)
    print(f"averages: arm→x86 {avg_to_x86:.0f} μs, x86→arm {avg_to_arm:.0f} μs "
          f"(paper: 909 μs / 1287 μs)")
    for row in measured:
        # sub-2ms migrations in both directions
        assert 0 < row.arm_to_x86_micros < 2000 or row.arm_to_x86_micros == 0
        assert row.x86_to_arm_micros < 2000
    # the directions are consistently asymmetric
    assert abs(avg_to_x86 - avg_to_arm) > 10
