"""Ablation — the register-file permutation inside PSR's reallocation.

PSR randomizes both *where values live* and *what raw register names
mean*.  Disabling the permutation (identity map) leaves gadgets that only
touch registers without program values — the `pop r; ret` family —
behaving exactly as the attacker compiled them.  This ablation measures
how much of the obfuscation rate the permutation is responsible for.
"""

from repro.analysis.reporting import format_table, percent
from repro.attacks import PSRGadgetAnalyzer, mine_binary
from repro.workloads import compile_workload

BENCHES = ("mcf", "gobmk", "httpd")


def _identity_analyzer(binary):
    analyzer = PSRGadgetAnalyzer(binary, "x86like", seed=0)

    original = analyzer.reloc_for

    def patched(function):
        reloc = original(function)
        reloc.register_permutation = {
            register: register for register in reloc.register_permutation}
        return reloc

    analyzer.reloc_for = patched
    return analyzer


def _run():
    rows = []
    for name in BENCHES:
        binary = compile_workload(name)
        gadgets = mine_binary(binary, "x86like")
        with_perm = PSRGadgetAnalyzer(binary, "x86like", seed=0)
        without = _identity_analyzer(binary)
        moved_with = sum(1 for a in with_perm.analyze_all(gadgets)
                         if a.operands_moved)
        moved_without = sum(1 for a in without.analyze_all(gadgets)
                            if a.operands_moved)
        rows.append((name, len(gadgets), moved_with, moved_without))
    return rows


def test_ablation_register_permutation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["benchmark", "gadgets", "operands moved (perm)",
         "operands moved (identity)"],
        rows, "Ablation — register-file permutation"))
    for name, total, with_perm, without in rows:
        # the permutation only ever widens the rewritten set
        assert with_perm >= without
    total_gain = sum(w - wo for _, _, w, wo in rows)
    print(f"gadgets additionally rewritten by the permutation: {total_gain}")
    assert total_gain >= 0
