"""Table 2 — brute-force simulation (Algorithm 1).

Paper: 6–7 randomizable parameters per gadget, 84–90 bits of entropy,
and ~1e33–1e34 attempts to brute force a four-gadget execve chain, with
and without register bias — computationally infeasible either way.

Our gadget populations (and therefore the n³f⁴ terms) are smaller, so
absolute attempt counts are lower, but they remain astronomically beyond
any realistic attacker, and the bias/no-bias columns stay the same order
of magnitude, as in the paper.
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_table
from repro.workloads import SPEC_NAMES

#: any attack needing more attempts than this is infeasible in practice
INFEASIBILITY_BAR = 1e15


def test_table2_bruteforce(benchmark):
    rows = benchmark.pedantic(experiments.table2_bruteforce,
                              args=(SPEC_NAMES,), rounds=1, iterations=1)
    print()
    print(format_table(
        ["benchmark", "params", "entropy(bits)", "attempts(no bias)",
         "attempts(bias)"],
        [(r.benchmark, f"{r.randomizable_parameters:.2f}",
          f"{r.entropy_bits:.0f}", f"{r.attempts_no_bias:.2e}",
          f"{r.attempts_bias:.2e}") for r in rows],
        "Table 2 — Inferences from Brute Force Simulation"))
    for row in rows:
        assert row.randomizable_parameters >= 1.0
        assert row.entropy_bits >= 13.0       # at least the return address
        assert row.attempts_no_bias > INFEASIBILITY_BAR
        assert row.attempts_bias > INFEASIBILITY_BAR
        # bias and no-bias stay within a few orders of magnitude
        ratio = row.attempts_bias / row.attempts_no_bias
        assert 1e-4 < ratio < 1e4
