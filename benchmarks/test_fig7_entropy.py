"""Figure 7 — entropy vs gadget-chain length.

Paper: Isomeron and heterogeneous-ISA migration alone grow as 2^k (one
bit per gadget — every 1-in-256 attempt succeeds at chain length 8);
PSR-based systems dwarf them at every chain length.
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_series


def test_fig7_entropy(benchmark):
    lengths = tuple(range(1, 13))
    series = benchmark.pedantic(experiments.fig7_entropy,
                                args=(lengths,), rounds=1, iterations=1)
    print()
    print(format_series(series, lengths,
                        "Figure 7 — Entropy vs Gadget Chain Length "
                        "(clipped at 1024 for display, as in the paper)"))
    uncapped = experiments.fig7_entropy(lengths, cap=None)
    for index, k in enumerate(lengths):
        assert uncapped["isomeron"][index] == 2.0 ** k
        assert uncapped["het_isa"][index] == 2.0 ** k
        # PSR-based defenses dominate the 1-bit diversifiers everywhere
        assert uncapped["hipstr"][index] > uncapped["isomeron"][index]
        assert uncapped["psr+isomeron"][index] >= uncapped["psr"][index]
    # the paper's example: a chain of 8 against Isomeron needs only 256
    assert uncapped["isomeron"][7] == 256
