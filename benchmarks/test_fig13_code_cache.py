"""Figure 13 — effect of code-cache size on security-migration overhead.

Paper: zero indirect control transfers miss a code cache of 768 KB or
larger — no security-induced migrations in steady state; below that,
capacity misses (and therefore migration-triggering events) climb.
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_table
from repro.workloads import SPEC_NAMES

SIZES = (2048, 4096, 8192, 16384, 65536, 786432)


def test_fig13_code_cache(benchmark):
    rows = benchmark.pedantic(experiments.fig13_code_cache,
                              args=(SPEC_NAMES,), rounds=1, iterations=1,
                              kwargs={"sizes": SIZES})
    print()
    table_rows = []
    for row in rows:
        for size in SIZES:
            cells = row.by_size[size]
            table_rows.append((row.benchmark, size,
                               int(cells["capacity_misses"]),
                               int(cells["security_events"]),
                               f"{100 * cells['overhead']:.2f}%"))
    print(format_table(
        ["benchmark", "cache bytes", "capacity misses", "security events",
         "overhead"],
        table_rows, "Figure 13 — Effect of Code Cache Size"))
    for row in rows:
        largest = row.by_size[max(SIZES)]
        smallest = row.by_size[min(SIZES)]
        # a large cache never capacity-misses: no security-induced
        # migrations beyond compulsory ones (the paper's ≥768 KB result)
        assert largest["capacity_misses"] == 0
        # shrinking the cache only increases pressure
        assert smallest["capacity_misses"] >= largest["capacity_misses"]
        assert smallest["security_events"] >= largest["security_events"]
