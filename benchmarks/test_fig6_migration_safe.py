"""Figure 6 — percentage of migration-safe basic blocks.

Paper: ~45% natively, raised to ~78% by on-demand migration, similar in
both directions.  Our compiler maintains stable per-function allocations
by design, so both fractions come out higher (see EXPERIMENTS.md); the
shape claim checked here is the ordering and the directional symmetry.
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_table, percent
from repro.workloads import SPEC_NAMES


def test_fig6_migration_safety(benchmark):
    rows = benchmark.pedantic(experiments.fig6_migration_safety,
                              args=(SPEC_NAMES,), rounds=1, iterations=1)
    print()
    print(format_table(
        ["benchmark", "blocks", "native-safe", "on-demand",
         "x86→arm", "arm→x86"],
        [(r.benchmark, r.total_blocks, percent(r.native_fraction),
          percent(r.ondemand_fraction), percent(r.x86_to_arm),
          percent(r.arm_to_x86)) for r in rows],
        "Figure 6 — Migration-Safe Basic Blocks"))
    for row in rows:
        # on-demand migration never lowers safety
        assert row.ondemand_fraction >= row.native_fraction
        # both directions are broadly symmetric
        assert abs(row.x86_to_arm - row.arm_to_x86) < 0.25
        # on-demand safety is high enough to support probabilistic
        # security migration (paper's 78% bar)
        assert row.ondemand_fraction >= 0.70
