"""§7.1 httpd case study.

Paper: httpd exposes 169,272 gadgets; PSR obfuscates 99.7%; brute force
needs 1.8e32 attempts; 84 gadgets are available for JIT-ROP but only two
survive heterogeneous-ISA migration — insufficient for any exploit.
"""

from repro.analysis import experiments
from repro.analysis.reporting import percent


def test_httpd_case_study(benchmark):
    study = benchmark.pedantic(experiments.httpd_case_study,
                               rounds=1, iterations=1)
    print()
    print("httpd case study (§7.1)")
    print(f"  total gadgets:          {study.total_gadgets} "
          f"(paper: 169,272 — real httpd is ~1000x larger)")
    print(f"  obfuscated:             {percent(study.obfuscated_fraction)} "
          f"(paper: 99.7%)")
    print(f"  brute-force attempts:   {study.brute_force_attempts:.2e} "
          f"(paper: 1.8e32)")
    print(f"  JIT-ROP viable gadgets: {study.jitrop_viable} (paper: 84)")
    print(f"  survive migration:      {study.surviving_migration} "
          f"(paper: 2)")
    print(f"  exploit constructible:  {study.chain_possible} (paper: no)")
    assert study.obfuscated_fraction >= 0.95
    assert study.brute_force_attempts > 1e15
    assert study.surviving_migration <= 3
    assert not study.chain_possible
