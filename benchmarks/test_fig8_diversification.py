"""Figure 8 — surviving gadget surface vs diversification probability.

Paper: PSR+Isomeron and HIPStR coincide at p=0 but diverge rapidly: at
p=1, same-ISA diversification leaves hundreds of immune gadgets while
HIPStR retains about two on average (none at all on five of eight).
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_series
from repro.workloads import SPEC_NAMES

PROBABILITIES = tuple(i / 10 for i in range(11))


def test_fig8_diversification(benchmark):
    series = benchmark.pedantic(
        experiments.fig8_diversification,
        args=(SPEC_NAMES, PROBABILITIES), rounds=1, iterations=1)
    print()
    print(format_series(series, PROBABILITIES,
                        "Figure 8 — Surviving Gadgets vs "
                        "Diversification Probability (suite average)"))
    iso = series["psr+isomeron"]
    hipstr = series["hipstr"]
    # identical starting point at p = 0
    assert abs(iso[0] - hipstr[0]) < 1e-9
    # both shrink with p; HIPStR shrinks to (almost) nothing
    assert hipstr[-1] <= iso[-1]
    assert hipstr[-1] < hipstr[0] * 0.2
    # cross-ISA immunity is far rarer than same-ISA immunity at p = 1
    assert hipstr[-1] <= max(iso[-1], 1.0)
    print(f"at p=1: psr+isomeron keeps {iso[-1]:.1f} gadgets/bench, "
          f"HIPStR keeps {hipstr[-1]:.1f} (paper: hundreds vs ~2)")
