"""Figure 10 — effect of additional stack randomization space.

Paper: growing per-frame randomization space from 8 KB to 64 KB costs
only ~3% on average — sparse frames leave empty space between items that
never enters the cache.
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_table, percent
from repro.workloads import SPEC_NAMES

PAGES = (2, 4, 8, 16)          # S8 / S16 / S32 / S64


def test_fig10_stack_sizes(benchmark):
    rows = benchmark.pedantic(experiments.fig10_stack_sizes,
                              args=(SPEC_NAMES,), rounds=1, iterations=1,
                              kwargs={"pages": PAGES})
    labels = [f"S{p * 4}" for p in PAGES]
    print()
    print(format_table(
        ["benchmark"] + labels,
        [[r.benchmark] + [percent(r.relative[label]) for label in labels]
         for r in rows],
        "Figure 10 — Relative Performance vs Randomization Space"))
    averages = {label: sum(r.relative[label] for r in rows) / len(rows)
                for label in labels}
    print("averages:", {k: percent(v) for k, v in averages.items()})
    drop = averages["S8"] - averages["S64"]
    print(f"S8 → S64 average drop: {percent(drop)} (paper: 2.96%)")
    # growing the frame 8x costs only a few percent
    assert drop < 0.15
    # every configuration stays a workable fraction of native
    for row in rows:
        for label in labels:
            assert row.relative[label] > 0.4
