"""Ablation — run-time re-randomization vs load-time randomization.

The paper's observation (1): PSR re-randomizes on every crash/respawn,
which is what breaks Blind-ROP's incremental crash-oracle learning.  The
campaign pits the same attacker against both regimes at equal entropy.
"""

from repro.analysis.reporting import format_table
from repro.attacks.blindrop import campaign


def test_ablation_rerandomization(benchmark):
    stats = benchmark.pedantic(campaign, rounds=1, iterations=1,
                               kwargs={"secret_bits": 12, "trials": 15,
                                       "seed": 3})
    print()
    print(format_table(
        ["defense", "success rate", "mean attempts", "analytic expectation"],
        [("load-time", stats["load-time"]["success_rate"],
          f"{stats['load-time']['mean_attempts']:.1f}",
          stats["analytic"]["load-time"]),
         ("psr (re-randomizing)", stats["psr"]["success_rate"],
          f"{stats['psr']['mean_attempts']:.1f}",
          stats["analytic"]["psr"])],
        f"Ablation — Blind-ROP vs re-randomization "
        f"({stats['secret_bits']}-bit secret)"))
    # incremental learning cracks the fixed secret in ~bits attempts
    assert stats["load-time"]["success_rate"] == 1.0
    assert stats["load-time"]["mean_attempts"] < 2 * stats["secret_bits"]
    # re-randomization forces exponential cost
    assert stats["psr"]["mean_attempts"] > \
        stats["load-time"]["mean_attempts"] * 10
    print("At the paper's 87-bit per-gadget entropy the re-randomizing "
          "expectation is 2^87 attempts — infeasible on any hardware.")
