"""Figure 9 — steady-state performance at PSR optimization levels.

Paper: -O1 (block placement + superblocks) helps little by itself; the
-O2 global register cache recovers ~13%; -O3's register bias adds ~5.5%,
for a final overhead of ~13% vs native.  The shape asserted here: higher
levels never hurt on average, and the O1→O2 register-cache step is the
big win.
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_table, percent
from repro.workloads import SPEC_NAMES


def test_fig9_opt_levels(benchmark):
    rows = benchmark.pedantic(experiments.fig9_opt_levels,
                              args=(SPEC_NAMES,), rounds=1, iterations=1)
    print()
    print(format_table(
        ["benchmark", "PSR-O1", "PSR-O2", "PSR-O3"],
        [(r.benchmark, percent(r.relative["O1"]), percent(r.relative["O2"]),
          percent(r.relative["O3"])) for r in rows],
        "Figure 9 — Relative Performance vs Native (100% = native)"))
    averages = {
        level: sum(r.relative[level] for r in rows) / len(rows)
        for level in ("O1", "O2", "O3")
    }
    print("averages:", {k: percent(v) for k, v in averages.items()},
          "(paper final: 86.9%)")
    # O2's register cache is a real improvement over O1 on average
    assert averages["O2"] > averages["O1"]
    # O3 does not regress O2 meaningfully
    assert averages["O3"] > averages["O2"] * 0.97
    # the final configuration runs at a large fraction of native speed
    assert averages["O3"] > 0.60
    for row in rows:
        for level in ("O1", "O2", "O3"):
            assert 0.2 < row.relative[level] <= 1.2
