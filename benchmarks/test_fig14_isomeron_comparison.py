"""Figure 14 — performance comparison with Isomeron.

Paper: Isomeron's per-call diversifier (which also defeats branch
prediction) costs substantially more than HIPStR at every diversification
probability; HIPStR outperforms it by 15.6% on average, and a larger code
cache keeps HIPStR nearly flat as p grows.
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_table, percent
from repro.workloads import ISOMERON_COMPARISON_NAMES

PROBABILITIES = (0.0, 0.5, 1.0)


def test_fig14_isomeron_comparison(benchmark):
    rows = benchmark.pedantic(
        experiments.fig14_isomeron_comparison,
        args=(ISOMERON_COMPARISON_NAMES, PROBABILITIES),
        rounds=1, iterations=1)
    print()
    print(format_table(
        ["p", "isomeron", "psr+isomeron", "hipstr-256k", "hipstr-2m"],
        [(r.probability, percent(r.relative["isomeron"]),
          percent(r.relative["psr+isomeron"]),
          percent(r.relative["hipstr-256k"]),
          percent(r.relative["hipstr-2m"]))
         for r in rows],
        "Figure 14 — Relative Performance vs Native (suite average)"))
    for row in rows:
        # HIPStR with the big cache beats Isomeron at every probability
        assert row.relative["hipstr-2m"] > row.relative["isomeron"]
        # and beats the PSR+Isomeron hybrid too
        assert row.relative["hipstr-2m"] > row.relative["psr+isomeron"]
    gains = [row.relative["hipstr-2m"] - row.relative["isomeron"]
             for row in rows]
    average_gain = sum(gains) / len(gains)
    print(f"average HIPStR advantage over Isomeron: {percent(average_gain)} "
          f"(paper: 15.6%)")
    assert average_gain > 0.05
