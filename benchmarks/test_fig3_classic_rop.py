"""Figure 3 — classic ROP attack surface: obfuscated vs unobfuscated.

Paper: PSR reduces the classic-ROP attack surface by an average of
98.04%; the unobfuscated remainder is a sliver whose identity the
attacker cannot predict.
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_table, percent
from repro.workloads import SPEC_NAMES


def test_fig3_classic_rop(benchmark, engine):
    rows = benchmark.pedantic(experiments.fig3_classic_rop,
                              args=(SPEC_NAMES,),
                              kwargs={"engine": engine},
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["benchmark", "total", "obfuscated", "unobfuscated", "obf%"],
        [(r.benchmark, r.total_gadgets, r.obfuscated, r.unobfuscated,
          percent(r.obfuscated_fraction)) for r in rows],
        "Figure 3 — Classic ROP Attack Surface"))
    average = sum(r.obfuscated_fraction for r in rows) / len(rows)
    print(f"average obfuscated: {percent(average)} (paper: 98.04%)")
    # Shape: PSR obfuscates essentially the whole classic surface.
    assert average >= 0.95
    for row in rows:
        assert row.total_gadgets > 0
        assert row.obfuscated_fraction >= 0.90
