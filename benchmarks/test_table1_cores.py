"""Table 1 — core configurations (sanity: the configs drive a real gap).

Table 1 is an input, not a result; this harness checks the derived
heterogeneity is live: the x86 core config executes the same workload
measurably faster than the ARM core config, which is the premise of
phase-driven performance migration.
"""

from repro.analysis import perfrun
from repro.analysis.experiments import _perf_binary
from repro.perf.cores import ARM_CORE, X86_CORE
from repro.workloads import WORKLOADS


def _gap():
    binary = _perf_binary("mcf")
    x86 = perfrun.measure_native(binary, "x86like")
    arm = perfrun.measure_native(binary, "armlike")
    return x86, arm


def test_table1_cores(benchmark):
    x86, arm = benchmark.pedantic(_gap, rounds=1, iterations=1)
    print()
    print(f"Table 1 check — mcf on both cores:")
    print(f"  x86 core: {x86.instructions} ins, {x86.cycles:.0f} cyc, "
          f"{x86.seconds * 1e3:.2f} ms  (fetch {X86_CORE.fetch_width}, "
          f"ROB {X86_CORE.rob_size}, {X86_CORE.frequency_hz / 1e9:.1f} GHz)")
    print(f"  arm core: {arm.instructions} ins, {arm.cycles:.0f} cyc, "
          f"{arm.seconds * 1e3:.2f} ms  (fetch {ARM_CORE.fetch_width}, "
          f"ROB {ARM_CORE.rob_size}, {ARM_CORE.frequency_hz / 1e9:.1f} GHz)")
    # Table 1 parameters as published
    assert X86_CORE.rob_size == 128 and ARM_CORE.rob_size == 20
    assert X86_CORE.frequency_hz == 3.3e9 and ARM_CORE.frequency_hz == 2.0e9
    assert X86_CORE.int_alus == 6 and ARM_CORE.int_alus == 2
    # the big core is really faster on the same program
    assert x86.seconds < arm.seconds
