"""Figure 4 — brute-force attack surface: eliminated vs surviving.

Paper: a sizable portion (average 15.83%) of all gadgets stays viable
for brute force — they perform useful computation, just not what the
attacker intended.  In this reproduction the fraction is larger (our
small clean binaries are enriched in intended epilogue gadgets relative
to SPEC's unaligned junk; see EXPERIMENTS.md), but the shape holds:
a strict subset survives, and everything surviving is still obfuscated.
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_table, percent
from repro.workloads import SPEC_NAMES


def test_fig4_bruteforce_surface(benchmark, engine):
    rows = benchmark.pedantic(experiments.fig4_bruteforce_surface,
                              args=(SPEC_NAMES,),
                              kwargs={"engine": engine},
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["benchmark", "total", "eliminated", "surviving", "surviving%"],
        [(r.benchmark, r.total_gadgets, r.eliminated, r.surviving,
          percent(r.surviving_fraction)) for r in rows],
        "Figure 4 — Brute Force Attack Surface"))
    for row in rows:
        # a strict, nonzero subset survives for brute force
        assert 0 < row.surviving < row.total_gadgets
    average = sum(r.surviving_fraction for r in rows) / len(rows)
    print(f"average surviving: {percent(average)} (paper: 15.83%)")
