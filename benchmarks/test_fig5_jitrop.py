"""Figure 5 — JIT-ROP attack surface under PSR and HIPStR.

Paper: only code already randomized into the code cache is exposed;
of the surviving gadgets, nearly all flag a breach on entry (migration),
leaving a handful — insufficient for even a four-gadget exploit.
"""

from repro.analysis import experiments
from repro.analysis.reporting import format_table
from repro.workloads import SPEC_NAMES


def test_fig5_jitrop(benchmark):
    rows = benchmark.pedantic(experiments.fig5_jitrop,
                              args=(SPEC_NAMES,), rounds=1, iterations=1)
    print()
    print(format_table(
        ["benchmark", "text gadgets", "cache gadgets", "viable",
         "flagging", "surviving"],
        [(r.benchmark, r.text_gadgets, r.cache_gadgets, r.cache_viable,
          r.flagging, r.surviving) for r in rows],
        "Figure 5 — JIT-ROP Attack Surface (PSR → HIPStR)"))
    total_surviving = sum(r.surviving for r in rows)
    print(f"total survivors across suite: {total_surviving} "
          f"(paper: ~27 per benchmark pre-safety, ~2 after)")
    for row in rows:
        # almost every viable cache gadget flags a breach on entry
        assert row.flagging >= row.cache_viable * 0.5
        # the survivors cannot form even the simplest 4-gadget chain
        assert row.surviving < 4
