"""Ablation — superblock formation (-O1's branch inlining).

Section 5.4: folding unconditional branches into superblocks duplicates
code but improves instruction-cache locality and reduces dispatch work.
This ablation runs the same workload with superblocks on and off and
compares translated-unit counts, code size, and modelled performance.
"""

from repro.analysis import perfrun
from repro.analysis.experiments import _perf_binary
from repro.analysis.reporting import format_table
from repro.core import PSRConfig
from repro.workloads import WORKLOADS

BENCHES = ("bzip2", "mcf", "libquantum")


def _run():
    rows = []
    for name in BENCHES:
        stdin = WORKLOADS[name].stdin
        binary = _perf_binary(name)
        native = perfrun.measure_native(binary, stdin=stdin)
        cells = {}
        for label, enabled in (("on", True), ("off", False)):
            config = PSRConfig(opt_level=3, superblocks=enabled)
            measured, vm = perfrun.measure_psr(binary, config=config,
                                               seed=0, stdin=stdin)
            cells[label] = {
                "relative": measured.relative_to(native),
                "units": vm.cache.stats.installs,
                "bytes": vm.cache.stats.bytes_installed,
            }
        rows.append((name, cells))
    return rows


def test_ablation_superblocks(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["benchmark", "rel(on)", "rel(off)", "units(on)", "units(off)",
         "bytes(on)", "bytes(off)"],
        [(name, f"{c['on']['relative']:.3f}", f"{c['off']['relative']:.3f}",
          c["on"]["units"], c["off"]["units"],
          c["on"]["bytes"], c["off"]["bytes"]) for name, c in rows],
        "Ablation — superblock formation"))
    for name, cells in rows:
        # inlining duplicates code: more bytes, but at least as few units
        assert cells["on"]["bytes"] >= cells["off"]["bytes"] * 0.8
        # and never costs meaningful performance
        assert cells["on"]["relative"] >= cells["off"]["relative"] * 0.9
