"""Static CISC→RISC transpilation: the offline complement to dynamic PSR.

Where the migration engine relocates *running* program state between
ISAs, this package relocates the *binary itself*: :func:`transpile_binary`
decodes the compiled x86like section, lifts each instruction through a
rule table into the armlike encoding under a fixed register map, and
re-emits a :class:`TranspiledBinary` whose frame layouts, symbol table,
and call-site contract are byte-compatible with what the compiler would
have produced — so the interpreter, the migration engine, and the
Galileo miner all accept it unchanged.

Three verification tiers back the claim (see DESIGN.md):

1. **static** — the HIP7xx verifier pass family re-proves per-block
   symbolic equivalence of original vs lifted code and audits the
   register/frame remapping (:mod:`repro.staticcheck.transpilecheck`);
2. **fuzz** — :mod:`repro.transpile.fuzzing` differential-tests randomly
   generated programs natively and under fault-injected HIPStR runs;
3. **surface** — :mod:`repro.transpile.surface` mines the gadget
   populations of original, transpiled, and migration-diversified
   variants for the paper's encoding-asymmetry argument.
"""

from ..errors import TranspileError
from .fuzzing import (
    TranspileFuzzReport,
    fuzz_run,
    generate_cases,
    load_corpus,
    run_case,
    save_corpus,
)
from .lifter import (
    REGISTER_MAP,
    LiftContext,
    TranspiledBinary,
    lift_instruction,
    transpile_binary,
)
from .surface import SurfaceRow, gadget_surface, gadget_surface_row

__all__ = [
    "LiftContext",
    "REGISTER_MAP",
    "SurfaceRow",
    "TranspileError",
    "TranspileFuzzReport",
    "TranspiledBinary",
    "fuzz_run",
    "gadget_surface",
    "gadget_surface_row",
    "generate_cases",
    "lift_instruction",
    "load_corpus",
    "run_case",
    "save_corpus",
    "transpile_binary",
]
