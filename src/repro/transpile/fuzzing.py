"""Differential fuzzing of the static transpiler (verification tier 2).

The static tier (HIP7xx) proves per-block equivalence symbolically; this
tier checks the end-to-end property the proof is standing in for: for a
randomly generated mini-C program,

* the lifted armlike section must produce the **exact native exit code**
  of the original x86like section, and
* a HIPStR run *on the transpiled binary* — migrating through lifted
  code, with faults injected — must match that exit code or fail with a
  typed error, exactly like the chaos invariant for compiled binaries.

The harness deliberately reuses the chaos machinery (program generator,
schedules, outcomes, per-case fault-plan derivation) so a transpile fuzz
run is replayable from one ``--fault-seed`` and can be frozen into the
regression corpus under ``tests/corpus/`` with the same JSON shape.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from ..compiler import compile_minic
from ..core.hipstr import run_under_hipstr
from ..core.runner import run_native
from ..errors import ReproError, TranspileError
from ..faults import injection
from ..faults.fuzz import (
    CASE_MAX_INSTRUCTIONS,
    CaseOutcome,
    ChaosCase,
    ChaosReport,
    MigrationSchedule,
    ProgramGenerator,
    _outcome_of,
    case_plan,
    load_corpus,
    save_corpus,
)
from ..faults.plan import FaultPlan, default_plan
from .lifter import transpile_binary

__all__ = [
    "CaseOutcome", "ChaosCase", "TranspileFuzzReport", "fuzz_run",
    "generate_cases", "load_corpus", "run_case", "save_corpus",
]


def generate_cases(fault_seed: int, count: int) -> List[ChaosCase]:
    """The deterministic case list for one transpile fuzz run.

    Distinct seed namespace from the chaos harness, so the two corpora
    exercise different programs even at the same ``--fault-seed``.
    """
    cases = []
    for index in range(count):
        rng = random.Random(f"transpile-case:{fault_seed}:{index}")
        source = ProgramGenerator(rng).generate()
        schedule = MigrationSchedule.random(rng)
        cases.append(ChaosCase(case_id=f"transpile-{fault_seed}-{index}",
                               source=source, schedule=schedule))
    return cases


def run_case(case: ChaosCase, base_plan: FaultPlan) -> CaseOutcome:
    """Compile, transpile, then differential-test the lifted binary.

    Status vocabulary extends the chaos harness's with two transpiler
    failure modes, both counted as failures by :attr:`CaseOutcome.ok`:
    ``lift-error`` (the lifter refused a decodable program) and
    ``lift-divergence`` (clean native execution of the lifted section
    disagrees with the original — the core property violated with no
    faults involved at all).
    """
    binary = compile_minic(case.source)
    native = run_native(binary, "x86like",
                        max_instructions=CASE_MAX_INSTRUCTIONS).os.exit_code
    try:
        transpiled = transpile_binary(binary)
    except TranspileError as exc:
        return CaseOutcome(case_id=case.case_id, status="lift-error",
                           native_exit=native, detail=str(exc)[:200])
    lifted = run_native(transpiled, "armlike",
                        max_instructions=CASE_MAX_INSTRUCTIONS).os.exit_code
    if native is None or lifted != native:
        return CaseOutcome(
            case_id=case.case_id, status="lift-divergence",
            native_exit=native, chaos_exit=lifted,
            detail=f"x86like={native} lifted-armlike={lifted}")

    plan = case_plan(base_plan, case.case_id)
    previous = injection.get()
    injector = injection.install(plan)
    outcome = CaseOutcome(case_id=case.case_id, status="ok",
                          native_exit=native)
    try:
        schedule = case.schedule
        try:
            _, result = run_under_hipstr(
                transpiled, seed=schedule.seed,
                migration_probability=schedule.migration_probability,
                start_isa=schedule.start_isa,
                phase_interval=schedule.phase_interval,
                max_instructions=CASE_MAX_INSTRUCTIONS)
        except ReproError as exc:
            outcome.status = f"detected:{type(exc).__name__}"
            outcome.detail = str(exc)[:200]
        except Exception as exc:     # untyped escape = taxonomy hole
            outcome.status = f"crash:{type(exc).__name__}"
            outcome.detail = str(exc)[:200]
        else:
            outcome.chaos_exit = result.exit_code
            outcome.migrations = result.migration_count
            outcome.rollbacks = result.rollbacks
            outcome.dropped = result.dropped_migrations
            if result.result.reason != "halt":
                outcome.status = "nohalt"
                outcome.detail = result.result.reason
            elif result.exit_code != native:
                outcome.status = "divergence"
                outcome.detail = (f"native={native} "
                                  f"chaos={result.exit_code}")
        outcome.fault_counts = dict(injector.counts)
        outcome.fault_digest = injector.log_digest()
    finally:
        if previous is None:
            injection.uninstall()
        else:
            injection.install(previous)
    return outcome


def _case_job(case_dict: Dict[str, Any], plan_spec: str) -> Dict[str, Any]:
    """Module-level engine job: run one case (picklable by reference)."""
    case = ChaosCase.from_dict(case_dict)
    return run_case(case, FaultPlan.from_spec(plan_spec)).to_dict()


class TranspileFuzzReport(ChaosReport):
    """Aggregate of one transpile fuzz run (chaos-report semantics)."""


def fuzz_run(fault_seed: int, iterations: int,
             plan: Optional[FaultPlan] = None,
             engine=None,
             cases: Optional[List[ChaosCase]] = None
             ) -> TranspileFuzzReport:
    """Run ``iterations`` differential cases, optionally fanned out.

    ``cases`` overrides generation for corpus replay; each case installs
    its own derived injector inside the case runner, so results are
    identical serial or parallel.
    """
    base = plan if plan is not None \
        else default_plan(fault_seed).with_seed(fault_seed)
    if cases is None:
        cases = generate_cases(fault_seed, iterations)
    if engine is not None:
        from ..runtime.engine import Job
        jobs = [Job(key=case.case_id, fn=_case_job,
                    args=(case.to_dict(), base.to_spec()),
                    workload=case.case_id)
                for case in cases]
        outcomes = [_outcome_of(result) for result in engine.run(jobs)]
    else:
        outcomes = [run_case(case, base) for case in cases]
    return TranspileFuzzReport(fault_seed=fault_seed, iterations=iterations,
                               outcomes=outcomes)
