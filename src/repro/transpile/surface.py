"""Gadget-surface comparison: original vs transpiled vs diversified.

The paper's security argument is an *encoding* argument — the dense,
byte-granular CISC encoding exposes a large unintended gadget surface
that the aligned RISC encoding cannot express, and migration-based
diversification shrinks what remains.  Static transpilation gives that
argument a third column: the same program, same frame contract, same
symbol table, re-expressed in the aligned encoding.  This module mines
all three variants with Galileo and emits one comparison row per
workload:

* **original** — Galileo over the compiled x86like section;
* **transpiled** — Galileo over the lifted armlike section (alignment
  should erase the unintended population outright);
* **diversified** — the original's viable gadget population after
  HIPStR-style cross-ISA migration diversification (what survives).

Rows are cached through the artifact store (the binary digest covers
section bytes, so lifted binaries key separately) and mirrored into
``transpile.gadget_surface{workload,variant}`` counters so a traced
``repro transpile`` run renders the comparison under ``repro report``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..attacks.galileo import gadget_population_summary
from ..obs import context as obs
from .lifter import TranspiledBinary, transpile_binary


@dataclass(frozen=True)
class SurfaceRow:
    """Gadget counts of one workload's three binary variants."""

    workload: str
    #: Galileo population of the compiled x86like section
    original: Dict[str, int]
    #: Galileo population of the lifted armlike section
    transpiled: Dict[str, int]
    #: viable original gadgets (the attackable sub-population)
    viable: int
    #: viable gadgets immune to cross-ISA migration diversification
    diversified_immune: int

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def gadget_surface_row(name: str, binary,
                       transpiled: Optional[TranspiledBinary] = None,
                       seed: int = 0) -> SurfaceRow:
    """Mine one workload's three variants into a comparison row."""
    from ..runtime.artifacts import immunity_cached, mine_binary_cached

    if transpiled is None:
        transpiled = transpile_binary(binary)
    with obs.span("transpile.surface", workload=name):
        original = gadget_population_summary(
            mine_binary_cached(binary, "x86like"))
        lifted = gadget_population_summary(
            mine_binary_cached(transpiled, "armlike"))
        immunity = immunity_cached(binary, name, seed=seed)
    row = SurfaceRow(workload=name, original=original, transpiled=lifted,
                     viable=immunity.viable_gadgets,
                     diversified_immune=immunity.cross_isa_immune)
    if obs.enabled():
        registry = obs.get_registry()
        registry.counter("transpile.gadget_surface", workload=name,
                         variant="original").inc(original["total"])
        registry.counter("transpile.gadget_surface", workload=name,
                         variant="transpiled").inc(lifted["total"])
        registry.counter("transpile.gadget_surface", workload=name,
                         variant="diversified").inc(row.diversified_immune)
    return row


def gadget_surface(names: Optional[Sequence[str]] = None, work: int = 1,
                   seed: int = 0) -> List[SurfaceRow]:
    """Comparison rows for the benchmark suite (or a named subset)."""
    from ..workloads.suite import WORKLOADS, compile_workload

    rows = []
    for name in (names if names is not None else sorted(WORKLOADS)):
        binary = compile_workload(name, work=work)
        rows.append(gadget_surface_row(name, binary, seed=seed))
    return rows
