"""Static x86like → armlike binary transpilation (the lifter).

This is the complement of HIPStR's *dynamic* program-state relocation:
instead of migrating a live process between the fat binary's two code
sections, the lifter decodes the x86like text section instruction by
instruction — with no source program — and re-emits a semantically
equal armlike text section.  The shared semantic :class:`~repro.isa.
base.Op` vocabulary is the pivot IR; what changes is purely the
*encoding*: registers are renamed through :data:`REGISTER_MAP`,
CISC-only forms (memory-operand ALU, immediate pushes, wide
immediates) are expanded into short RISC sequences over two reserved
scratch registers, and the x86 calling convention's implicit
return-address push becomes an explicit ``PUSH LR`` at each function
entry (``CALL`` lifts to ``BL``, which writes the link register).

Because the frame contract is preserved exactly — same shared
:class:`~repro.compiler.frames.FrameLayout`, same callee-save count,
same ``words_above`` — the produced :class:`TranspiledBinary` is a
drop-in fat binary: the interpreter runs the lifted section natively,
the migration engine relocates into and out of it, the static verifier
proves it block-by-block against the original, and the Galileo miner
measures its gadget surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..compiler.fatbinary import (
    FatBinary,
    _function_end,
    _scan_call_sites,
)
from ..compiler.symtab import (
    ExtendedSymbolTable,
    FunctionInfo,
    ISAFunctionInfo,
)
from ..errors import DecodeError, TranspileError
from ..isa import ARMLIKE, X86LIKE, Assembler
from ..isa.armlike import LR, R3, R7, R12, SP, fits_imm16
from ..isa.base import Imm, Instruction, Label, Mem, Op, Reg, to_signed
from ..isa import x86like as x86
from ..machine.process import Layout
from ..obs import context as obs

#: architectural register renaming, x86like index -> armlike index.
#: The scratch set maps into the armlike scratch set (R0..R2) and the
#: allocatable set maps into the armlike allocatable set (R4/R5/R6/R8),
#: so the rebuilt register assignments stay valid under HIP206.  R7 is
#: deliberately *not* a target: it is the armlike syscall-number
#: register and is only written by the lifted syscall marshalling.
REGISTER_MAP: Dict[int, int] = {
    x86.EAX: 0,          # R0 — return/scratch on both sides
    x86.ECX: 1,          # R1
    x86.EDX: 2,          # R2
    x86.EBX: 4,          # R4
    x86.ESP: SP,
    x86.EBP: 8,          # R8
    x86.ESI: 5,          # R5
    x86.EDI: 6,          # R6
}

#: lifter-private temporaries; both are armlike scratch registers, so
#: they are invisible to the symbolic equivalence contract and are
#: never live across a lifted instruction's expansion.
TEMP = R12
TEMP2 = R3


def _mov_imm(reg: int, value: int) -> List[Instruction]:
    """Materialize a 32-bit constant: one MOVI, or a MOVI/MOVT pair."""
    signed = to_signed(value)
    if fits_imm16(signed):
        return [Instruction(Op.MOV, (Reg(reg), Imm(signed)))]
    low = value & 0xFFFF
    low_signed = low - 0x10000 if low & 0x8000 else low
    return [Instruction(Op.MOV, (Reg(reg), Imm(low_signed))),
            Instruction(Op.MOVT, (Reg(reg), Imm((value >> 16) & 0xFFFF)))]


def _mov_label(reg: int, name: str) -> List[Instruction]:
    """Materialize a symbol address (MOVI lo16 + MOVT hi16)."""
    return [Instruction(Op.MOV, (Reg(reg), Label(name, "lo16"))),
            Instruction(Op.MOVT, (Reg(reg), Label(name, "hi16")))]


@dataclass
class LiftContext:
    """Symbol knowledge the per-instruction rules need.

    ``branch_labels`` maps absolute x86like addresses to symbol names
    (the lifter re-targets every direct branch through a label so the
    armlike assembler re-resolves it); ``function_addresses`` maps
    x86like function entry addresses to names so function-pointer
    *immediates* are re-materialized as armlike address pairs instead
    of stale x86like constants.
    """

    branch_labels: Dict[int, str] = field(default_factory=dict)
    function_addresses: Dict[int, str] = field(default_factory=dict)


class InstructionLifter:
    """Rule table mapping one decoded x86like instruction to armlike."""

    def __init__(self, ctx: Optional[LiftContext] = None):
        self.ctx = ctx or LiftContext()

    # -- operand helpers ----------------------------------------------
    def _reg(self, index: int) -> int:
        try:
            return REGISTER_MAP[index]
        except KeyError:
            raise TranspileError(f"unmappable x86like register r{index}")

    def _mem(self, mem: Mem, temp: int = TEMP
             ) -> Tuple[List[Instruction], Mem]:
        """Map a memory operand, spilling wide displacements to a temp."""
        base = self._reg(mem.base)
        if fits_imm16(mem.disp):
            return [], Mem(base, mem.disp)
        pre = _mov_imm(temp, mem.disp & 0xFFFFFFFF)
        pre.append(Instruction(Op.ADD, (Reg(temp), Reg(base))))
        return pre, Mem(temp, 0)

    def _imm_into(self, reg: int, imm: Imm) -> List[Instruction]:
        """Materialize an immediate, re-linking function pointers."""
        name = self.ctx.function_addresses.get(imm.value)
        if name is not None:
            return _mov_label(reg, name)
        return _mov_imm(reg, imm.value)

    def _label_of(self, operand) -> Label:
        if isinstance(operand, Label):
            return Label(operand.name)
        if isinstance(operand, Imm):
            name = self.ctx.branch_labels.get(operand.value)
            if name is None:
                raise TranspileError(
                    f"branch target {operand.value:#x} has no symbol")
            return Label(name)
        raise TranspileError(f"unsupported branch operand {operand!r}")

    # -- the rules ----------------------------------------------------
    def lift(self, ins: Instruction) -> List[Instruction]:
        """armlike instruction sequence for one x86like instruction."""
        op = ins.op
        handler = _RULES.get(op)
        if handler is None:
            raise TranspileError(f"no lifting rule for {op.name}")
        return handler(self, ins)

    def _lift_simple(self, ins: Instruction) -> List[Instruction]:
        return [Instruction(ins.op)]

    def _lift_syscall(self, ins: Instruction) -> List[Instruction]:
        # x86like convention: number in EAX (→R0), args in EBX/ECX/EDX
        # (→R4/R1/R2).  armlike wants number in R7, args in R0/R1/R2.
        # The number must move *before* R0 is overwritten with arg0;
        # R1/R2 already hold args 1 and 2 under the register map.
        return [
            Instruction(Op.MOV, (Reg(R7), Reg(self._reg(x86.EAX)))),
            Instruction(Op.MOV, (Reg(self._reg(x86.EAX)),
                                 Reg(self._reg(x86.EBX)))),
            Instruction(Op.SYSCALL),
        ]

    def _lift_push(self, ins: Instruction) -> List[Instruction]:
        src = ins.operands[0]
        if isinstance(src, Reg):
            if src.index == x86.ESP:
                raise TranspileError("PUSH esp is not liftable")
            return [Instruction(Op.PUSH, (Reg(self._reg(src.index)),))]
        if isinstance(src, Imm):
            out = self._imm_into(TEMP, src)
            out.append(Instruction(Op.PUSH, (Reg(TEMP),)))
            return out
        pre, mem = self._mem(src)
        pre.append(Instruction(Op.LOAD, (Reg(TEMP2), mem)))
        pre.append(Instruction(Op.PUSH, (Reg(TEMP2),)))
        return pre

    def _lift_pop(self, ins: Instruction) -> List[Instruction]:
        dst = ins.operands[0]
        if isinstance(dst, Reg):
            return [Instruction(Op.POP, (Reg(self._reg(dst.index)),))]
        out = [Instruction(Op.POP, (Reg(TEMP2),))]
        pre, mem = self._mem(dst)
        out.extend(pre)
        out.append(Instruction(Op.STORE, (mem, Reg(TEMP2))))
        return out

    def _lift_mov(self, ins: Instruction) -> List[Instruction]:
        dst, src = ins.operands
        if dst.index == x86.ESP or \
                (isinstance(src, Reg) and src.index == x86.ESP):
            raise TranspileError("MOV involving esp is not liftable")
        if isinstance(src, Imm):
            return self._imm_into(self._reg(dst.index), src)
        return [Instruction(Op.MOV, (Reg(self._reg(dst.index)),
                                     Reg(self._reg(src.index))))]

    def _lift_load(self, ins: Instruction) -> List[Instruction]:
        dst, src = ins.operands
        pre, mem = self._mem(src)
        pre.append(Instruction(ins.op, (Reg(self._reg(dst.index)), mem)))
        return pre

    def _lift_store(self, ins: Instruction) -> List[Instruction]:
        dst, src = ins.operands
        if isinstance(src, Imm):
            out = self._imm_into(TEMP, src)
            pre, mem = self._mem(dst, TEMP2)
            out.extend(pre)
            out.append(Instruction(ins.op, (mem, Reg(TEMP))))
            return out
        pre, mem = self._mem(dst)
        pre.append(Instruction(ins.op, (mem, Reg(self._reg(src.index)))))
        return pre

    def _lift_lea(self, ins: Instruction) -> List[Instruction]:
        dst, src = ins.operands
        rd = self._reg(dst.index)
        base = self._reg(src.base)
        if not fits_imm16(src.disp):
            raise TranspileError(
                f"LEA displacement {src.disp:#x} exceeds armlike range")
        if rd != base:
            return [Instruction(Op.LEA, (Reg(rd), Mem(base, src.disp)))]
        # rd == rn would decode as ADDI; ADD rd, disp computes the same
        # address when the base *is* the destination
        return [Instruction(Op.ADD, (Reg(rd), Imm(src.disp)))]

    def _lift_alu(self, ins: Instruction) -> List[Instruction]:
        op = ins.op
        dst, src = ins.operands
        if isinstance(dst, Mem):
            # CISC op-store form: load, operate, store back (CMP only
            # reads, so it skips the store).  The address temp (TEMP2,
            # for wide displacements) stays live across the sequence.
            pre, mem = self._mem(dst, TEMP2)
            out = list(pre)
            out.append(Instruction(Op.LOAD, (Reg(TEMP), mem)))
            if isinstance(src, Imm):
                if op in _IMM_ALU_OPS and fits_imm16(src.signed):
                    out.append(Instruction(op, (Reg(TEMP),
                                                Imm(src.signed))))
                else:
                    raise TranspileError(
                        f"{op.name} mem, {src!r} is not liftable")
            else:
                out.append(Instruction(op, (Reg(TEMP),
                                            Reg(self._reg(src.index)))))
            if op is not Op.CMP:
                out.append(Instruction(Op.STORE, (mem, Reg(TEMP))))
            return out
        if dst.index == x86.ESP:
            if op in (Op.ADD, Op.SUB) and isinstance(src, Imm) \
                    and fits_imm16(src.signed):
                return [Instruction(op, (Reg(SP), Imm(src.signed)))]
            raise TranspileError(f"{op.name} on esp is not liftable")
        rd = self._reg(dst.index)
        if isinstance(src, Imm):
            name = self.ctx.function_addresses.get(src.value)
            if op in _IMM_ALU_OPS and fits_imm16(src.signed) \
                    and name is None:
                return [Instruction(op, (Reg(rd), Imm(src.signed)))]
            out = self._imm_into(TEMP, src)
            out.append(Instruction(op, (Reg(rd), Reg(TEMP))))
            return out
        if isinstance(src, Mem):
            # CISC load-op form: load into a temp, then register ALU
            pre, mem = self._mem(src)
            pre.append(Instruction(Op.LOAD, (Reg(TEMP), mem)))
            pre.append(Instruction(op, (Reg(rd), Reg(TEMP))))
            return pre
        if src.index == x86.ESP:
            raise TranspileError(f"{op.name} reading esp is not liftable")
        return [Instruction(op, (Reg(rd), Reg(self._reg(src.index))))]

    def _lift_unary(self, ins: Instruction) -> List[Instruction]:
        dst = ins.operands[0]
        return [Instruction(ins.op, (Reg(self._reg(dst.index)),))]

    def _lift_jmp(self, ins: Instruction) -> List[Instruction]:
        return [Instruction(Op.JMP, (self._label_of(ins.operands[0]),))]

    def _lift_jcc(self, ins: Instruction) -> List[Instruction]:
        return [Instruction(Op.JCC, (self._label_of(ins.operands[0]),),
                            cond=ins.cond)]

    def _lift_call(self, ins: Instruction) -> List[Instruction]:
        return [Instruction(Op.CALL, (self._label_of(ins.operands[0]),))]

    def _lift_indirect(self, ins: Instruction) -> List[Instruction]:
        target = ins.operands[0]
        if isinstance(target, Reg):
            if target.index == x86.ESP:
                raise TranspileError("indirect transfer through esp")
            return [Instruction(ins.op, (Reg(self._reg(target.index)),))]
        pre, mem = self._mem(target, TEMP2)
        pre.append(Instruction(Op.LOAD, (Reg(TEMP), mem)))
        pre.append(Instruction(ins.op, (Reg(TEMP),)))
        return pre


#: ALU opcodes with an armlike immediate encoding
_IMM_ALU_OPS = frozenset({Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR,
                          Op.SHL, Op.SHR, Op.SAR, Op.CMP})

_RULES = {
    Op.NOP: InstructionLifter._lift_simple,
    Op.HLT: InstructionLifter._lift_simple,
    Op.RET: InstructionLifter._lift_simple,
    Op.SYSCALL: InstructionLifter._lift_syscall,
    Op.PUSH: InstructionLifter._lift_push,
    Op.POP: InstructionLifter._lift_pop,
    Op.MOV: InstructionLifter._lift_mov,
    Op.LOAD: InstructionLifter._lift_load,
    Op.LOADB: InstructionLifter._lift_load,
    Op.STORE: InstructionLifter._lift_store,
    Op.STOREB: InstructionLifter._lift_store,
    Op.LEA: InstructionLifter._lift_lea,
    Op.ADD: InstructionLifter._lift_alu,
    Op.SUB: InstructionLifter._lift_alu,
    Op.MUL: InstructionLifter._lift_alu,
    Op.DIV: InstructionLifter._lift_alu,
    Op.MOD: InstructionLifter._lift_alu,
    Op.AND: InstructionLifter._lift_alu,
    Op.OR: InstructionLifter._lift_alu,
    Op.XOR: InstructionLifter._lift_alu,
    Op.SHL: InstructionLifter._lift_alu,
    Op.SHR: InstructionLifter._lift_alu,
    Op.SAR: InstructionLifter._lift_alu,
    Op.CMP: InstructionLifter._lift_alu,
    Op.NEG: InstructionLifter._lift_unary,
    Op.NOT: InstructionLifter._lift_unary,
    Op.JMP: InstructionLifter._lift_jmp,
    Op.JCC: InstructionLifter._lift_jcc,
    Op.CALL: InstructionLifter._lift_call,
    Op.ICALL: InstructionLifter._lift_indirect,
    Op.IJMP: InstructionLifter._lift_indirect,
}


def lift_instruction(ins: Instruction,
                     ctx: Optional[LiftContext] = None) -> List[Instruction]:
    """Lift one decoded x86like instruction to its armlike sequence."""
    return InstructionLifter(ctx).lift(ins)


# ----------------------------------------------------------------------
# Whole-binary transpilation
# ----------------------------------------------------------------------
@dataclass
class TranspiledBinary(FatBinary):
    """A fat binary whose armlike section was *lifted*, not compiled.

    Shape-compatible with :class:`~repro.compiler.fatbinary.FatBinary`
    everywhere (interpreter, migration engine, Galileo, verifier); the
    extra fields record provenance so the HIP7xx verifier pass family
    knows to apply its transpilation-specific checks.
    """

    transpiled_from: str = "x86like"
    lift_stats: Dict[str, int] = field(default_factory=dict)


def _validate_source_section(binary: FatBinary, source_isa: str) -> None:
    """Pre-lift gate: the source section's CFG must recover cleanly."""
    from ..staticcheck.cfg import recover_cfgs
    from ..staticcheck.findings import Severity

    findings: List = []
    recover_cfgs(binary, source_isa, findings)
    errors = [f for f in findings if f.severity is Severity.ERROR]
    if errors:
        head = "; ".join(f.render() for f in errors[:3])
        raise TranspileError(
            f"{source_isa} section failed CFG recovery before lifting: "
            f"{head}", findings=findings)


def transpile_binary(binary: FatBinary, source_isa: str = "x86like",
                     target_isa: str = "armlike") -> TranspiledBinary:
    """Lift ``binary``'s x86like section into a fresh armlike section.

    The result keeps the original x86like section verbatim and replaces
    the armlike side with lifted code, with the extended symbol table
    rebuilt so both views stay navigable (entries, block addresses,
    call sites, and the register assignment renamed through
    :data:`REGISTER_MAP`).
    """
    if source_isa != X86LIKE.name or target_isa != ARMLIKE.name:
        raise TranspileError(
            f"unsupported transpilation {source_isa} -> {target_isa}")
    _validate_source_section(binary, source_isa)

    unit = binary.sections[source_isa]
    addr_to_names: Dict[int, List[str]] = {}
    for name, address in unit.symbols.items():
        addr_to_names.setdefault(address, []).append(name)
    for names in addr_to_names.values():
        names.sort()

    function_entries: Dict[int, str] = {}
    for info in binary.symtab:
        function_entries[info.per_isa[source_isa].entry] = info.name

    ctx = LiftContext(
        branch_labels={address: names[0]
                       for address, names in addr_to_names.items()},
        function_addresses=dict(function_entries),
    )
    lifter = InstructionLifter(ctx)

    asm = Assembler(ARMLIKE)
    stats = {"functions": len(function_entries), "instructions": 0,
             "lifted_instructions": 0}
    address = unit.base_address
    with obs.span("transpile.lift", source=source_isa, target=target_isa):
        while address < unit.end_address:
            names = addr_to_names.get(address, [])
            fname = function_entries.get(address)
            if fname is not None:
                # the entry label binds before the return-address save;
                # any co-located block label binds after it, so empty
                # prologues keep PUSH LR out of the entry block
                asm.label(fname)
                asm.emit(Instruction(Op.PUSH, (Reg(LR),)))
                stats["lifted_instructions"] += 1
                for name in names:
                    if name != fname:
                        asm.label(name)
            else:
                for name in names:
                    asm.label(name)
            try:
                dec = X86LIKE.decode(unit.data,
                                     address - unit.base_address, address)
            except DecodeError as exc:
                raise TranspileError(
                    f"undecodable {source_isa} bytes at {address:#x}: "
                    f"{exc}") from exc
            lifted = lifter.lift(dec.instruction)
            for ins in lifted:
                asm.emit(ins)
            stats["instructions"] += 1
            stats["lifted_instructions"] += len(lifted)
            address = dec.end

    lifted_unit = asm.assemble(Layout.CODE_BASES[target_isa])

    symtab = ExtendedSymbolTable()
    function_names = [info.name for info in binary.symtab]
    for info in binary.symtab:
        src_info = info.per_isa[source_isa]
        entry = lifted_unit.address_of(info.name)
        end = _function_end(lifted_unit, info.name, function_names)
        target_info = ISAFunctionInfo(
            isa_name=target_isa,
            entry=entry,
            end=end,
            block_addresses={
                label: lifted_unit.address_of(label)
                for label in src_info.block_addresses},
            saved_registers=[REGISTER_MAP[reg]
                             for reg in src_info.saved_registers],
            register_assignment={
                value: REGISTER_MAP[reg]
                for value, reg in src_info.register_assignment.items()},
            call_sites=_scan_call_sites(lifted_unit, entry, end),
        )
        symtab.add(FunctionInfo(
            name=info.name,
            params=list(info.params),
            layout=info.layout,
            liveness=info.liveness,
            block_order=list(info.block_order),
            per_isa={source_isa: src_info, target_isa: target_info},
        ))

    if obs.enabled():
        obs.get_registry().counter("transpile.functions").inc(
            stats["functions"])

    return TranspiledBinary(
        program=binary.program,
        sections={source_isa: unit, target_isa: lifted_unit},
        data=binary.data,
        global_addresses=dict(binary.global_addresses),
        symtab=symtab,
        transpiled_from=source_isa,
        lift_stats=stats,
    )
