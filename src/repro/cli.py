"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE``        — compile mini-C and execute (native / PSR / HIPStR)
* ``disasm FILE``     — compile and disassemble the fat binary
* ``gadgets FILE``    — Galileo-mine the binary and summarize the surface
* ``exploit-demo``    — the Figure-1 attack, end to end
* ``experiment NAME`` — regenerate one paper artifact (fig3..fig14,
  table2, httpd) and print its table
* ``bench``           — profile the pipeline (serial vs parallel, cold vs
  warm cache) and write a ``BENCH_*.json`` trajectory file
* ``verify``          — statically verify fat binaries (CFG recovery,
  cross-ISA consistency, IR lints, gadget audit); exit 1 on errors
* ``transpile``       — statically lift the x86like section of each
  workload into armlike code and verify the result (HIP7xx static
  proof, differential execution, optional gadget-surface comparison);
  exit 1 on any failure
* ``chaos``           — property-based differential fault injection:
  random programs × random migration schedules under injected faults;
  every case must match clean native execution or fail *typed*; exit 1
  on any silent divergence (reproducible via ``--fault-seed``)
* ``report FILE``     — summarize a captured ``*.jsonl`` trace (phases,
  jobs, counters, histograms, cache hit rate, migrations); also emits
  flamegraphs (``--flamegraph``), the critical path
  (``--critical-path``), and Prometheus text (``--format prom``)
* ``top [RUN]``       — render a journaled run's live status file
  (jobs, workers, breakers, cache, faults), live or post-hoc

``experiment`` and ``bench`` share the runtime flags ``--workers``
(process fan-out; 0 = one per core), ``--no-cache``, ``--cache-dir``,
and ``--trace FILE`` (capture a metrics + span trace; ``REPRO_TRACE``
is the environment equivalent).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from . import obs
from .analysis import experiments
from .analysis.reporting import format_series, format_table, percent
from .attacks import gadget_population_summary, mine_binary
from .compiler import compile_minic
from .core import PSRConfig, run_native, run_under_psr
from .core.hipstr import run_under_hipstr
from .errors import (
    JournalCorruptError, ReproError, ResumeMismatchError, RunInterrupted)
from .isa import ISAS, linear_disassemble
from .obs.report import (
    render_critical_path, render_flamegraph_file, render_report)
from .runtime import (
    ExperimentEngine,
    Job,
    PhaseProfiler,
    collect,
    configure_cache,
    get_cache,
    write_bench_file,
)
from .runtime import artifacts as runtime_artifacts
from .runtime import durable, supervisor
# the per-workload transpile job lives in repro.serve.spec so the CLI
# and the serve daemon share one implementation; the alias keeps the
# picklable module-level entry point the worker fan-out expects
from .serve.spec import transpile_workload_job as _transpile_workload_job
from .workloads import WORKLOADS, compile_workload


def _load_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r") as handle:
        return handle.read()


def cmd_run(args: argparse.Namespace) -> int:
    binary = compile_minic(_load_source(args.file))
    stdin = b""
    if args.stdin_file:
        with open(args.stdin_file, "rb") as handle:
            stdin = handle.read()

    if args.hipstr:
        system, result = run_under_hipstr(
            binary, seed=args.seed, stdin=stdin,
            migration_probability=args.migration_probability,
            config=PSRConfig(opt_level=args.opt_level))
        print(f"[hipstr] exit={result.exit_code} "
              f"migrations={result.migration_count} "
              f"per-isa={result.steps_by_isa}")
        return result.exit_code or 0
    if args.psr:
        run = run_under_psr(binary, args.isa,
                            PSRConfig(opt_level=args.opt_level),
                            seed=args.seed, stdin=stdin)
        stats = run.vm.stats
        print(f"[psr/{args.isa}] exit={run.exit_code} "
              f"units={stats.units_installed} "
              f"maps={stats.relocation_maps_built} "
              f"security-events={stats.security_events}")
        return run.exit_code or 0
    process = run_native(binary, args.isa, stdin=stdin)
    if process.os.stdout:
        sys.stdout.buffer.write(bytes(process.os.stdout))
    print(f"[native/{args.isa}] exit={process.os.exit_code} "
          f"instructions={process.interpreter.steps_executed}")
    return process.os.exit_code or 0


def cmd_disasm(args: argparse.Namespace) -> int:
    binary = compile_minic(_load_source(args.file))
    isa = ISAS[args.isa]
    section = binary.sections[args.isa]
    decoded = linear_disassemble(isa, section.data, section.base_address)
    symbols = {address: name for name, address in section.symbols.items()}
    for item in decoded:
        label = symbols.get(item.address)
        if label:
            print(f"\n{label}:")
        print(f"  {item.address:#010x}:  {item.raw.hex():<16}  "
              f"{item.instruction.render(isa)}")
    return 0


def cmd_gadgets(args: argparse.Namespace) -> int:
    binary = compile_minic(_load_source(args.file))
    rows = []
    for isa_name in binary.isa_names:
        summary = gadget_population_summary(mine_binary(binary, isa_name))
        rows.append((isa_name, summary["total"], summary["rop"],
                     summary["jop"], summary["unintended"]))
    print(format_table(["ISA", "total", "rop", "jop", "unintended"], rows,
                       "Galileo gadget populations"))
    if args.psr:
        from .attacks import PSRGadgetAnalyzer
        analyzer = PSRGadgetAnalyzer(binary, "x86like", seed=args.seed)
        analyses = analyzer.analyze_all(mine_binary(binary, "x86like"))
        obfuscated = sum(1 for a in analyses if a.obfuscated)
        viable = sum(1 for a in analyses if a.brute_force_viable)
        print(f"\nunder PSR (seed {args.seed}): "
              f"{percent(obfuscated / max(len(analyses), 1))} obfuscated, "
              f"{viable} brute-force viable")
    return 0


def _exploit_demo_inline() -> int:
    from .attacks.payload import (attack_native, attack_psr, build_exploit,
                                  build_vulnerable_binary)
    binary = build_vulnerable_binary()
    payload = build_exploit(binary)
    native = attack_native(binary, payload)
    print(f"unprotected: shell spawned = {native.shell_spawned}")
    for seed in range(3):
        outcome = attack_psr(binary, payload, seed=seed)
        print(f"PSR epoch {seed}: shell spawned = {outcome.shell_spawned}")
    return 0


#: circuit breakers open after this many consecutive terminal failures
#: of one workload (CLI default; ``--breaker 0`` disables)
DEFAULT_BREAKER_THRESHOLD = 3


def _configure_runtime(args: argparse.Namespace) -> ExperimentEngine:
    """Apply the shared ``--workers``/``--no-cache``/``--cache-dir``/
    ``--trace``/``--journal``/``--supervise``/``--breaker`` flags."""
    no_cache = getattr(args, "no_cache", False)
    cache_dir = getattr(args, "cache_dir", None)
    if no_cache or cache_dir:
        configure_cache(root=cache_dir, enabled=not no_cache)
    trace_path = getattr(args, "trace", None) or os.environ.get(obs.ENV_TRACE)
    if trace_path:
        # export before any worker processes spawn so they come up
        # enabled and ship their captures home with each JobResult
        os.environ[obs.ENV_TRACE] = str(trace_path)
        obs.enable()
    args.trace_path = trace_path

    # per-workload circuit breaker (ambient; the engine reads it per run)
    threshold = supervisor.resolve_breaker_threshold(
        getattr(args, "breaker", None), default=DEFAULT_BREAKER_THRESHOLD)
    if threshold > 0:
        cooldown = supervisor.resolve_breaker_cooldown(
            getattr(args, "breaker_cooldown", None))
        breaker = supervisor.CircuitBreaker(threshold, cooldown=cooldown)
        state = durable.get_resume_state()
        if state is not None and not getattr(args, "force", False):
            breaker.preload(state.replay.breaker_open)
        supervisor.set_current_breaker(breaker)
    else:
        supervisor.set_current_breaker(None)

    # write-ahead run journal (skipped when `repro resume` already
    # attached one before re-dispatching this command)
    journal_dir = getattr(args, "journal", None) \
        or os.environ.get(durable.ENV_JOURNAL)
    if journal_dir and durable.get_current_journal() is None:
        journal = durable.RunJournal.create(journal_dir,
                                            argv=getattr(args, "argv", []))
        durable.set_current_journal(journal)
        print(f"[journal] run {journal.run_id} -> {journal.path}")
    if durable.get_current_journal() is not None:
        durable.install_sigterm_handler()
    _recount_resume_faults()
    return ExperimentEngine(
        workers=getattr(args, "workers", None),
        supervise=getattr(args, "supervise", None) or None,
        batch=getattr(args, "batch", None))


def _recount_resume_faults() -> None:
    """Fold journaled engine-level faults back into the live counters.

    The process that injected ``orchestrator.kill`` / ``worker.hang``
    died with its in-memory metrics; the journal's ``fault_injected``
    records are the durable copy.  Re-counting each (plus one matching
    ``faults.recovered`` with ``action=resume``) keeps the chaos
    invariant *injected == recovered + detected* balanced across the
    crash boundary.
    """
    state = durable.get_resume_state()
    if state is None or state.recounted or not obs.enabled():
        return
    state.recounted = True
    registry = obs.get_registry()
    for record in state.replay.fault_records:
        registry.counter("faults.injected",
                         site=record.get("site", ""),
                         kind=record.get("kind", "")).inc()
        registry.counter("faults.recovered",
                         site=record.get("site", ""),
                         action="resume").inc()


def _typed_errors(fn):
    """Normalize expected failures to the ``report`` convention.

    Bad input — a missing corpus file, a malformed spec, an out-of-range
    rate scale, a resume mismatch — must surface as one ``error:`` line
    on stderr and exit code 1, never a traceback.  ``RunInterrupted``
    passes through untouched: it is control flow, handled by ``main``.
    """
    import functools

    @functools.wraps(fn)
    def wrapper(args: argparse.Namespace) -> int:
        try:
            return fn(args)
        except RunInterrupted:
            raise
        except (ReproError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    return wrapper


def _finalize_trace(args: argparse.Namespace, label: str) -> None:
    """Write the captured trace + final metrics snapshot, if tracing."""
    path = getattr(args, "trace_path", None)
    if not path:
        return
    get_cache().export_to(obs.get_registry())
    written = obs.write_trace(path, label=label)
    print(f"[trace] wrote {written}")


# Experiment renderers consume the *plain-data payloads* produced by
# :func:`repro.serve.spec.execute_spec` — the same payload a ``repro
# serve`` response carries — so the CLI and the service layer cannot
# drift apart.  Payloads went through a canonical JSON round-trip, so
# numeric dict keys (RAT sizes, cache sizes) arrive as strings and are
# re-sorted numerically here.

def _print_fig3(payload) -> None:
    print(format_table(
        ["benchmark", "total", "obfuscated", "unobf", "obf%"],
        [(r["benchmark"], r["total_gadgets"], r["obfuscated"],
          r["unobfuscated"], percent(r["obfuscated_fraction"]))
         for r in payload["rows"]],
        "Figure 3 — Classic ROP Attack Surface"))


def _print_fig4(payload) -> None:
    print(format_table(
        ["benchmark", "total", "eliminated", "surviving"],
        [(r["benchmark"], r["total_gadgets"], r["eliminated"],
          r["surviving"]) for r in payload["rows"]],
        "Figure 4 — Brute Force Attack Surface"))


def _print_fig5(payload) -> None:
    print(format_table(
        ["benchmark", "text", "cache", "viable", "surviving"],
        [(r["benchmark"], r["text_gadgets"], r["cache_gadgets"],
          r["cache_viable"], r["surviving"]) for r in payload["rows"]],
        "Figure 5 — JIT-ROP Attack Surface"))


def _print_fig6(payload) -> None:
    print(format_table(
        ["benchmark", "blocks", "native", "on-demand"],
        [(r["benchmark"], r["total_blocks"], percent(r["native_fraction"]),
          percent(r["ondemand_fraction"])) for r in payload["rows"]],
        "Figure 6 — Migration-Safe Basic Blocks"))


def _print_fig7(payload) -> None:
    print(format_series(payload["series"], payload["lengths"],
                        "Figure 7 — Entropy vs Chain Length"))


def _print_fig8(payload) -> None:
    print(format_series(payload["series"],
                        [f"{p:.1f}" for p in payload["probabilities"]],
                        "Figure 8 — Surviving Gadgets vs Probability"))


def _print_fig9(payload) -> None:
    print(format_table(
        ["benchmark", "O1", "O2", "O3"],
        [(r["benchmark"],) + tuple(f"{r['relative'][level]:.3f}"
                                   for level in ("O1", "O2", "O3"))
         for r in payload["rows"]],
        "Figure 9 — Relative Performance per Optimization Level"))


def _print_fig10(payload) -> None:
    rows = payload["rows"]
    labels = sorted({label for r in rows for label in r["relative"]},
                    key=lambda label: int(label[1:]))
    print(format_table(
        ["benchmark"] + labels,
        [(r["benchmark"],) + tuple(f"{r['relative'][label]:.3f}"
                                   for label in labels) for r in rows],
        "Figure 10 — Stack Randomization Space"))


def _print_fig11(payload) -> None:
    rows = payload["rows"]
    sizes = sorted({int(size) for r in rows for size in r["overhead"]})
    print(format_table(
        ["benchmark"] + [str(size) for size in sizes],
        [(r["benchmark"],) + tuple(
            f"{r['overhead'][str(size)] * 100:.1f}%" for size in sizes)
         for r in rows],
        "Figure 11 — RAT Size Overhead"))


def _print_fig12(payload) -> None:
    print(format_table(
        ["benchmark", "arm→x86 µs", "x86→arm µs", "migrations"],
        [(r["benchmark"], f"{r['arm_to_x86_micros']:.2f}",
          f"{r['x86_to_arm_micros']:.2f}", r["migrations"])
         for r in payload["rows"]],
        "Figure 12 — Migration Overhead"))


def _print_fig13(payload) -> None:
    for row in payload["rows"]:
        sizes = sorted(row["by_size"], key=int)
        print(format_table(
            ["size", "capacity-misses", "security-events", "overhead"],
            [(int(size), int(row["by_size"][size]["capacity_misses"]),
              int(row["by_size"][size]["security_events"]),
              f"{row['by_size'][size]['overhead'] * 100:.1f}%")
             for size in sizes],
            f"Figure 13 — Code Cache ({row['benchmark']})"))


def _print_fig14(payload) -> None:
    systems = ["isomeron", "psr+isomeron", "hipstr-256k", "hipstr-2m"]
    print(format_table(
        ["p"] + systems,
        [(f"{r['probability']:.1f}",) + tuple(f"{r['relative'][s]:.3f}"
                                              for s in systems)
         for r in payload["rows"]],
        "Figure 14 — Comparison with Isomeron"))


def _print_table2(payload) -> None:
    print(format_table(
        ["benchmark", "params", "bits", "attempts"],
        [(r["benchmark"], f"{r['randomizable_parameters']:.2f}",
          f"{r['entropy_bits']:.0f}", f"{r['attempts_no_bias']:.2e}")
         for r in payload["rows"]],
        "Table 2 — Brute Force Simulation"))


def _print_httpd(payload) -> None:
    study = payload["study"]
    print(f"httpd: {study['total_gadgets']} gadgets, "
          f"{percent(study['obfuscated_fraction'])} obfuscated, "
          f"{study['brute_force_attempts']:.2e} attempts, "
          f"{study['jitrop_viable']} JIT-ROP viable, "
          f"{study['surviving_migration']} survive migration")


EXPERIMENTS = {
    "fig3": _print_fig3,
    "fig4": _print_fig4,
    "fig5": _print_fig5,
    "fig6": _print_fig6,
    "fig7": _print_fig7,
    "fig8": _print_fig8,
    "fig9": _print_fig9,
    "fig10": _print_fig10,
    "fig11": _print_fig11,
    "fig12": _print_fig12,
    "fig13": _print_fig13,
    "fig14": _print_fig14,
    "table2": _print_table2,
    "httpd": _print_httpd,
}


def cmd_experiment(args: argparse.Namespace) -> int:
    renderer = EXPERIMENTS.get(args.name)
    if renderer is None:
        print(f"unknown experiment {args.name!r}; "
              f"available: {', '.join(sorted(EXPERIMENTS))}",
              file=sys.stderr)
        return 2
    engine = _configure_runtime(args)
    # the CLI is a thin builder of the same RequestSpec the serve
    # daemon deserializes off the wire; both funnel through execute_spec
    from .serve.spec import RequestSpec, execute_spec
    spec = RequestSpec(kind="experiment", params={"name": args.name})
    renderer(execute_spec(spec, engine=engine))
    if getattr(args, "cache_stats", False):
        stats = get_cache().stats
        print(f"\n[cache] hits={stats.hits} misses={stats.misses} "
              f"hit-rate={stats.hit_rate:.1%}")
    _finalize_trace(args, label=f"experiment:{args.name}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Profile the pipeline and write a ``BENCH_*.json`` trajectory file.

    Phases: artifact warm-up (compile + mine through the cache), the
    attack-surface sweep run cold (cache bypassed) serially, in
    parallel, and in parallel with job batching — the honest engine
    speedups — a native-execution phase timing the interpreter's
    compiled-block hot path, then a cache-populating pass and a
    pure-hit warm pass recording the memoized path's speedup.

    ``--workers`` defaults to one per core here (serial fan-out makes
    the parallel phases meaningless); both the requested and the
    effective worker counts are recorded in the trajectory file.
    """
    _configure_runtime(args)
    benchmarks = tuple(name for name in
                       (args.benchmarks or "bzip2,mcf,libquantum,sphinx3"
                        ).split(",") if name)
    unknown = [name for name in benchmarks if name not in WORKLOADS]
    if unknown or not benchmarks:
        print(f"unknown benchmark(s) {', '.join(unknown) or '(none given)'}; "
              f"available: {', '.join(sorted(WORKLOADS))}", file=sys.stderr)
        return 2
    cache = get_cache()
    supervise = getattr(args, "supervise", None) or None
    requested_workers = args.workers          # None = defaulted, 0 = auto
    serial = ExperimentEngine(workers=1)
    parallel = ExperimentEngine(workers=args.workers or 0,
                                supervise=supervise)
    batched = ExperimentEngine(workers=args.workers or 0,
                               supervise=supervise,
                               batch=(args.batch
                                      if args.batch is not None else 0))
    profiler = PhaseProfiler(args.label)

    def sweep(which: ExperimentEngine):
        experiments.fig3_classic_rop(benchmarks, engine=which)
        experiments.fig4_bruteforce_surface(benchmarks, engine=which)

    with profiler.phase("compile", jobs=len(benchmarks)):
        binaries = {name: compile_workload(name) for name in benchmarks}
    with profiler.phase("mine", jobs=len(binaries)):
        for binary in binaries.values():
            runtime_artifacts.mine_binary_cached(binary, "x86like")
    with profiler.phase("verify-all", jobs=len(binaries)):
        # full static-verifier runtime (all passes, every benchmark) so
        # analysis regressions show up in the perf-smoke comparison
        from .staticcheck import run_verifier
        for binary in binaries.values():
            run_verifier(binary)
    with profiler.phase("transpile-all", jobs=len(binaries)):
        from .transpile import transpile_binary
        for binary in binaries.values():
            transpile_binary(binary)
    with profiler.phase("exec-native", benchmark=benchmarks[0]):
        # end-to-end guest execution: exercises the interpreter's
        # compiled-block dispatch (the threaded-code fast path)
        run_native(binaries[benchmarks[0]], "x86like")
    with profiler.phase("sweep-serial-cold", workers=1):
        with cache.bypass():
            sweep(serial)
    with profiler.phase("sweep-parallel-cold", workers=parallel.workers):
        with cache.bypass():
            sweep(parallel)
    with profiler.phase("sweep-parallel-batched", workers=batched.workers,
                        batch=batched.batch):
        with cache.bypass():
            sweep(batched)
    with profiler.phase("sweep-populate", workers=1):
        sweep(serial)            # first cache-on pass: miss-and-store
    with profiler.phase("sweep-warm", workers=1):
        sweep(serial)            # pure hits

    serial_cold = profiler.seconds_of("sweep-serial-cold")
    parallel_cold = profiler.seconds_of("sweep-parallel-cold")
    payload = profiler.as_dict(
        cache=cache,
        benchmarks=list(benchmarks),
        workers=parallel.workers,
        workers_requested=("auto(cpu_count)" if requested_workers is None
                           else requested_workers),
        workers_effective=parallel.workers,
        batch=batched.batch,
        speedup=round(serial_cold / parallel_cold, 3) if parallel_cold else None,
        warm_speedup=round(serial_cold / profiler.seconds_of("sweep-warm"), 3)
        if profiler.seconds_of("sweep-warm") else None,
    )
    path = write_bench_file(payload, path=args.output)
    print(f"[bench] serial {serial_cold:.2f}s, parallel "
          f"({parallel.workers} workers) {parallel_cold:.2f}s, warm "
          f"{profiler.seconds_of('sweep-warm'):.2f}s")
    print(f"[bench] wrote {path}")
    _finalize_trace(args, label=f"bench:{args.label}")
    return 0


def _verify_workload_job(name: str, rules, passes):
    """Module-level verify job so ``verify --workers`` can fan out."""
    from .staticcheck import run_verifier

    return run_verifier(compile_workload(name), rules=rules, passes=passes)


def cmd_verify(args: argparse.Namespace) -> int:
    """Statically verify fat binaries; exit 1 on any ERROR finding."""
    from .staticcheck import PASSES_BY_NAME, RULES, resolve_rules, \
        run_verifier

    rules = None
    if args.rules:
        try:
            resolve_rules(args.rules)        # fail fast on unknown rules
        except ValueError as exc:
            print(f"error: {exc}; valid rules: "
                  f"{', '.join(sorted(RULES))}", file=sys.stderr)
            return 1
        rules = args.rules
    if args.passes:
        args.passes = [name for chunk in args.passes
                       for name in chunk.split(",") if name]
        unknown = [name for name in args.passes
                   if name not in PASSES_BY_NAME]
        if unknown:
            print(f"error: unknown verifier pass(es) "
                  f"{', '.join(unknown)}; valid passes: "
                  f"{', '.join(PASSES_BY_NAME)}", file=sys.stderr)
            return 1

    targets: List[str] = []
    if args.all:
        targets = sorted(WORKLOADS)
    elif args.workload:
        if args.workload not in WORKLOADS:
            print(f"unknown workload {args.workload!r}; "
                  f"available: {', '.join(sorted(WORKLOADS))}",
                  file=sys.stderr)
            return 2
        targets = [args.workload]
    elif not args.file:
        print("error: give a mini-C FILE, --workload NAME, or --all",
              file=sys.stderr)
        return 2

    trace_path = args.trace or os.environ.get(obs.ENV_TRACE)
    if trace_path:
        os.environ[obs.ENV_TRACE] = str(trace_path)
        obs.enable()

    reports = {}
    if targets:
        # Jobs are submitted in sorted-target order and results come
        # back in submission order, so output is byte-identical for
        # any --workers value.
        engine = ExperimentEngine(workers=args.workers)
        jobs = [Job(key=f"verify:{name}", fn=_verify_workload_job,
                    args=(name, rules, args.passes), workload=name)
                for name in targets]
        for name, report in zip(targets, collect(engine.run(jobs))):
            reports[name] = report
    if args.file:
        reports[args.file] = run_verifier(
            compile_minic(_load_source(args.file)), rules=rules,
            passes=args.passes)

    ok = all(report.ok for report in reports.values())
    if args.format == "json":
        import json
        payload = {"ok": ok,
                   "targets": {name: report.as_dict()
                               for name, report in reports.items()}}
        rendered = json.dumps(payload, indent=2, sort_keys=True)
    else:
        chunks = []
        for name, report in reports.items():
            header = f"== {name} ==" if len(reports) > 1 else ""
            body = report.to_text()
            chunks.append(f"{header}\n{body}" if header else body)
        rendered = "\n\n".join(chunks)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        print(f"[verify] wrote {args.output}")
    else:
        print(rendered)

    if trace_path:
        written = obs.write_trace(trace_path, label="verify")
        print(f"[trace] wrote {written}")
    return 0 if ok else 1




def _render_transpile_target(name: str, result: dict) -> str:
    lines = [f"== {name} =="]
    stats = result["lift_stats"]
    lines.append(f"lifted {stats.get('functions', 0)} function(s), "
                 f"{stats.get('instructions', 0)} -> "
                 f"{stats.get('lifted_instructions', 0)} instruction(s)")
    static = result.get("static")
    if static is not None:
        st = static["stats"]
        verdict = "ok" if static["ok"] else "FAILED"
        lines.append(f"static: {verdict} ({st.get('proven', 0)}/"
                     f"{st.get('blocks', 0)} blocks proven, "
                     f"{st.get('unsupported', 0)} unsupported, "
                     f"{st.get('remaps_checked', 0)} remaps checked)")
        for finding in static["findings"]:
            lines.append(f"  {finding['rule']} [{finding['severity']}] "
                         f"{finding['message']}")
    exc = result.get("exec")
    if exc is not None:
        verdict = "ok" if exc["ok"] else "FAILED"
        lines.append(f"exec: {verdict} (native={exc['native_exit']} "
                     f"lifted={exc['lifted_exit']})")
    surface = result.get("surface")
    if surface is not None:
        lines.append(
            f"surface: original {surface['original']['total']} gadget(s) "
            f"({surface['original']['unintended']} unintended), "
            f"transpiled {surface['transpiled']['total']} "
            f"({surface['transpiled']['unintended']} unintended), "
            f"{surface['diversified_immune']}/{surface['viable']} viable "
            f"immune to diversification")
    return "\n".join(lines)


@_typed_errors
def cmd_transpile(args: argparse.Namespace) -> int:
    """Statically lift x86like workloads to armlike and verify the result.

    ``--verify-tier static`` runs the full verifier (including the
    HIP7xx transpilation passes) over each lifted binary;
    ``fuzz`` differential-executes lifted vs original code — per
    workload on real inputs, plus a random-program harness under fault
    schedules; ``all`` (default) runs both.  Exit 1 on any failure.
    """
    from .transpile import fuzz_run, load_corpus

    tiers = (("static", "fuzz") if args.verify_tier == "all"
             else (args.verify_tier,))

    targets: List[str] = []
    if args.all:
        targets = sorted(WORKLOADS)
    elif args.workload:
        if args.workload not in WORKLOADS:
            print(f"unknown workload {args.workload!r}; "
                  f"available: {', '.join(sorted(WORKLOADS))}",
                  file=sys.stderr)
            return 2
        targets = [args.workload]
    elif args.fuzz is None and not args.corpus:
        print("error: give --workload NAME, --all, --fuzz N, or "
              "--corpus FILE", file=sys.stderr)
        return 2

    trace_path = args.trace or os.environ.get(obs.ENV_TRACE)
    if trace_path:
        os.environ[obs.ENV_TRACE] = str(trace_path)
        obs.enable()

    engine = ExperimentEngine(workers=args.workers)
    results = {}
    if targets:
        # Submission order is sorted and results return in submission
        # order, so output is byte-identical for any --workers value.
        jobs = [Job(key=f"transpile:{name}", fn=_transpile_workload_job,
                    args=(name, tiers, args.surface, args.fault_seed),
                    workload=name)
                for name in targets]
        for name, result in zip(targets, collect(engine.run(jobs))):
            results[name] = result

    fuzz_report = None
    if args.corpus:
        cases = load_corpus(args.corpus)
        fuzz_report = fuzz_run(args.fault_seed, len(cases), cases=cases,
                               engine=engine)
    elif args.fuzz is not None or "fuzz" in tiers:
        iterations = args.fuzz if args.fuzz is not None else 10
        fuzz_report = fuzz_run(args.fault_seed, iterations, engine=engine)

    ok = all(result["ok"] for result in results.values()) \
        and (fuzz_report is None or fuzz_report.ok)
    if obs.enabled():
        registry = obs.get_registry()
        for result in results.values():
            for tier, section in (("static", result.get("static")),
                                  ("fuzz", result.get("exec"))):
                if section is not None and section["ok"]:
                    registry.counter("transpile.verified", tier=tier).inc()
        if fuzz_report is not None:
            registry.counter(
                "transpile.fuzz_cases",
                outcome="ok" if fuzz_report.ok else "failed",
            ).inc(len(fuzz_report.outcomes))

    if args.format == "json":
        import json
        payload = {"ok": ok, "targets": results}
        if fuzz_report is not None:
            payload["fuzz"] = {
                "ok": fuzz_report.ok,
                "fault_seed": fuzz_report.fault_seed,
                "statuses": fuzz_report.status_counts(),
                "digest": fuzz_report.digest(),
                "failures": [o.to_dict() for o in fuzz_report.failures],
            }
        rendered = json.dumps(payload, indent=2, sort_keys=True)
    else:
        chunks = [_render_transpile_target(name, result)
                  for name, result in results.items()]
        if fuzz_report is not None:
            lines = [f"== fuzz (seed={fuzz_report.fault_seed}) =="]
            for status, count in fuzz_report.status_counts().items():
                lines.append(f"  {status:<28} {count}")
            lines.append(f"  fault-log digest: {fuzz_report.digest()}")
            chunks.append("\n".join(lines))
        chunks.append(f"transpile: {'ok' if ok else 'FAILED'} "
                      f"({len(results)} workload(s), tiers: "
                      f"{','.join(tiers)})")
        rendered = "\n\n".join(chunks)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        print(f"[transpile] wrote {args.output}")
    else:
        print(rendered)
    if fuzz_report is not None:
        for outcome in fuzz_report.failures:
            print(f"FAILED {outcome.case_id}: {outcome.status} "
                  f"({outcome.detail})", file=sys.stderr)

    if trace_path:
        written = obs.write_trace(trace_path, label="transpile")
        print(f"[trace] wrote {written}")
    return 0 if ok else 1


@_typed_errors
def cmd_chaos(args: argparse.Namespace) -> int:
    """Differential fault-injection sweep (see :mod:`repro.faults.fuzz`)."""
    import tempfile

    from .faults.fuzz import ChaosReport, chaos_run, chaos_workloads, \
        load_corpus, run_case
    from .faults.plan import default_plan

    if getattr(args, "serve", False):
        return _cmd_chaos_serve(args)

    if not getattr(args, "cache_dir", None) \
            and not getattr(args, "no_cache", False):
        # Deterministic by default: against a warm cache some put-time
        # faults would be skipped (no store happens on a hit), so the
        # fault log would differ between the first and second run.
        args.cache_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    engine = _configure_runtime(args)
    plan = default_plan(args.fault_seed, rate_scale=args.rate_scale)

    if args.workloads:
        outcomes = chaos_workloads(args.fault_seed,
                                   rate_scale=args.rate_scale)
        report = ChaosReport(args.fault_seed, len(outcomes), outcomes)
    elif args.corpus:
        cases = load_corpus(args.corpus)
        outcomes = [run_case(case, plan) for case in cases]
        report = ChaosReport(args.fault_seed, len(cases), outcomes)
    else:
        report = chaos_run(args.fault_seed, args.iterations, plan=plan,
                           engine=engine)

    print(f"chaos: seed={args.fault_seed} cases={len(report.outcomes)} "
          f"rate-scale={args.rate_scale}")
    for status, count in report.status_counts().items():
        print(f"  {status:<28} {count}")
    fault_counts = report.fault_counts()
    if fault_counts:
        print("injected faults:")
        for kind, count in fault_counts.items():
            print(f"  {kind:<28} {count}")
    else:
        print("injected faults: none fired")
    print(f"fault-log digest: {report.digest()}")
    for outcome in report.failures:
        print(f"FAILED {outcome.case_id}: {outcome.status} "
              f"({outcome.detail})", file=sys.stderr)
    _finalize_trace(args, label=f"chaos:{args.fault_seed}")
    return 1 if report.failures else 0


def _cmd_chaos_serve(args: argparse.Namespace) -> int:
    """Differential chaos over the service layer (``chaos --serve``).

    N concurrent mixed-tenant clients drive a real ``repro serve``
    daemon (a subprocess, so ``kill -9`` is honest) under the
    service-layer fault kinds — ``request.drop``, ``server.kill``,
    ``tenant.flood`` — in two phases, serial then parallel, each with a
    mid-run kill/restart cycle.  Every request must complete
    byte-identically, fail typed, or be re-served from the journal
    after restart; exit 1 on any silent loss or divergence.
    """
    import tempfile

    from .faults.plan import default_plan
    from .serve.harness import render_report, serve_chaos_run

    plan = default_plan(args.fault_seed, rate_scale=args.rate_scale,
                        only=("request.drop", "server.kill"))
    requests = args.requests
    base = tempfile.mkdtemp(prefix="repro-serve-chaos-")
    silent = 0
    for phase, parallel in (("serial", False), ("parallel", True)):
        report = serve_chaos_run(
            args.fault_seed,
            requests=requests,
            clients=args.serve_clients,
            journal_dir=os.path.join(base, phase, "journal"),
            cache_root=os.path.join(base, phase, "cache"),
            plan=plan,
            parallel=parallel,
            tenant_quota=args.tenant_quota,
        )
        print(f"== serve-chaos ({phase}) ==")
        print(render_report(report))
        silent += len(report.silent_failures)
    verdict = "ok" if silent == 0 else "FAILED"
    print(f"serve-chaos: {verdict} ({2 * requests} request(s) across "
          f"2 phase(s), {silent} silent)")
    return 1 if silent else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the crash-consistent multi-tenant service daemon."""
    from .serve.server import ServeConfig, run_server

    journal_dir = args.journal or os.environ.get(durable.ENV_JOURNAL)
    if not journal_dir:
        print("error: serve requires --journal DIR (the request "
              "durability log)", file=sys.stderr)
        return 2
    threshold = supervisor.resolve_breaker_threshold(
        args.breaker, default=DEFAULT_BREAKER_THRESHOLD)
    config = ServeConfig(
        journal_dir=journal_dir,
        host=args.host,
        port=args.port,
        cache_root=args.cache_dir,
        queue_limit=args.queue_limit,
        tenant_quota=args.tenant_quota,
        breaker_threshold=threshold,
        breaker_cooldown=supervisor.resolve_breaker_cooldown(
            args.breaker_cooldown),
        retries=args.retries,
        backoff=args.backoff,
        default_deadline_ms=args.deadline_ms,
        engine_workers=args.workers if args.workers is not None else 1,
        allow_kill=args.allow_kill,
        resume_run_id=args.resume,
    )
    return run_server(config)


def cmd_report(args: argparse.Namespace) -> int:
    """Load a captured trace file and print its summary tables.

    ``--flamegraph FILE`` additionally writes the collapsed-stack form;
    ``--format prom`` prints the Prometheus exposition of the trace's
    metrics instead of the text report; ``--critical-path`` prints the
    heaviest span chain instead of the full report.
    """
    try:
        trace = obs.load_trace(args.file)
    except (OSError, obs.TraceError) as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 1
    try:
        if args.flamegraph:
            body = render_flamegraph_file(trace)
            with open(args.flamegraph, "w") as handle:
                handle.write(body)
            print(f"[report] wrote {args.flamegraph} "
                  f"({len(body.splitlines())} stack(s))")
        if args.format == "prom":
            sys.stdout.write(obs.render_prom(trace.metrics or {}))
        elif args.critical_path:
            print(render_critical_path(trace))
        else:
            print(render_report(trace, top=args.top))
    except BrokenPipeError:      # e.g. `repro report f | head`
        sys.stderr.close()       # suppress the interpreter's warning
    return 0


def _status_state(status: dict) -> str:
    """Effective run state: a dead writer pid downgrades ``running``."""
    state = str(status.get("state", "?"))
    pid = int(status.get("pid", 0) or 0)
    if state == "running" and pid:
        try:
            os.kill(pid, 0)
        except OSError:
            return "stale (process gone)"
    return state


def _render_status(status: dict) -> str:
    """Human view of one run's status document (``repro top``)."""
    jobs = status.get("jobs", {})
    state = _status_state(status)
    pid = int(status.get("pid", 0) or 0)
    lines = [f"run {status.get('run_id', '?')}  state={state}  pid={pid}"
             + ("  [synthesized from journal]"
                if status.get("synthesized") else "")]
    argv = status.get("argv") or []
    if argv:
        lines.append(f"  command: {' '.join(str(a) for a in argv)}")
    lines.append(
        f"  jobs: {jobs.get('done', 0)}/{jobs.get('total', 0)} done, "
        f"{jobs.get('failed', 0)} failed, {jobs.get('running', 0)} "
        f"running, {jobs.get('pending', 0)} pending")
    workers = status.get("workers") or {}
    for wid in sorted(workers, key=lambda w: int(w)):
        info = workers[wid]
        job = info.get("job") or "idle"
        lines.append(f"  worker {wid}: heartbeat {info.get('age', '?')}s "
                     f"ago, {job}")
    breakers = status.get("breakers") or {}
    for workload in sorted(breakers):
        info = breakers[workload]
        lines.append(f"  breaker {workload}: {info.get('state', '?')} "
                     f"({info.get('failures', 0)} failures)")
    cache = status.get("cache") or {}
    if cache:
        lines.append(f"  cache: hits={cache.get('hits', 0)} "
                     f"misses={cache.get('misses', 0)} "
                     f"hit-rate={cache.get('hit_rate', 0.0):.1%}")
    faults = status.get("faults") or {}
    if faults.get("injected") or faults.get("recovered"):
        lines.append(f"  faults: injected={faults.get('injected', 0)} "
                     f"recovered={faults.get('recovered', 0)}")
    updated = float(status.get("updated", 0.0))
    if updated:
        lines.append(f"  updated {max(0.0, time.time() - updated):.1f}s "
                     f"ago")
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    """Render a journaled run's live status, watching if asked.

    Reads the atomic ``<run>.status.json`` the engine/supervisor keep
    next to the journal; for runs that never wrote one (pre-status
    journals) a status is synthesized by replaying the journal.
    """
    directory = _journal_dir(args)
    if not directory:
        print("error: give --journal DIR or set REPRO_JOURNAL",
              file=sys.stderr)
        return 2
    try:
        path = durable.find_run(directory, args.run_id)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    run_id = path.name[:-len(".journal.jsonl")]

    def read_status() -> Optional[dict]:
        status = durable.load_status(directory, run_id)
        if status is not None:
            return status
        try:
            return durable.synthesize_status(
                durable.replay_journal(path, repair=False))
        except (OSError, JournalCorruptError, ResumeMismatchError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None

    try:
        if args.watch:
            try:
                while True:
                    status = read_status()
                    if status is None:
                        return 2
                    sys.stdout.write("\x1b[2J\x1b[H"
                                     + _render_status(status) + "\n")
                    sys.stdout.flush()
                    # a stale status (writer pid gone) must end the
                    # watch too, or a crashed run would spin forever
                    if _status_state(status) != "running":
                        return 0
                    time.sleep(args.interval)
            except KeyboardInterrupt:       # pragma: no cover
                return 130
        status = read_status()
        if status is None:
            return 2
        print(_render_status(status))
    except BrokenPipeError:      # e.g. `repro top | head`
        sys.stderr.close()       # suppress the interpreter's warning
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HIPStR reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="compile and execute mini-C")
    run_parser.add_argument("file", help="mini-C source file ('-' = stdin)")
    run_parser.add_argument("--isa", default="x86like",
                            choices=sorted(ISAS))
    run_parser.add_argument("--psr", action="store_true",
                            help="execute under a PSR virtual machine")
    run_parser.add_argument("--hipstr", action="store_true",
                            help="execute under full HIPStR")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--opt-level", type=int, default=3,
                            choices=(0, 1, 2, 3))
    run_parser.add_argument("--migration-probability", type=float,
                            default=1.0)
    run_parser.add_argument("--stdin-file", default=None)
    run_parser.set_defaults(func=cmd_run)

    disasm_parser = sub.add_parser("disasm", help="disassemble a binary")
    disasm_parser.add_argument("file")
    disasm_parser.add_argument("--isa", default="x86like",
                               choices=sorted(ISAS))
    disasm_parser.set_defaults(func=cmd_disasm)

    gadgets_parser = sub.add_parser("gadgets",
                                    help="mine and summarize gadgets")
    gadgets_parser.add_argument("file")
    gadgets_parser.add_argument("--psr", action="store_true",
                                help="also analyze the surface under PSR")
    gadgets_parser.add_argument("--seed", type=int, default=0)
    gadgets_parser.set_defaults(func=cmd_gadgets)

    demo_parser = sub.add_parser("exploit-demo",
                                 help="run the Figure-1 attack end to end")
    demo_parser.set_defaults(func=lambda args: _exploit_demo_inline())

    def add_runtime_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", "-j", type=int, default=None,
                       metavar="N",
                       help="fan experiment jobs out over N processes "
                            "(0 = one per core; default: serial, or "
                            "$REPRO_WORKERS)")
        p.add_argument("--batch", type=int, default=None, metavar="B",
                       help="group B jobs per pool submission to "
                            "amortize spawn/IPC cost (0 = one group "
                            "per worker; default: unbatched, or "
                            "$REPRO_BATCH)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk artifact cache")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="artifact cache location (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro-hipstr)")
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="capture a metrics + span trace to FILE "
                            "(JSONL; or set $REPRO_TRACE); summarize "
                            "with 'repro report FILE'")
        p.add_argument("--journal", default=None, metavar="DIR",
                       help="write a crash-consistent run journal under "
                            "DIR (or set $REPRO_JOURNAL); continue an "
                            "interrupted run with 'repro resume'")
        p.add_argument("--supervise", action="store_true",
                       help="run parallel jobs under the worker "
                            "supervisor (heartbeats + hung-worker "
                            "replacement; or set $REPRO_SUPERVISE=1)")
        p.add_argument("--breaker", type=int, default=None, metavar="N",
                       help="open a workload's circuit breaker after N "
                            "consecutive terminal failures (default: "
                            "$REPRO_BREAKER_THRESHOLD or "
                            f"{DEFAULT_BREAKER_THRESHOLD}; 0 disables)")
        p.add_argument("--breaker-cooldown", type=float, default=None,
                       metavar="SEC",
                       help="after SEC seconds an open breaker admits "
                            "one half-open probe; success closes it, "
                            "failure re-opens (default: "
                            "$REPRO_BREAKER_COOLDOWN, else breakers "
                            "stay open for the run)")
        p.add_argument("--force", action="store_true",
                       help="reset journaled circuit breakers and rerun "
                            "previously skipped workloads")

    experiment_parser = sub.add_parser(
        "experiment", help="regenerate one paper artifact")
    experiment_parser.add_argument("name",
                                   help=", ".join(sorted(EXPERIMENTS)))
    add_runtime_flags(experiment_parser)
    experiment_parser.add_argument("--cache-stats", action="store_true",
                                   help="print cache hit/miss counters "
                                        "after the run")
    experiment_parser.set_defaults(func=cmd_experiment)

    bench_parser = sub.add_parser(
        "bench", help="profile serial vs parallel, cold vs warm cache")
    bench_parser.add_argument("--benchmarks", default=None,
                              metavar="A,B,...",
                              help="comma-separated workload names "
                                   "(default: bzip2,mcf,libquantum,sphinx3)")
    bench_parser.add_argument("--label", default="sweep",
                              help="label embedded in the BENCH_*.json name")
    bench_parser.add_argument("--output", "-o", default=None,
                              help="explicit output path for the "
                                   "trajectory file")
    add_runtime_flags(bench_parser)
    bench_parser.set_defaults(func=cmd_bench)

    verify_parser = sub.add_parser(
        "verify", help="statically verify a fat binary (no execution)")
    verify_parser.add_argument("file", nargs="?", default=None,
                               help="mini-C source file ('-' = stdin)")
    verify_parser.add_argument("--workload", default=None, metavar="NAME",
                               help="verify a named mini-SPEC workload")
    verify_parser.add_argument("--all", action="store_true",
                               help="verify every workload in the suite")
    verify_parser.add_argument("--rules", nargs="+", default=None,
                               metavar="RULE",
                               help="restrict to rule IDs, slugs, or "
                                    "prefixes (e.g. HIP201 HIP3 "
                                    "stackmap-mismatch)")
    verify_parser.add_argument("--passes", nargs="+", default=None,
                               metavar="PASS",
                               help="run only the named passes (cfg, "
                                    "consistency, dataflow, symequiv, "
                                    "framesafety, gadgets)")
    verify_parser.add_argument("--workers", "-j", type=int, default=None,
                               metavar="N",
                               help="verify workloads in parallel "
                                    "(0 = one per core; findings are "
                                    "identical for any worker count)")
    verify_parser.add_argument("--format", default="text",
                               choices=("text", "json"))
    verify_parser.add_argument("--output", "-o", default=None,
                               metavar="FILE",
                               help="write the rendered findings to FILE")
    verify_parser.add_argument("--trace", default=None, metavar="FILE",
                               help="capture a metrics + span trace "
                                    "(summarize with 'repro report FILE')")
    verify_parser.set_defaults(func=cmd_verify)

    transpile_parser = sub.add_parser(
        "transpile",
        help="statically lift x86like workloads to armlike and verify")
    transpile_parser.add_argument("--workload", default=None,
                                  metavar="NAME",
                                  help="transpile a named mini-SPEC "
                                       "workload")
    transpile_parser.add_argument("--all", action="store_true",
                                  help="transpile every workload in the "
                                       "suite")
    transpile_parser.add_argument("--verify-tier", default="all",
                                  choices=("static", "fuzz", "all"),
                                  help="static = HIP7xx verifier passes; "
                                       "fuzz = differential execution "
                                       "(default: all)")
    transpile_parser.add_argument("--fuzz", type=int, default=None,
                                  metavar="N",
                                  help="random differential cases for the "
                                       "fuzz tier (default 10 when the "
                                       "tier is selected)")
    transpile_parser.add_argument("--fault-seed", type=int, default=0,
                                  metavar="S",
                                  help="seed for fuzz programs, schedules, "
                                       "and fault decisions (default 0)")
    transpile_parser.add_argument("--corpus", default=None, metavar="FILE",
                                  help="replay a frozen transpile fuzz "
                                       "corpus (JSON) instead of "
                                       "generating cases")
    transpile_parser.add_argument("--surface", action="store_true",
                                  help="also mine the gadget-surface "
                                       "comparison (original vs "
                                       "transpiled vs diversified)")
    transpile_parser.add_argument("--workers", "-j", type=int,
                                  default=None, metavar="N",
                                  help="transpile workloads in parallel "
                                       "(0 = one per core; results are "
                                       "identical for any worker count)")
    transpile_parser.add_argument("--format", default="text",
                                  choices=("text", "json"))
    transpile_parser.add_argument("--output", "-o", default=None,
                                  metavar="FILE",
                                  help="write the rendered results to "
                                       "FILE")
    transpile_parser.add_argument("--trace", default=None, metavar="FILE",
                                  help="capture a metrics + span trace "
                                       "(summarize with 'repro report "
                                       "FILE')")
    transpile_parser.set_defaults(func=cmd_transpile)

    chaos_parser = sub.add_parser(
        "chaos", help="differential fault-injection sweep")
    chaos_parser.add_argument("--fault-seed", type=int, default=0,
                              metavar="S",
                              help="seed for programs, schedules, and "
                                   "fault decisions (default 0); the "
                                   "whole run replays from this")
    chaos_parser.add_argument("--iterations", type=int, default=25,
                              metavar="N",
                              help="differential cases to run "
                                   "(default 25)")
    chaos_parser.add_argument("--rate-scale", type=float, default=1.0,
                              metavar="F",
                              help="multiply every fault rate by F "
                                   "(default 1.0)")
    chaos_parser.add_argument("--workloads", action="store_true",
                              help="sweep the nine benchmark workloads "
                                   "under faults instead of random "
                                   "programs")
    chaos_parser.add_argument("--corpus", default=None, metavar="FILE",
                              help="replay a frozen case corpus (JSON) "
                                   "instead of generating cases")
    chaos_parser.add_argument("--serve", action="store_true",
                              help="differential chaos over the service "
                                   "layer: concurrent mixed-tenant "
                                   "clients vs a real daemon under "
                                   "request.drop / server.kill / "
                                   "tenant.flood, serial then parallel, "
                                   "each with a mid-run kill -9/restart")
    chaos_parser.add_argument("--requests", type=int, default=100,
                              metavar="N",
                              help="requests per --serve phase "
                                   "(default 100)")
    chaos_parser.add_argument("--serve-clients", type=int, default=4,
                              metavar="N",
                              help="concurrent client threads for "
                                   "--serve (default 4)")
    chaos_parser.add_argument("--tenant-quota", type=int, default=4,
                              metavar="N",
                              help="per-tenant in-flight quota for the "
                                   "--serve daemon (default 4)")
    add_runtime_flags(chaos_parser)
    chaos_parser.set_defaults(func=cmd_chaos)

    serve_parser = sub.add_parser(
        "serve", help="run the crash-consistent multi-tenant service "
                      "daemon")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8742,
                              help="listen port (0 = ephemeral; the "
                                   "readiness line prints the bound "
                                   "port)")
    serve_parser.add_argument("--journal", default=None, metavar="DIR",
                              help="request durability log directory "
                                   "(required; or set $REPRO_JOURNAL)")
    serve_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="artifact cache root; each tenant "
                                   "gets a namespaced subtree")
    serve_parser.add_argument("--queue-limit", type=int, default=64,
                              metavar="N",
                              help="bounded admission queue; beyond N "
                                   "in-flight requests new ones are "
                                   "shed with 429 (default 64)")
    serve_parser.add_argument("--tenant-quota", type=int, default=8,
                              metavar="N",
                              help="per-tenant in-flight concurrency "
                                   "quota (default 8)")
    serve_parser.add_argument("--breaker", type=int, default=None,
                              metavar="N",
                              help="per-(tenant, workload) circuit "
                                   "breaker threshold (default: "
                                   "$REPRO_BREAKER_THRESHOLD or "
                                   f"{DEFAULT_BREAKER_THRESHOLD}; "
                                   "0 disables)")
    serve_parser.add_argument("--breaker-cooldown", type=float,
                              default=None, metavar="SEC",
                              help="open breakers admit one half-open "
                                   "probe after SEC seconds (default: "
                                   "$REPRO_BREAKER_COOLDOWN)")
    serve_parser.add_argument("--retries", type=int, default=2,
                              metavar="N",
                              help="server-side retries for retryable "
                                   "failures (default 2)")
    serve_parser.add_argument("--backoff", type=float, default=0.05,
                              metavar="SEC",
                              help="base retry backoff, doubled per "
                                   "attempt (default 0.05)")
    serve_parser.add_argument("--deadline-ms", type=int, default=None,
                              metavar="MS",
                              help="default per-request deadline when "
                                   "neither the spec nor the "
                                   "X-Deadline-Ms header gives one")
    serve_parser.add_argument("--workers", "-j", type=int, default=None,
                              metavar="N",
                              help="engine worker processes per request "
                                   "(default 1)")
    serve_parser.add_argument("--allow-kill", action="store_true",
                              help="honor injected server.kill faults "
                                   "(SIGKILL self after journaling; "
                                   "chaos harness only)")
    serve_parser.add_argument("--resume", default=None, metavar="RUN_ID",
                              help="re-attach to a specific interrupted "
                                   "serve journal (default: latest "
                                   "interrupted serve run in --journal)")
    serve_parser.set_defaults(func=cmd_serve)

    report_parser = sub.add_parser(
        "report", help="summarize a captured trace file")
    report_parser.add_argument("file", help="trace file written by --trace")
    report_parser.add_argument("--top", type=int, default=15, metavar="N",
                               help="rows per ranked table (default 15)")
    report_parser.add_argument("--flamegraph", default=None, metavar="FILE",
                               help="also write the span tree as "
                                    "collapsed stacks (speedscope / "
                                    "flamegraph.pl compatible)")
    report_parser.add_argument("--critical-path", action="store_true",
                               help="print the longest-duration span "
                                    "chain instead of the full report")
    report_parser.add_argument("--format", default="text",
                               choices=("text", "prom"),
                               help="'prom' prints the trace's metrics "
                                    "as Prometheus text exposition")
    report_parser.set_defaults(func=cmd_report)

    top_parser = sub.add_parser(
        "top", help="live status of a journaled run")
    top_parser.add_argument("run_id", nargs="?", default="latest",
                            help="run id, unique prefix, or 'latest' "
                                 "(default)")
    top_parser.add_argument("--journal", default=None, metavar="DIR",
                            help="journal directory "
                                 "(default: $REPRO_JOURNAL)")
    top_parser.add_argument("--watch", action="store_true",
                            help="refresh until the run leaves the "
                                 "'running' state")
    top_parser.add_argument("--interval", type=float, default=1.0,
                            metavar="S",
                            help="refresh period with --watch "
                                 "(default 1.0)")
    top_parser.set_defaults(func=cmd_top)

    resume_parser = sub.add_parser(
        "resume", help="resume a journaled run after a crash or interrupt")
    resume_parser.add_argument("run_id", nargs="?", default="latest",
                               help="run id, unique prefix, or 'latest' "
                                    "(default)")
    resume_parser.add_argument("--journal", default=None, metavar="DIR",
                               help="journal directory "
                                    "(default: $REPRO_JOURNAL)")
    resume_parser.add_argument("--force", action="store_true",
                               help="reset journaled circuit breakers "
                                    "before resuming")
    resume_parser.add_argument("--trace", default=None, metavar="FILE",
                               help="capture a metrics + span trace of "
                                    "the resumed run (JSONL; or set "
                                    "$REPRO_TRACE)")
    resume_parser.set_defaults(func=cmd_resume)

    runs_parser = sub.add_parser(
        "runs", help="list journaled runs and their status")
    runs_parser.add_argument("action", nargs="?", default="list",
                             choices=("list",))
    runs_parser.add_argument("--journal", default=None, metavar="DIR",
                             help="journal directory "
                                  "(default: $REPRO_JOURNAL)")
    runs_parser.set_defaults(func=cmd_runs)
    return parser


def _journal_dir(args: argparse.Namespace) -> Optional[str]:
    return getattr(args, "journal", None) or os.environ.get(durable.ENV_JOURNAL)


@_typed_errors
def cmd_resume(args: argparse.Namespace) -> int:
    """Replay a run journal and re-dispatch its recorded command line.

    Completed jobs whose artifacts still verify are served from the
    run's result store; everything else recomputes.  The re-dispatched
    command appends to the same journal, so a resume can itself crash
    and be resumed again.
    """
    directory = _journal_dir(args)
    if not directory:
        print("error: give --journal DIR or set REPRO_JOURNAL",
              file=sys.stderr)
        return 2
    trace_path = getattr(args, "trace", None) \
        or os.environ.get(obs.ENV_TRACE)
    if trace_path:
        # export before re-dispatching so the resumed command (and its
        # workers) trace exactly like a fresh run would
        os.environ[obs.ENV_TRACE] = str(trace_path)
        obs.enable()
    try:
        path = durable.find_run(directory, args.run_id)
        replay = durable.replay_journal(path)
    except (FileNotFoundError, JournalCorruptError,
            ResumeMismatchError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if replay.finished:
        print(f"[journal] run {replay.run_id} already finished; "
              f"nothing to resume")
        return 0
    durable.verify_resume_argv(replay)
    journal = durable.RunJournal.resume(directory, replay)
    # journal<->cache cross-check: a job_done record only counts if its
    # artifact is still present and passes its checksum
    dropped = 0
    for slot, artifact_key in list(replay.completed.items()):
        if not journal.store.has_valid(durable.RESULT_KIND, artifact_key):
            del replay.completed[slot]
            dropped += 1
    if args.force and replay.breaker_open:
        for workload in sorted(replay.breaker_open):
            journal.append("breaker_reset", workload=workload)
        replay.breaker_open.clear()
    durable.set_current_journal(journal)
    durable.set_resume_state(durable.ResumeState(replay, journal.store))
    durable.install_sigterm_handler()
    notes = [f"{len(replay.completed)} completed job(s) verified"]
    if dropped:
        notes.append(f"{dropped} dropped (bad artifact)")
    if replay.torn_records:
        notes.append(f"{replay.torn_records} torn record(s) repaired")
    print(f"[journal] resuming run {replay.run_id} "
          f"({replay.status()}): " + ", ".join(notes))
    sub_args = build_parser().parse_args(replay.argv)
    sub_args.argv = list(replay.argv)
    if args.force:
        sub_args.force = True
    return sub_args.func(sub_args)


def cmd_runs(args: argparse.Namespace) -> int:
    """List journaled runs, newest first."""
    directory = _journal_dir(args)
    if not directory:
        print("error: give --journal DIR or set REPRO_JOURNAL",
              file=sys.stderr)
        return 2
    runs = durable.list_runs(directory)
    if not runs:
        print(f"no runs under {directory}")
        return 0
    print(f"{'run id':<24} {'status':<12} {'jobs':<9} command")
    for info in runs:
        print(info.render())
    return 0


def _reset_durable_state() -> None:
    """Clear ambient journal/breaker state between in-process runs."""
    durable.set_current_journal(None)
    durable.set_resume_state(None)
    supervisor.set_current_breaker(None)
    durable.clear_interrupt()


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.argv = list(argv) if argv is not None else list(sys.argv[1:])
    durable.clear_interrupt()
    try:
        code = args.func(args)
    except RunInterrupted as exc:
        journal = durable.get_current_journal()
        if journal is not None:
            journal.append("run_interrupted", completed=exc.completed,
                           remaining=exc.remaining)
            journal.close()
            print(f"[journal] run {journal.run_id} interrupted: "
                  f"{exc.completed} job(s) drained, {exc.remaining} "
                  f"not started; continue with 'repro resume "
                  f"{journal.run_id}'", file=sys.stderr)
        _finalize_trace(args, label="interrupted")
        _reset_durable_state()
        return 130
    except BaseException:
        _reset_durable_state()
        raise
    journal = durable.get_current_journal()
    if journal is not None:
        journal.finish(int(code or 0))
        print(f"[journal] run {journal.run_id} finished: "
              f"{journal.records_written} record(s), "
              f"resumed={journal.jobs_resumed} "
              f"recomputed={journal.jobs_recomputed}")
    _reset_durable_state()
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
