"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE``        — compile mini-C and execute (native / PSR / HIPStR)
* ``disasm FILE``     — compile and disassemble the fat binary
* ``gadgets FILE``    — Galileo-mine the binary and summarize the surface
* ``exploit-demo``    — the Figure-1 attack, end to end
* ``experiment NAME`` — regenerate one paper artifact (fig3..fig14,
  table2, httpd) and print its table
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import experiments
from .analysis.reporting import format_series, format_table, percent
from .attacks import gadget_population_summary, mine_binary
from .compiler import compile_minic
from .core import PSRConfig, run_native, run_under_psr
from .core.hipstr import run_under_hipstr
from .isa import ISAS, format_listing, linear_disassemble


def _load_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r") as handle:
        return handle.read()


def cmd_run(args: argparse.Namespace) -> int:
    binary = compile_minic(_load_source(args.file))
    stdin = b""
    if args.stdin_file:
        with open(args.stdin_file, "rb") as handle:
            stdin = handle.read()

    if args.hipstr:
        system, result = run_under_hipstr(
            binary, seed=args.seed, stdin=stdin,
            migration_probability=args.migration_probability,
            config=PSRConfig(opt_level=args.opt_level))
        print(f"[hipstr] exit={result.exit_code} "
              f"migrations={result.migration_count} "
              f"per-isa={result.steps_by_isa}")
        return result.exit_code or 0
    if args.psr:
        run = run_under_psr(binary, args.isa,
                            PSRConfig(opt_level=args.opt_level),
                            seed=args.seed, stdin=stdin)
        stats = run.vm.stats
        print(f"[psr/{args.isa}] exit={run.exit_code} "
              f"units={stats.units_installed} "
              f"maps={stats.relocation_maps_built} "
              f"security-events={stats.security_events}")
        return run.exit_code or 0
    process = run_native(binary, args.isa, stdin=stdin)
    if process.os.stdout:
        sys.stdout.buffer.write(bytes(process.os.stdout))
    print(f"[native/{args.isa}] exit={process.os.exit_code} "
          f"instructions={process.interpreter.steps_executed}")
    return process.os.exit_code or 0


def cmd_disasm(args: argparse.Namespace) -> int:
    binary = compile_minic(_load_source(args.file))
    isa = ISAS[args.isa]
    section = binary.sections[args.isa]
    decoded = linear_disassemble(isa, section.data, section.base_address)
    symbols = {address: name for name, address in section.symbols.items()}
    for item in decoded:
        label = symbols.get(item.address)
        if label:
            print(f"\n{label}:")
        print(f"  {item.address:#010x}:  {item.raw.hex():<16}  "
              f"{item.instruction.render(isa)}")
    return 0


def cmd_gadgets(args: argparse.Namespace) -> int:
    binary = compile_minic(_load_source(args.file))
    rows = []
    for isa_name in binary.isa_names:
        summary = gadget_population_summary(mine_binary(binary, isa_name))
        rows.append((isa_name, summary["total"], summary["rop"],
                     summary["jop"], summary["unintended"]))
    print(format_table(["ISA", "total", "rop", "jop", "unintended"], rows,
                       "Galileo gadget populations"))
    if args.psr:
        from .attacks import PSRGadgetAnalyzer
        analyzer = PSRGadgetAnalyzer(binary, "x86like", seed=args.seed)
        analyses = analyzer.analyze_all(mine_binary(binary, "x86like"))
        obfuscated = sum(1 for a in analyses if a.obfuscated)
        viable = sum(1 for a in analyses if a.brute_force_viable)
        print(f"\nunder PSR (seed {args.seed}): "
              f"{percent(obfuscated / max(len(analyses), 1))} obfuscated, "
              f"{viable} brute-force viable")
    return 0


def _exploit_demo_inline() -> int:
    from .attacks.payload import (attack_native, attack_psr, build_exploit,
                                  build_vulnerable_binary)
    binary = build_vulnerable_binary()
    payload = build_exploit(binary)
    native = attack_native(binary, payload)
    print(f"unprotected: shell spawned = {native.shell_spawned}")
    for seed in range(3):
        outcome = attack_psr(binary, payload, seed=seed)
        print(f"PSR epoch {seed}: shell spawned = {outcome.shell_spawned}")
    return 0


EXPERIMENTS = {
    "fig3": lambda: _print_fig3(),
    "fig4": lambda: _print_fig4(),
    "fig6": lambda: _print_fig6(),
    "fig7": lambda: _print_fig7(),
    "table2": lambda: _print_table2(),
    "httpd": lambda: _print_httpd(),
}


def _print_fig3() -> None:
    rows = experiments.fig3_classic_rop()
    print(format_table(
        ["benchmark", "total", "obfuscated", "unobf", "obf%"],
        [(r.benchmark, r.total_gadgets, r.obfuscated, r.unobfuscated,
          percent(r.obfuscated_fraction)) for r in rows],
        "Figure 3 — Classic ROP Attack Surface"))


def _print_fig4() -> None:
    rows = experiments.fig4_bruteforce_surface()
    print(format_table(
        ["benchmark", "total", "eliminated", "surviving"],
        [(r.benchmark, r.total_gadgets, r.eliminated, r.surviving)
         for r in rows],
        "Figure 4 — Brute Force Attack Surface"))


def _print_fig6() -> None:
    rows = experiments.fig6_migration_safety()
    print(format_table(
        ["benchmark", "blocks", "native", "on-demand"],
        [(r.benchmark, r.total_blocks, percent(r.native_fraction),
          percent(r.ondemand_fraction)) for r in rows],
        "Figure 6 — Migration-Safe Basic Blocks"))


def _print_fig7() -> None:
    lengths = tuple(range(1, 13))
    print(format_series(experiments.fig7_entropy(lengths), lengths,
                        "Figure 7 — Entropy vs Chain Length"))


def _print_table2() -> None:
    rows = experiments.table2_bruteforce()
    print(format_table(
        ["benchmark", "params", "bits", "attempts"],
        [(r.benchmark, f"{r.randomizable_parameters:.2f}",
          f"{r.entropy_bits:.0f}", f"{r.attempts_no_bias:.2e}")
         for r in rows],
        "Table 2 — Brute Force Simulation"))


def _print_httpd() -> None:
    study = experiments.httpd_case_study()
    print(f"httpd: {study.total_gadgets} gadgets, "
          f"{percent(study.obfuscated_fraction)} obfuscated, "
          f"{study.brute_force_attempts:.2e} attempts, "
          f"{study.jitrop_viable} JIT-ROP viable, "
          f"{study.surviving_migration} survive migration")


def cmd_experiment(args: argparse.Namespace) -> int:
    runner = EXPERIMENTS.get(args.name)
    if runner is None:
        print(f"unknown experiment {args.name!r}; "
              f"available: {', '.join(sorted(EXPERIMENTS))}",
              file=sys.stderr)
        return 2
    runner()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HIPStR reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="compile and execute mini-C")
    run_parser.add_argument("file", help="mini-C source file ('-' = stdin)")
    run_parser.add_argument("--isa", default="x86like",
                            choices=sorted(ISAS))
    run_parser.add_argument("--psr", action="store_true",
                            help="execute under a PSR virtual machine")
    run_parser.add_argument("--hipstr", action="store_true",
                            help="execute under full HIPStR")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--opt-level", type=int, default=3,
                            choices=(0, 1, 2, 3))
    run_parser.add_argument("--migration-probability", type=float,
                            default=1.0)
    run_parser.add_argument("--stdin-file", default=None)
    run_parser.set_defaults(func=cmd_run)

    disasm_parser = sub.add_parser("disasm", help="disassemble a binary")
    disasm_parser.add_argument("file")
    disasm_parser.add_argument("--isa", default="x86like",
                               choices=sorted(ISAS))
    disasm_parser.set_defaults(func=cmd_disasm)

    gadgets_parser = sub.add_parser("gadgets",
                                    help="mine and summarize gadgets")
    gadgets_parser.add_argument("file")
    gadgets_parser.add_argument("--psr", action="store_true",
                                help="also analyze the surface under PSR")
    gadgets_parser.add_argument("--seed", type=int, default=0)
    gadgets_parser.set_defaults(func=cmd_gadgets)

    demo_parser = sub.add_parser("exploit-demo",
                                 help="run the Figure-1 attack end to end")
    demo_parser.set_defaults(func=lambda args: _exploit_demo_inline())

    experiment_parser = sub.add_parser(
        "experiment", help="regenerate one paper artifact")
    experiment_parser.add_argument("name",
                                   help=", ".join(sorted(EXPERIMENTS)))
    experiment_parser.set_defaults(func=cmd_experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
