"""repro — a full-system reproduction of HIPStR (ASPLOS 2016).

HIPStR — Heterogeneous-ISA Program State Relocation — defends against
return-oriented programming by (a) relocating run-time program state
(registers and stack objects) to randomized locations via a dynamic binary
translator, and (b) probabilistically migrating execution between two ISAs
when a potential breach is detected.

This package implements the complete stack the paper depends on, in pure
Python: two modelled ISAs, a machine with memory/syscalls, a multi-ISA
compiler emitting fat binaries, a basic-block JIT translator, the PSR
randomizer, the cross-ISA migration engine, baseline defenses (Isomeron),
the attack framework (Galileo mining, brute force, JIT-ROP, tailored
attacks), and an analytic performance model.
"""

__version__ = "1.0.0"
