"""Common instruction-set abstractions shared by both modelled ISAs.

The reproduction models two ISAs (see :mod:`repro.isa.x86like` and
:mod:`repro.isa.armlike`) over a *shared semantic instruction set*: every
instruction carries a semantic opcode (:class:`Op`) plus operands, and the
interpreter executes semantics independent of encoding.  What differs
between the ISAs — and what the paper's security argument rests on — is the
**binary encoding**: x86like is variable-length and byte-granular (so
unaligned decode yields unintentional gadgets), armlike is fixed-width and
word-aligned (so it does not).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

WORD_SIZE = 4
WORD_MASK = 0xFFFFFFFF


def to_signed(value: int) -> int:
    """Interpret a 32-bit unsigned value as signed."""
    value &= WORD_MASK
    return value - 0x100000000 if value & 0x80000000 else value


def to_unsigned(value: int) -> int:
    """Truncate a Python int to a 32-bit unsigned value."""
    return value & WORD_MASK


class Op(enum.Enum):
    """Semantic opcodes, shared across both ISAs."""

    # Data movement
    MOV = "mov"          # MOV dst_reg, (reg|imm)
    MOVT = "movt"        # MOVT dst_reg, imm16 — set high half (armlike only)
    LOAD = "load"        # LOAD dst_reg, mem
    STORE = "store"      # STORE mem, src_reg
    LOADB = "loadb"      # LOADB dst_reg, mem — zero-extended byte load
    STOREB = "storeb"    # STOREB mem, src_reg — low-byte store
    PUSH = "push"        # PUSH (reg|imm)
    POP = "pop"          # POP dst_reg
    LEA = "lea"          # LEA dst_reg, mem  (address arithmetic)
    # Two-operand ALU: dst = dst OP src, src may be reg/imm/mem; dst reg/mem
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"          # dst = dst / src (signed); no separate remainder reg
    MOD = "mod"          # dst = dst % src (signed)
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"          # logical right shift
    SAR = "sar"          # arithmetic right shift
    NEG = "neg"          # dst = -dst
    NOT = "not"          # dst = ~dst
    CMP = "cmp"          # set compare flags from dst - src
    # Control transfer
    JMP = "jmp"          # direct jump, absolute target operand
    JCC = "jcc"          # conditional direct jump (cond field set)
    CALL = "call"        # direct call
    RET = "ret"          # pop return address from stack into PC (both ISAs)
    IJMP = "ijmp"        # indirect jump through reg/mem
    ICALL = "icall"      # indirect call through reg/mem
    # System
    SYSCALL = "syscall"
    NOP = "nop"
    HLT = "hlt"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op.{self.name}"


ALU_OPS = frozenset(
    {Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
     Op.SHL, Op.SHR, Op.SAR, Op.CMP}
)
UNARY_OPS = frozenset({Op.NEG, Op.NOT})
CONTROL_OPS = frozenset({Op.JMP, Op.JCC, Op.CALL, Op.RET, Op.IJMP, Op.ICALL})
INDIRECT_OPS = frozenset({Op.IJMP, Op.ICALL, Op.RET})


class Cond(enum.Enum):
    """Branch conditions, evaluated against the last CMP result."""

    EQ = 0
    NE = 1
    LT = 2
    LE = 3
    GT = 4
    GE = 5

    def evaluate(self, diff: int) -> bool:
        """Evaluate against the signed difference ``dst - src`` of the CMP."""
        if self is Cond.EQ:
            return diff == 0
        if self is Cond.NE:
            return diff != 0
        if self is Cond.LT:
            return diff < 0
        if self is Cond.LE:
            return diff <= 0
        if self is Cond.GT:
            return diff > 0
        return diff >= 0

    def negate(self) -> "Cond":
        return _COND_NEGATION[self]


_COND_NEGATION = {
    Cond.EQ: Cond.NE,
    Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE,
    Cond.LE: Cond.GT,
    Cond.GT: Cond.LE,
    Cond.GE: Cond.LT,
}


@dataclass(frozen=True)
class Reg:
    """A register operand, identified by its architectural index."""

    index: int

    def __repr__(self) -> str:
        return f"Reg({self.index})"


@dataclass(frozen=True)
class Imm:
    """An immediate operand (32-bit, stored unsigned)."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", to_unsigned(self.value))

    @property
    def signed(self) -> int:
        return to_signed(self.value)

    def __repr__(self) -> str:
        return f"Imm({to_signed(self.value):#x})"


@dataclass(frozen=True)
class Mem:
    """A base+displacement memory operand."""

    base: int          # base register index
    disp: int = 0      # signed displacement in bytes

    def __repr__(self) -> str:
        return f"Mem(r{self.base}{self.disp:+#x})"


@dataclass(frozen=True)
class Label:
    """A symbolic operand resolved to an absolute address at link time.

    ``part`` selects a relocation flavour: ``abs`` is the full address,
    ``lo16``/``hi16`` extract halves (armlike builds 32-bit addresses with
    a MOV/MOVT pair).  ``lo16`` is sign-extended so the following MOVT
    overwrite yields the exact address.
    """

    name: str
    part: str = "abs"          # "abs" | "lo16" | "hi16"

    def resolve(self, address: int) -> int:
        if self.part == "lo16":
            low = address & 0xFFFF
            return low - 0x10000 if low & 0x8000 else low
        if self.part == "hi16":
            return (address >> 16) & 0xFFFF
        return address

    def __repr__(self) -> str:
        suffix = f":{self.part}" if self.part != "abs" else ""
        return f"Label({self.name!r}{suffix})"


Operand = Union[Reg, Imm, Mem, Label]


@dataclass(frozen=True)
class Instruction:
    """One semantic instruction.

    Operand conventions by opcode are documented on :class:`Op`.  ``cond``
    is only meaningful for :attr:`Op.JCC`.
    """

    op: Op
    operands: Tuple[Operand, ...] = ()
    cond: Optional[Cond] = None

    @property
    def dst(self) -> Operand:
        return self.operands[0]

    @property
    def src(self) -> Operand:
        return self.operands[1]

    def is_control(self) -> bool:
        return self.op in CONTROL_OPS

    def is_indirect(self) -> bool:
        return self.op in INDIRECT_OPS

    def reads_regs(self) -> frozenset:
        """Architectural registers this instruction reads."""
        reads = set()
        ops = self.operands
        if self.op in (Op.MOV, Op.LEA):
            reads.update(_operand_reads(ops[1]))
        elif self.op is Op.MOVT:
            reads.update(_operand_reads(ops[0], as_value=True))
        elif self.op in (Op.LOAD, Op.LOADB):
            reads.update(_operand_reads(ops[1]))
        elif self.op in (Op.STORE, Op.STOREB):
            reads.update(_operand_reads(ops[0]))
            reads.update(_operand_reads(ops[1], as_value=True))
        elif self.op in ALU_OPS:
            reads.update(_operand_reads(ops[0], as_value=True))
            reads.update(_operand_reads(ops[1]))
        elif self.op in UNARY_OPS:
            reads.update(_operand_reads(ops[0], as_value=True))
        elif self.op is Op.PUSH:
            reads.update(_operand_reads(ops[0]))
        elif self.op in (Op.IJMP, Op.ICALL):
            reads.update(_operand_reads(ops[0]))
        return frozenset(reads)

    def writes_regs(self) -> frozenset:
        """Architectural registers this instruction writes."""
        if self.op in (Op.MOV, Op.MOVT, Op.LOAD, Op.LOADB, Op.LEA, Op.POP):
            target = self.operands[0]
            if isinstance(target, Reg):
                return frozenset({target.index})
        elif self.op in ALU_OPS and self.op is not Op.CMP:
            target = self.operands[0]
            if isinstance(target, Reg):
                return frozenset({target.index})
        elif self.op in UNARY_OPS:
            target = self.operands[0]
            if isinstance(target, Reg):
                return frozenset({target.index})
        return frozenset()

    def render(self, isa: "ISADescription") -> str:
        """Human-readable disassembly in the given ISA's syntax."""
        return isa.render(self)

    def __repr__(self) -> str:
        parts = [self.op.name]
        if self.cond is not None:
            parts.append(self.cond.name)
        body = ", ".join(repr(operand) for operand in self.operands)
        return f"<{' '.join(parts)} {body}>" if body else f"<{' '.join(parts)}>"


def _operand_reads(operand: Operand, as_value: bool = False) -> Iterable[int]:
    """Registers read when evaluating an operand.

    ``as_value`` marks the read-modify-write destination of a two-operand
    ALU op; for a plain :class:`Reg` the register itself is read either way.
    """
    if isinstance(operand, Reg):
        return (operand.index,)
    if isinstance(operand, Mem):
        return (operand.base,)
    return ()


@dataclass(frozen=True)
class Decoded:
    """A decoded instruction along with its location and encoded size."""

    address: int
    size: int
    instruction: Instruction
    raw: bytes = b""

    @property
    def end(self) -> int:
        return self.address + self.size


class ISADescription:
    """Static description of one ISA: registers, encoding hooks, syntax.

    Concrete ISAs subclass this and provide an encoder/decoder pair plus
    register naming.  Everything the rest of the system needs to know about
    an ISA flows through this interface.
    """

    #: short identifier ("x86like" / "armlike")
    name: str = "abstract"
    #: minimum instruction alignment in bytes (1 = byte-granular decode)
    alignment: int = 1
    #: number of general-purpose registers (including sp et al.)
    num_registers: int = 0
    #: index of the stack pointer register
    sp: int = 0
    #: index of the link register, or None if calls push to the stack
    lr: Optional[int] = None
    #: register names, indexed by architectural index
    register_names: Sequence[str] = ()
    #: registers usable by the register allocator (excludes sp/lr/scratch)
    allocatable: Sequence[int] = ()
    #: scratch registers reserved for PSR/codegen temporaries
    scratch: Sequence[int] = ()
    #: syscall convention: (number_reg, arg_regs)
    syscall_number_reg: int = 0
    syscall_arg_regs: Sequence[int] = ()
    #: return-value register for the *native* (unrandomized) ABI
    return_reg: int = 0
    #: argument registers for the native ABI (may be empty: stack args)
    arg_regs: Sequence[int] = ()
    #: True if CALL pushes the return address (x86like); False if CALL
    #: writes the link register (armlike)
    call_pushes_return: bool = True
    #: True if ALU instructions may take one memory operand directly
    memory_operands: bool = True
    #: first-byte values of every encoding of a gadget-ending instruction
    #: (RET / IJMP / ICALL).  Gadget miners seed their anchor scan with a
    #: C-level byte search for these values instead of attempting a decode
    #: at every offset; ``None`` means "unknown — decode everywhere".
    gadget_seed_bytes: Optional[FrozenSet[int]] = None

    #: per-opcode symbolic transfer overrides consulted by the symbolic
    #: evaluator (:mod:`repro.staticcheck.symexec`) *before* its generic
    #: table.  Maps :class:`Op` -> callable ``(state, decoded) -> bool``;
    #: a handler returns True when it fully modelled the instruction.
    #: Lets an ISA attach encoding-specific semantics (e.g. a fused or
    #: ISA-private instruction) without the evaluator special-casing it.
    symbolic_transfer_overrides: dict = {}

    def symbolic_clobbers(self) -> FrozenSet[int]:
        """Registers whose contents are *not* part of the cross-ISA
        machine-state contract at an equivalence point.

        Scratch registers are strictly instruction-local by codegen
        discipline, the return register only carries a value at the
        instant a call returns, and the link register is caller-managed;
        the symbolic equivalence prover excludes these from comparison.
        """
        clobbers = set(self.scratch)
        clobbers.add(self.return_reg)
        if self.lr is not None:
            clobbers.add(self.lr)
        return frozenset(clobbers)

    def encode(self, instruction: Instruction, address: int = 0) -> bytes:
        """Encode one instruction at ``address`` (needed for rel branches)."""
        raise NotImplementedError

    def decode(self, data: bytes, offset: int, address: int) -> Decoded:
        """Decode one instruction from ``data[offset:]`` located at ``address``.

        Raises :class:`repro.errors.DecodeError` for invalid encodings.
        """
        raise NotImplementedError

    def encoded_size(self, instruction: Instruction) -> int:
        """Size in bytes of the instruction's encoding."""
        return len(self.encode(instruction, 0))

    def register_name(self, index: int) -> str:
        if 0 <= index < len(self.register_names):
            return self.register_names[index]
        return f"r?{index}"

    def render(self, instruction: Instruction) -> str:
        parts: List[str] = [instruction.op.value]
        if instruction.cond is not None:
            parts[0] = f"{instruction.op.value}.{instruction.cond.name.lower()}"

        def fmt(operand: Operand) -> str:
            if isinstance(operand, Reg):
                return self.register_name(operand.index)
            if isinstance(operand, Imm):
                return f"{operand.signed:#x}"
            if isinstance(operand, Mem):
                return f"[{self.register_name(operand.base)}{operand.disp:+#x}]"
            return operand.name

        body = ", ".join(fmt(operand) for operand in instruction.operands)
        return f"{parts[0]} {body}".strip()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ISA {self.name}>"
