"""Two-pass assembler: semantic instructions + labels → encoded bytes.

Instruction encodings have fixed sizes (they do not depend on operand
values beyond their class), so a single sizing pass followed by an
encoding pass suffices — no relaxation loop is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import AssemblerError
from .base import Imm, Instruction, ISADescription, Label


@dataclass
class AssembledUnit:
    """The output of assembling one unit: bytes plus symbol/line metadata."""

    isa: ISADescription
    base_address: int
    data: bytes
    #: label name -> absolute address
    symbols: Dict[str, int]
    #: absolute address of each assembled instruction, in order
    addresses: List[int]
    #: the (label-resolved) instructions, parallel to ``addresses``
    instructions: List[Instruction]

    @property
    def end_address(self) -> int:
        return self.base_address + len(self.data)

    def address_of(self, label: str) -> int:
        try:
            return self.symbols[label]
        except KeyError:
            raise AssemblerError(f"undefined label {label!r}") from None


class Assembler:
    """Accumulates instructions and labels, then assembles at a base address.

    Usage::

        asm = Assembler(X86LIKE)
        asm.label("start")
        asm.emit(Instruction(Op.MOV, (Reg(0), Imm(1))))
        asm.emit(Instruction(Op.JMP, (Label("start"),)))
        unit = asm.assemble(base_address=0x1000)
    """

    def __init__(self, isa: ISADescription):
        self.isa = isa
        self._items: List[Union[str, Instruction]] = []

    def label(self, name: str) -> None:
        self._items.append(name)

    def emit(self, instruction: Instruction) -> None:
        self._items.append(instruction)

    def extend(self, instructions: List[Instruction]) -> None:
        self._items.extend(instructions)

    def __len__(self) -> int:
        return sum(1 for item in self._items if isinstance(item, Instruction))

    def assemble(self, base_address: int = 0,
                 externals: Optional[Dict[str, int]] = None) -> AssembledUnit:
        """Resolve labels and encode everything at ``base_address``.

        ``externals`` supplies addresses for labels defined outside this
        unit (e.g. functions in another compilation unit of the binary).
        """
        isa = self.isa
        if base_address % isa.alignment:
            raise AssemblerError(
                f"base address {base_address:#x} violates {isa.name} alignment")

        # Pass 1: lay out addresses; labels bind to the next instruction.
        symbols: Dict[str, int] = dict(externals or {})
        cursor = base_address
        placed: List[Tuple[int, Instruction]] = []
        for item in self._items:
            if isinstance(item, str):
                if item in symbols and (externals is None or item not in externals):
                    raise AssemblerError(f"duplicate label {item!r}")
                symbols[item] = cursor
            else:
                size = isa.encoded_size(_strip_labels(item))
                placed.append((cursor, item))
                cursor += size

        # Pass 2: substitute labels and encode.
        chunks: List[bytes] = []
        addresses: List[int] = []
        resolved_instructions: List[Instruction] = []
        for address, instruction in placed:
            resolved = _resolve(instruction, symbols)
            encoded = isa.encode(resolved, address)
            chunks.append(encoded)
            addresses.append(address)
            resolved_instructions.append(resolved)

        local_symbols = {name: addr for name, addr in symbols.items()
                         if externals is None or name not in externals}
        return AssembledUnit(
            isa=isa,
            base_address=base_address,
            data=b"".join(chunks),
            symbols=local_symbols,
            addresses=addresses,
            instructions=resolved_instructions,
        )


def _strip_labels(instruction: Instruction) -> Instruction:
    """Replace label operands with placeholder immediates for sizing."""
    if not any(isinstance(operand, Label) for operand in instruction.operands):
        return instruction
    operands = tuple(
        Imm(0) if isinstance(operand, Label) else operand
        for operand in instruction.operands
    )
    return Instruction(instruction.op, operands, instruction.cond)


def _resolve(instruction: Instruction, symbols: Dict[str, int]) -> Instruction:
    """Substitute label operands with their absolute addresses."""
    if not any(isinstance(operand, Label) for operand in instruction.operands):
        return instruction
    operands = []
    for operand in instruction.operands:
        if isinstance(operand, Label):
            if operand.name not in symbols:
                raise AssemblerError(f"undefined label {operand.name!r}")
            operands.append(Imm(operand.resolve(symbols[operand.name])))
        else:
            operands.append(operand)
    return Instruction(instruction.op, tuple(operands), instruction.cond)


def assemble_instructions(isa: ISADescription, instructions: List[Instruction],
                          base_address: int = 0) -> bytes:
    """Convenience wrapper: encode a label-free instruction list."""
    asm = Assembler(isa)
    asm.extend(instructions)
    return asm.assemble(base_address).data
