"""ISA substrate: the two modelled instruction sets and their tooling."""

from .base import (
    Cond,
    Decoded,
    Imm,
    Instruction,
    ISADescription,
    Label,
    Mem,
    Op,
    Operand,
    Reg,
    WORD_MASK,
    WORD_SIZE,
    to_signed,
    to_unsigned,
)
from .x86like import X86LIKE, X86LikeISA
from .armlike import ARMLIKE, ArmLikeISA
from .assembler import Assembler, AssembledUnit, assemble_instructions
from .disassembler import (
    decode_at,
    format_listing,
    instruction_starts,
    linear_disassemble,
    scan_offsets,
)

#: Both modelled ISAs, keyed by name.
ISAS = {X86LIKE.name: X86LIKE, ARMLIKE.name: ARMLIKE}

__all__ = [
    "ARMLIKE",
    "ArmLikeISA",
    "AssembledUnit",
    "Assembler",
    "Cond",
    "Decoded",
    "ISADescription",
    "ISAS",
    "Imm",
    "Instruction",
    "Label",
    "Mem",
    "Op",
    "Operand",
    "Reg",
    "WORD_MASK",
    "WORD_SIZE",
    "X86LIKE",
    "X86LikeISA",
    "assemble_instructions",
    "decode_at",
    "format_listing",
    "instruction_starts",
    "linear_disassemble",
    "scan_offsets",
    "to_signed",
    "to_unsigned",
]
