"""The armlike ISA: fixed-width, word-aligned, RISC-flavoured.

Every instruction is exactly four bytes and must be fetched from a
word-aligned program counter.  This kills unintentional gadgets outright
(the paper measures ARM's attack surface at 52× smaller than x86's) and
matches the load/store discipline of real ARM: ALU operations never take
memory operands, so PSR must emulate relocated operands with explicit
loads/stores through scratch registers (Section 5.1, "If the ISA does not
expose a certain addressing mode, the PSR virtual machine emulates it
using additional instructions and register temporaries").

Register file: r0–r12 general purpose, r13 = sp, r14 = lr, r15 reserved
as the program counter (never encoded as an operand).  Like real ARM code
built for stack unwinding, functions return by popping the saved return
address (``pop {pc}`` — our ``RET``), which is what makes stack-based ROP
meaningful on this ISA too.

Encoding (little-endian 32-bit word)::

    byte 0: opcode
    byte 1: (rd << 4) | rn          -- or (cond << 4) for Bcc
    bytes 2-3: imm16 payload        -- or rm in byte 2's low nibble

Branch displacements are in *words* relative to the next instruction.
"""

from __future__ import annotations

import struct
from typing import Dict

from ..errors import AssemblerError, DecodeError
from .base import (
    Cond,
    Decoded,
    Imm,
    Instruction,
    ISADescription,
    Label,
    Mem,
    Op,
    Reg,
    to_signed,
    to_unsigned,
)

R0, R1, R2, R3, R4, R5, R6, R7 = range(8)
R8, R9, R10, R11, R12, SP, LR, PC = range(8, 16)

_REG_NAMES = tuple(f"r{i}" for i in range(13)) + ("sp", "lr", "pc")

# Opcode byte assignments.
_OP_MOVR = 0x01
_OP_MOVI = 0x02
_OP_MOVT = 0x03
_OP_LDR = 0x04
_OP_STR = 0x05
_OP_ADDR = 0x06
_OP_ADDI = 0x07
_OP_SUBR = 0x08
_OP_SUBI = 0x09
_OP_MULR = 0x0A
_OP_DIVR = 0x0B
_OP_MODR = 0x0C
_OP_ANDR = 0x0D
_OP_ANDI = 0x0E
_OP_ORRR = 0x0F
_OP_ORRI = 0x10
_OP_EORR = 0x11
_OP_EORI = 0x12
_OP_LSLI = 0x13
_OP_LSRI = 0x14
_OP_ASRI = 0x15
_OP_LSLR = 0x16
_OP_LSRR = 0x17
_OP_ASRR = 0x18
_OP_NEG = 0x19
_OP_MVN = 0x1A
_OP_CMPR = 0x1B
_OP_CMPI = 0x1C
_OP_B = 0x1D
_OP_BCC = 0x1E
_OP_BL = 0x1F
_OP_BX = 0x20
_OP_BLX = 0x21
_OP_RET = 0x22
_OP_PUSH = 0x23
_OP_POP = 0x24
_OP_SWI = 0x25
_OP_NOP = 0x26
_OP_HLT = 0x27
_OP_LDRB = 0x28
_OP_STRB = 0x29

_ALU_REG: Dict[Op, int] = {
    Op.ADD: _OP_ADDR, Op.SUB: _OP_SUBR, Op.MUL: _OP_MULR, Op.DIV: _OP_DIVR,
    Op.MOD: _OP_MODR, Op.AND: _OP_ANDR, Op.OR: _OP_ORRR, Op.XOR: _OP_EORR,
    Op.SHL: _OP_LSLR, Op.SHR: _OP_LSRR, Op.SAR: _OP_ASRR, Op.CMP: _OP_CMPR,
}
_ALU_IMM: Dict[Op, int] = {
    Op.ADD: _OP_ADDI, Op.SUB: _OP_SUBI, Op.AND: _OP_ANDI, Op.OR: _OP_ORRI,
    Op.XOR: _OP_EORI, Op.SHL: _OP_LSLI, Op.SHR: _OP_LSRI, Op.SAR: _OP_ASRI,
    Op.CMP: _OP_CMPI,
}
_REG_ALU = {code: op for op, code in _ALU_REG.items()}
_IMM_ALU = {code: op for op, code in _ALU_IMM.items()}

IMM16_MIN = -0x8000
IMM16_MAX = 0x7FFF


def fits_imm16(value: int) -> bool:
    """True if the signed value fits the 16-bit immediate field."""
    return IMM16_MIN <= to_signed(value) <= IMM16_MAX


def _word(opcode: int, rd: int = 0, rn: int = 0, payload: int = 0) -> bytes:
    if not 0 <= rd < 16 or not 0 <= rn < 16:
        raise AssemblerError(f"register out of range: rd={rd} rn={rn}")
    return struct.pack("<BBH", opcode, (rd << 4) | rn, payload & 0xFFFF)


def _s16(value: int) -> int:
    signed = to_signed(value)
    if not IMM16_MIN <= signed <= IMM16_MAX:
        raise AssemblerError(f"immediate {signed:#x} does not fit imm16")
    return signed & 0xFFFF


def _sext16(value: int) -> int:
    return value - 0x10000 if value & 0x8000 else value


class ArmLikeISA(ISADescription):
    """Fixed-width RISC model (see module docstring)."""

    name = "armlike"
    alignment = 4
    num_registers = 16
    sp = SP
    lr = LR
    register_names = _REG_NAMES
    allocatable = (R4, R5, R6, R7, R8, R9, R10, R11)
    scratch = (R0, R1, R2, R3, R12)
    syscall_number_reg = R7
    syscall_arg_regs = (R0, R1, R2)
    return_reg = R0
    arg_regs = ()              # common multi-ISA ABI passes args on the stack
    call_pushes_return = False
    memory_operands = False
    # Little-endian words put the opcode in byte 0: BX / BLX / RET.
    gadget_seed_bytes = frozenset({_OP_BX, _OP_BLX, _OP_RET})

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, ins: Instruction, address: int = 0) -> bytes:
        op = ins.op
        ops = ins.operands

        if op is Op.NOP:
            return _word(_OP_NOP)
        if op is Op.HLT:
            return _word(_OP_HLT)
        if op is Op.RET:
            return _word(_OP_RET)
        if op is Op.SYSCALL:
            return _word(_OP_SWI)

        if op is Op.MOV:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Reg):
                return _word(_OP_MOVR, dst.index, 0, src.index)
            if isinstance(dst, Reg) and isinstance(src, Imm):
                return _word(_OP_MOVI, dst.index, 0, _s16(src.value))
        if op is Op.MOVT:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Imm):
                if not 0 <= src.value <= 0xFFFF:
                    raise AssemblerError("MOVT immediate must be 16-bit unsigned")
                return _word(_OP_MOVT, dst.index, 0, src.value)

        if op is Op.LOAD:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Mem):
                return _word(_OP_LDR, dst.index, src.base, _s16(src.disp))
        if op is Op.STORE:
            dst, src = ops
            if isinstance(dst, Mem) and isinstance(src, Reg):
                return _word(_OP_STR, src.index, dst.base, _s16(dst.disp))
        if op is Op.LOADB:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Mem):
                return _word(_OP_LDRB, dst.index, src.base, _s16(src.disp))
        if op is Op.STOREB:
            dst, src = ops
            if isinstance(dst, Mem) and isinstance(src, Reg):
                return _word(_OP_STRB, src.index, dst.base, _s16(dst.disp))
        if op is Op.LEA:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Mem):
                # LEA is ADDI into a different destination: rd = rn + imm16.
                # Encode via MOVR+ADDI is two words; give it its own form by
                # reusing ADDI with rn as the base and rd as destination.
                return _word(_OP_ADDI, dst.index, src.base, _s16(src.disp))

        if op in _ALU_REG or op in _ALU_IMM:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Reg) and op in _ALU_REG:
                return _word(_ALU_REG[op], dst.index, dst.index, src.index)
            if isinstance(dst, Reg) and isinstance(src, Imm) and op in _ALU_IMM:
                return _word(_ALU_IMM[op], dst.index, dst.index, _s16(src.value))

        if op is Op.NEG:
            (dst,) = ops
            if isinstance(dst, Reg):
                return _word(_OP_NEG, dst.index)
        if op is Op.NOT:
            (dst,) = ops
            if isinstance(dst, Reg):
                return _word(_OP_MVN, dst.index)

        if op is Op.PUSH:
            (src,) = ops
            if isinstance(src, Reg):
                return _word(_OP_PUSH, src.index)
        if op is Op.POP:
            (dst,) = ops
            if isinstance(dst, Reg):
                return _word(_OP_POP, dst.index)

        if op in (Op.JMP, Op.CALL, Op.JCC):
            (target,) = ops
            if isinstance(target, Label):
                raise AssemblerError(f"unresolved label {target.name!r}")
            if isinstance(target, Imm):
                delta = to_signed(target.value - (address + 4))
                if delta % 4:
                    raise AssemblerError("branch target not word-aligned")
                words = delta // 4
                if op in (Op.JMP, Op.CALL):
                    # B/BL carry a 24-bit word displacement (±32 MB) —
                    # byte 1 holds the high bits, like real ARM's imm24.
                    if not -(1 << 23) <= words < (1 << 23):
                        raise AssemblerError("branch displacement out of range")
                    opcode = _OP_B if op is Op.JMP else _OP_BL
                    high = (words >> 16) & 0xFF
                    return bytes([opcode, high]) + (words & 0xFFFF).to_bytes(2, "little")
                # Bcc: condition in the high nibble, 20-bit displacement.
                if not -(1 << 19) <= words < (1 << 19):
                    raise AssemblerError("conditional displacement out of range")
                fields = (ins.cond.value << 4) | ((words >> 16) & 0xF)
                return bytes([_OP_BCC, fields]) + (words & 0xFFFF).to_bytes(2, "little")

        if op is Op.IJMP:
            (target,) = ops
            if isinstance(target, Reg):
                return _word(_OP_BX, 0, 0, target.index)
        if op is Op.ICALL:
            (target,) = ops
            if isinstance(target, Reg):
                return _word(_OP_BLX, 0, 0, target.index)

        raise AssemblerError(f"armlike cannot encode {ins!r}")

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, data: bytes, offset: int, address: int) -> Decoded:
        if address % 4:
            raise DecodeError(address, "unaligned fetch")
        if offset + 4 > len(data):
            raise DecodeError(address, "truncated instruction")
        opcode, fields, payload = struct.unpack_from("<BBH", data, offset)
        rd, rn = fields >> 4, fields & 0xF
        rm = payload & 0xF
        raw = bytes(data[offset:offset + 4])

        def done(ins: Instruction) -> Decoded:
            return Decoded(address, 4, ins, raw)

        if opcode == _OP_NOP:
            return done(Instruction(Op.NOP))
        if opcode == _OP_HLT:
            return done(Instruction(Op.HLT))
        if opcode == _OP_RET:
            return done(Instruction(Op.RET))
        if opcode == _OP_SWI:
            return done(Instruction(Op.SYSCALL))
        if opcode == _OP_MOVR:
            return done(Instruction(Op.MOV, (Reg(rd), Reg(rm))))
        if opcode == _OP_MOVI:
            return done(Instruction(Op.MOV, (Reg(rd), Imm(_sext16(payload)))))
        if opcode == _OP_MOVT:
            return done(Instruction(Op.MOVT, (Reg(rd), Imm(payload))))
        if opcode == _OP_LDR:
            return done(Instruction(Op.LOAD, (Reg(rd), Mem(rn, _sext16(payload)))))
        if opcode == _OP_STR:
            return done(Instruction(Op.STORE, (Mem(rn, _sext16(payload)), Reg(rd))))
        if opcode == _OP_LDRB:
            return done(Instruction(Op.LOADB, (Reg(rd), Mem(rn, _sext16(payload)))))
        if opcode == _OP_STRB:
            return done(Instruction(Op.STOREB, (Mem(rn, _sext16(payload)), Reg(rd))))
        if opcode in _REG_ALU:
            # rn duplicates rd in the two-operand encoding except for the
            # LEA-style ADDI; reg ALU always has rn == rd.
            return done(Instruction(_REG_ALU[opcode], (Reg(rd), Reg(rm))))
        if opcode in _IMM_ALU:
            imm = Imm(_sext16(payload))
            if opcode == _OP_ADDI and rn != rd:
                return done(Instruction(Op.LEA, (Reg(rd), Mem(rn, _sext16(payload)))))
            return done(Instruction(_IMM_ALU[opcode], (Reg(rd), imm)))
        if opcode == _OP_NEG:
            return done(Instruction(Op.NEG, (Reg(rd),)))
        if opcode == _OP_MVN:
            return done(Instruction(Op.NOT, (Reg(rd),)))
        if opcode == _OP_PUSH:
            return done(Instruction(Op.PUSH, (Reg(rd),)))
        if opcode == _OP_POP:
            return done(Instruction(Op.POP, (Reg(rd),)))
        if opcode in (_OP_B, _OP_BL):
            words = (fields << 16) | payload
            if words & (1 << 23):
                words -= 1 << 24
            target = to_unsigned(address + 4 + 4 * words)
            op = Op.JMP if opcode == _OP_B else Op.CALL
            return done(Instruction(op, (Imm(target),)))
        if opcode == _OP_BCC:
            if rd > 5:
                raise DecodeError(address, "bad condition code")
            words = (rn << 16) | payload
            if words & (1 << 19):
                words -= 1 << 20
            target = to_unsigned(address + 4 + 4 * words)
            return done(Instruction(Op.JCC, (Imm(target),), cond=Cond(rd)))
        if opcode == _OP_BX:
            return done(Instruction(Op.IJMP, (Reg(rm),)))
        if opcode == _OP_BLX:
            return done(Instruction(Op.ICALL, (Reg(rm),)))

        raise DecodeError(address, f"unknown opcode {opcode:#04x}")


#: Singleton instance — the ISA carries no mutable state.
ARMLIKE = ArmLikeISA()
