"""Disassembly helpers: linear sweep and exhaustive byte-offset scanning.

The byte-offset scan (:func:`scan_offsets`) is the primitive underneath the
Galileo gadget miner: on x86like it starts a decode at *every* byte offset
— precisely how unintentional gadgets are discovered on real x86 — while
on armlike the ISA's alignment restricts starts to word boundaries.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import DecodeError
from .base import Decoded, ISADescription


def decode_at(isa: ISADescription, data: bytes, base_address: int,
              address: int) -> Decoded:
    """Decode the single instruction located at ``address``."""
    offset = address - base_address
    if offset < 0 or offset >= len(data):
        raise DecodeError(address, "address outside code region")
    return isa.decode(data, offset, address)


def linear_disassemble(isa: ISADescription, data: bytes, base_address: int,
                       start: Optional[int] = None,
                       stop_at_control: bool = False) -> List[Decoded]:
    """Linear-sweep disassembly from ``start`` (default: region base).

    Stops at the first decode failure, the end of the region, or — when
    ``stop_at_control`` is set — just after the first control-transfer
    instruction (the unit of work of the basic-block translator).
    """
    address = base_address if start is None else start
    result: List[Decoded] = []
    end = base_address + len(data)
    while address < end:
        try:
            decoded = decode_at(isa, data, base_address, address)
        except DecodeError:
            break
        result.append(decoded)
        address = decoded.end
        if stop_at_control and decoded.instruction.is_control():
            break
    return result


def scan_offsets(isa: ISADescription, data: bytes,
                 base_address: int) -> Iterator[Decoded]:
    """Yield a decoded instruction for every offset where decoding succeeds.

    Offsets advance by one byte on byte-granular ISAs and by the ISA's
    alignment otherwise.  Decode failures are skipped silently — the scan
    enumerates the *potential* instruction starts an attacker could target.
    """
    step = isa.alignment
    for offset in range(0, len(data), step):
        try:
            yield isa.decode(data, offset, base_address + offset)
        except DecodeError:
            continue


def instruction_starts(isa: ISADescription, data: bytes,
                       base_address: int) -> List[int]:
    """Addresses of the *intended* instruction stream (linear sweep)."""
    return [d.address for d in linear_disassemble(isa, data, base_address)]


def format_listing(isa: ISADescription, decoded: List[Decoded]) -> str:
    """Render a human-readable disassembly listing."""
    lines = []
    for item in decoded:
        raw = item.raw.hex() if item.raw else ""
        lines.append(f"{item.address:#010x}:  {raw:<16}  "
                     f"{item.instruction.render(isa)}")
    return "\n".join(lines)
