"""The x86like ISA: variable-length, byte-granular, CISC-flavoured.

The encoding deliberately mirrors 32-bit x86 where it matters for the
paper's security analysis:

* one-byte ``RET`` (``0xC3``) — so any ``0xC3`` byte inside an immediate or
  displacement creates a potential *unintentional gadget* when decoding
  starts at an unaligned offset;
* one-byte ``PUSH``/``POP`` (``0x50+r`` / ``0x58+r``);
* dense variable-length instructions (1–7 bytes), so almost every byte
  offset decodes to *something*;
* rich addressing modes — ALU operations can take one memory operand
  directly (load-op and op-store forms), which PSR exploits to relocate
  operands with a mere addressing-mode change (Section 5.1).

Registers follow the classic x86 file: eax, ecx, edx, ebx, esp, ebp,
esi, edi.  ``esp`` is the stack pointer; there is no link register — CALL
pushes the return address.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from ..errors import AssemblerError, DecodeError
from .base import (
    Cond,
    Decoded,
    Imm,
    Instruction,
    ISADescription,
    Label,
    Mem,
    Op,
    Reg,
    to_signed,
    to_unsigned,
)

EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI = range(8)

_REG_NAMES = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")

# Opcode maps for two-operand ALU forms.  Same layout as real x86:
#   reg-reg / op-store use the 0x01-style opcodes (reg field = source),
#   load-op uses the 0x03-style opcodes (reg field = destination),
#   reg-imm uses 0x81 with the extension in the reg field.
_ALU_RR: Dict[Op, int] = {
    Op.ADD: 0x01, Op.OR: 0x09, Op.AND: 0x21, Op.SUB: 0x29,
    Op.XOR: 0x31, Op.CMP: 0x39,
}
_ALU_RM: Dict[Op, int] = {
    Op.ADD: 0x03, Op.OR: 0x0B, Op.AND: 0x23, Op.SUB: 0x2B,
    Op.XOR: 0x33, Op.CMP: 0x3B,
}
_ALU_EXT: Dict[Op, int] = {
    Op.ADD: 0, Op.OR: 1, Op.AND: 4, Op.SUB: 5, Op.XOR: 6, Op.CMP: 7,
}
_RR_ALU = {code: op for op, code in _ALU_RR.items()}
_RM_ALU = {code: op for op, code in _ALU_RM.items()}
_EXT_ALU = {ext: op for op, ext in _ALU_EXT.items()}

_SHIFT_EXT: Dict[Op, int] = {Op.SHL: 4, Op.SHR: 5, Op.SAR: 7}
_EXT_SHIFT = {ext: op for op, ext in _SHIFT_EXT.items()}

_JCC_CODE: Dict[Cond, int] = {
    Cond.EQ: 0x84, Cond.NE: 0x85, Cond.LT: 0x8C,
    Cond.GE: 0x8D, Cond.LE: 0x8E, Cond.GT: 0x8F,
}
_CODE_JCC = {code: cond for cond, code in _JCC_CODE.items()}


def _modrm(mod: int, reg: int, rm: int) -> int:
    return ((mod & 3) << 6) | ((reg & 7) << 3) | (rm & 7)


def _split_modrm(byte: int) -> Tuple[int, int, int]:
    return byte >> 6, (byte >> 3) & 7, byte & 7



def _fits8(disp: int) -> bool:
    return -128 <= disp <= 127


def _mem(reg_field: int, mem: Mem) -> bytes:
    """ModRM + displacement for a base+disp memory operand.

    Like real x86, an 8-bit displacement form (mod=01) is used when the
    displacement fits a signed byte — denser code, and denser byte soup
    for unintentional gadgets.
    """
    if _fits8(mem.disp):
        return bytes([_modrm(1, reg_field, mem.base), mem.disp & 0xFF])
    return bytes([_modrm(2, reg_field, mem.base)]) + _i32(mem.disp)

def _i32(value: int) -> bytes:
    return struct.pack("<i", to_signed(value))


def _u32(value: int) -> bytes:
    return struct.pack("<I", to_unsigned(value))


class X86LikeISA(ISADescription):
    """Variable-length CISC model (see module docstring)."""

    name = "x86like"
    alignment = 1
    num_registers = 8
    sp = ESP
    lr = None
    register_names = _REG_NAMES
    # ebp is a general register in our -fomit-frame-pointer-style ABI.
    allocatable = (EBX, ESI, EDI, EBP)
    scratch = (EAX, ECX, EDX)
    syscall_number_reg = EAX
    syscall_arg_regs = (EBX, ECX, EDX)
    return_reg = EAX
    arg_regs = ()              # native ABI passes arguments on the stack
    call_pushes_return = True
    memory_operands = True
    # RET is the single byte 0xC3; ICALL/IJMP both start with 0xFF.
    gadget_seed_bytes = frozenset({0xC3, 0xFF})

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, ins: Instruction, address: int = 0) -> bytes:
        op = ins.op
        ops = ins.operands
        if op is Op.NOP:
            return b"\x90"
        if op is Op.HLT:
            return b"\xF4"
        if op is Op.RET:
            return b"\xC3"
        if op is Op.SYSCALL:
            return b"\xCD\x80"

        if op is Op.PUSH:
            (src,) = ops
            if isinstance(src, Reg):
                return bytes([0x50 + src.index])
            if isinstance(src, Imm):
                return b"\x68" + _u32(src.value)
            if isinstance(src, Mem):
                return bytes([0xFF]) + _mem(6, src)
        if op is Op.POP:
            (dst,) = ops
            if isinstance(dst, Reg):
                return bytes([0x58 + dst.index])
            if isinstance(dst, Mem):
                return bytes([0x8F]) + _mem(0, dst)

        if op is Op.MOV:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Imm):
                return bytes([0xB8 + dst.index]) + _u32(src.value)
            if isinstance(dst, Reg) and isinstance(src, Reg):
                return bytes([0x89, _modrm(3, src.index, dst.index)])
        if op is Op.LOAD:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Mem):
                return bytes([0x8B]) + _mem(dst.index, src)
        if op is Op.STORE:
            dst, src = ops
            if isinstance(dst, Mem) and isinstance(src, Reg):
                return bytes([0x89]) + _mem(src.index, dst)
            if isinstance(dst, Mem) and isinstance(src, Imm):
                return bytes([0xC7]) + _mem(0, dst) + _u32(src.value)
        if op is Op.LOADB:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Mem):
                return bytes([0x8A]) + _mem(dst.index, src)
        if op is Op.STOREB:
            dst, src = ops
            if isinstance(dst, Mem) and isinstance(src, Reg):
                return bytes([0x88]) + _mem(src.index, dst)
        if op is Op.LEA:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Mem):
                return bytes([0x8D]) + _mem(dst.index, src)

        if op in _ALU_RR:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Reg):
                return bytes([_ALU_RR[op], _modrm(3, src.index, dst.index)])
            if isinstance(dst, Reg) and isinstance(src, Imm):
                return (bytes([0x81, _modrm(3, _ALU_EXT[op], dst.index)])
                        + _u32(src.value))
            if isinstance(dst, Reg) and isinstance(src, Mem):
                return bytes([_ALU_RM[op]]) + _mem(dst.index, src)
            if isinstance(dst, Mem) and isinstance(src, Reg):
                return bytes([_ALU_RR[op]]) + _mem(src.index, dst)

        if op is Op.MUL:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Reg):
                return bytes([0x0F, 0xAF, _modrm(3, dst.index, src.index)])
            if isinstance(dst, Reg) and isinstance(src, Mem):
                return bytes([0x0F, 0xAF]) + _mem(dst.index, src)
            if isinstance(dst, Reg) and isinstance(src, Imm):
                return (bytes([0x69, _modrm(3, dst.index, dst.index)])
                        + _u32(src.value))

        if op is Op.DIV:
            dst, src = ops
            if isinstance(dst, Reg) and dst.index == EAX and isinstance(src, Reg):
                return bytes([0xF7, _modrm(3, 6, src.index)])
        if op is Op.MOD:
            dst, src = ops
            if isinstance(dst, Reg) and dst.index == EDX and isinstance(src, Reg):
                return bytes([0xF7, _modrm(3, 7, src.index)])

        if op in _SHIFT_EXT:
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Imm):
                return bytes([0xC1, _modrm(3, _SHIFT_EXT[op], dst.index),
                              src.value & 0xFF])
            if isinstance(dst, Reg) and isinstance(src, Reg) and src.index == ECX:
                return bytes([0xD3, _modrm(3, _SHIFT_EXT[op], dst.index)])

        if op is Op.NEG:
            (dst,) = ops
            if isinstance(dst, Reg):
                return bytes([0xF7, _modrm(3, 3, dst.index)])
        if op is Op.NOT:
            (dst,) = ops
            if isinstance(dst, Reg):
                return bytes([0xF7, _modrm(3, 2, dst.index)])

        if op in (Op.CALL, Op.JMP, Op.JCC):
            (target,) = ops
            if isinstance(target, Label):
                raise AssemblerError(f"unresolved label {target.name!r}")
            if isinstance(target, Imm):
                if op is Op.CALL:
                    rel = target.value - (address + 5)
                    return b"\xE8" + _i32(rel)
                if op is Op.JMP:
                    rel = target.value - (address + 5)
                    return b"\xE9" + _i32(rel)
                rel = target.value - (address + 6)
                return bytes([0x0F, _JCC_CODE[ins.cond]]) + _i32(rel)

        if op in (Op.ICALL, Op.IJMP):
            (target,) = ops
            ext = 2 if op is Op.ICALL else 4
            if isinstance(target, Reg):
                return bytes([0xFF, _modrm(3, ext, target.index)])
            if isinstance(target, Mem):
                return bytes([0xFF]) + _mem(ext, target)

        raise AssemblerError(f"x86like cannot encode {ins!r}")

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, data: bytes, offset: int, address: int) -> Decoded:
        def fail(msg: str = "invalid instruction") -> DecodeError:
            return DecodeError(address, msg)

        n = len(data)
        if offset >= n:
            raise fail("fetch past end of code")
        b0 = data[offset]

        def need(count: int) -> None:
            if offset + count > n:
                raise fail("truncated instruction")

        def disp_at(pos: int) -> int:
            return struct.unpack_from("<i", data, pos)[0]

        def imm_at(pos: int) -> int:
            return struct.unpack_from("<I", data, pos)[0]

        def done(size: int, ins: Instruction) -> Decoded:
            return Decoded(address, size, ins, bytes(data[offset:offset + size]))

        def mem_at(pos: int, mod: int, rm: int):
            """(Mem, bytes consumed by the displacement) for mod 01/10."""
            if mod == 1:
                need(pos - offset + 1)
                disp = struct.unpack_from("<b", data, pos)[0]
                return Mem(rm, disp), 1
            need(pos - offset + 4)
            return Mem(rm, disp_at(pos)), 4

        if b0 == 0x90:
            return done(1, Instruction(Op.NOP))
        if b0 == 0xF4:
            return done(1, Instruction(Op.HLT))
        if b0 == 0xC3:
            return done(1, Instruction(Op.RET))
        if b0 == 0xCD:
            need(2)
            if data[offset + 1] == 0x80:
                return done(2, Instruction(Op.SYSCALL))
            raise fail("unsupported interrupt vector")
        if 0x50 <= b0 <= 0x57:
            return done(1, Instruction(Op.PUSH, (Reg(b0 - 0x50),)))
        if 0x58 <= b0 <= 0x5F:
            return done(1, Instruction(Op.POP, (Reg(b0 - 0x58),)))
        if b0 == 0x68:
            need(5)
            return done(5, Instruction(Op.PUSH, (Imm(imm_at(offset + 1)),)))
        if 0xB8 <= b0 <= 0xBF:
            need(5)
            return done(5, Instruction(
                Op.MOV, (Reg(b0 - 0xB8), Imm(imm_at(offset + 1)))))

        if (b0 in (0x88, 0x89, 0x8A, 0x8B, 0x8D)
                or b0 in _RR_ALU or b0 in _RM_ALU):
            need(2)
            mod, reg, rm = _split_modrm(data[offset + 1])
            if mod == 3:
                if b0 in (0x88, 0x8A, 0x8B, 0x8D) or b0 in _RM_ALU:
                    raise fail("reg-form of memory-only opcode")
                if b0 == 0x89:
                    return done(2, Instruction(Op.MOV, (Reg(rm), Reg(reg))))
                return done(2, Instruction(_RR_ALU[b0], (Reg(rm), Reg(reg))))
            if mod in (1, 2):
                mem, disp_size = mem_at(offset + 2, mod, rm)
                size = 2 + disp_size
                if b0 == 0x8B:
                    return done(size, Instruction(Op.LOAD, (Reg(reg), mem)))
                if b0 == 0x8A:
                    return done(size, Instruction(Op.LOADB, (Reg(reg), mem)))
                if b0 == 0x8D:
                    return done(size, Instruction(Op.LEA, (Reg(reg), mem)))
                if b0 == 0x89:
                    return done(size, Instruction(Op.STORE, (mem, Reg(reg))))
                if b0 == 0x88:
                    return done(size, Instruction(Op.STOREB, (mem, Reg(reg))))
                if b0 in _RM_ALU:
                    return done(size, Instruction(_RM_ALU[b0], (Reg(reg), mem)))
                return done(size, Instruction(_RR_ALU[b0], (mem, Reg(reg))))
            raise fail("unsupported mod bits")

        if b0 == 0x81:
            need(6)
            mod, ext, rm = _split_modrm(data[offset + 1])
            if mod != 3 or ext not in _EXT_ALU:
                raise fail("bad 0x81 form")
            return done(6, Instruction(
                _EXT_ALU[ext], (Reg(rm), Imm(imm_at(offset + 2)))))

        if b0 == 0xC7:
            need(2)
            mod, ext, rm = _split_modrm(data[offset + 1])
            if mod not in (1, 2) or ext != 0:
                raise fail("bad 0xC7 form")
            mem, disp_size = mem_at(offset + 2, mod, rm)
            need(2 + disp_size + 4)
            return done(2 + disp_size + 4, Instruction(
                Op.STORE, (mem, Imm(imm_at(offset + 2 + disp_size)))))

        if b0 == 0x8F:
            need(2)
            mod, ext, rm = _split_modrm(data[offset + 1])
            if mod not in (1, 2) or ext != 0:
                raise fail("bad 0x8F form")
            mem, disp_size = mem_at(offset + 2, mod, rm)
            return done(2 + disp_size, Instruction(Op.POP, (mem,)))

        if b0 == 0x0F:
            need(2)
            b1 = data[offset + 1]
            if b1 == 0xAF:
                need(3)
                mod, reg, rm = _split_modrm(data[offset + 2])
                if mod == 3:
                    return done(3, Instruction(Op.MUL, (Reg(reg), Reg(rm))))
                if mod in (1, 2):
                    mem, disp_size = mem_at(offset + 3, mod, rm)
                    return done(3 + disp_size,
                                Instruction(Op.MUL, (Reg(reg), mem)))
                raise fail("bad imul form")
            if b1 in _CODE_JCC:
                need(6)
                rel = disp_at(offset + 2)
                target = to_unsigned(address + 6 + rel)
                return done(6, Instruction(
                    Op.JCC, (Imm(target),), cond=_CODE_JCC[b1]))
            raise fail("unsupported 0x0F escape")

        if b0 == 0x69:
            need(6)
            mod, reg, rm = _split_modrm(data[offset + 1])
            if mod != 3 or reg != rm:
                raise fail("bad imul-imm form")
            return done(6, Instruction(Op.MUL, (Reg(rm), Imm(imm_at(offset + 2)))))

        if b0 == 0xF7:
            need(2)
            mod, ext, rm = _split_modrm(data[offset + 1])
            if mod != 3:
                raise fail("bad 0xF7 form")
            if ext == 6:
                return done(2, Instruction(Op.DIV, (Reg(EAX), Reg(rm))))
            if ext == 7:
                return done(2, Instruction(Op.MOD, (Reg(EDX), Reg(rm))))
            if ext == 3:
                return done(2, Instruction(Op.NEG, (Reg(rm),)))
            if ext == 2:
                return done(2, Instruction(Op.NOT, (Reg(rm),)))
            raise fail("bad 0xF7 extension")

        if b0 == 0xC1:
            need(3)
            mod, ext, rm = _split_modrm(data[offset + 1])
            if mod != 3 or ext not in _EXT_SHIFT:
                raise fail("bad shift form")
            return done(3, Instruction(
                _EXT_SHIFT[ext], (Reg(rm), Imm(data[offset + 2]))))

        if b0 == 0xD3:
            need(2)
            mod, ext, rm = _split_modrm(data[offset + 1])
            if mod != 3 or ext not in _EXT_SHIFT:
                raise fail("bad shift-cl form")
            return done(2, Instruction(_EXT_SHIFT[ext], (Reg(rm), Reg(ECX))))

        if b0 == 0xE8 or b0 == 0xE9:
            need(5)
            rel = disp_at(offset + 1)
            target = to_unsigned(address + 5 + rel)
            op = Op.CALL if b0 == 0xE8 else Op.JMP
            return done(5, Instruction(op, (Imm(target),)))

        if b0 == 0xFF:
            need(2)
            mod, ext, rm = _split_modrm(data[offset + 1])
            if ext == 2:
                op = Op.ICALL
            elif ext == 4:
                op = Op.IJMP
            elif ext == 6 and mod in (1, 2):
                mem, disp_size = mem_at(offset + 2, mod, rm)
                return done(2 + disp_size, Instruction(Op.PUSH, (mem,)))
            else:
                raise fail("bad 0xFF extension")
            if mod == 3:
                return done(2, Instruction(op, (Reg(rm),)))
            if mod in (1, 2):
                mem, disp_size = mem_at(offset + 2, mod, rm)
                return done(2 + disp_size, Instruction(op, (mem,)))
            raise fail("bad 0xFF form")

        raise fail(f"unknown opcode {b0:#04x}")


#: Singleton instance — the ISA carries no mutable state.
X86LIKE = X86LikeISA()
