"""Tailored attacks against diversification — Figures 7 and 8.

Figure 7 compares the *entropy* of each defense as a function of gadget
chain length: Isomeron and heterogeneous-ISA migration alone give one bit
per gadget (which variant / which ISA executes it), so chains of length k
have only 2^k states — brute-forceable for short chains.  PSR multiplies
each link by its per-gadget randomization states.

Figure 8 attacks the diversification itself: an attacker who knows about
the coin-flipping constructs chains from gadgets that are *immune* to it
— gadgets that behave identically under both outcomes of the flip.  For
same-ISA diversification (Isomeron) such gadgets exist in numbers ("it is
more likely to find large gadgets ... unaffected by diversification on
the same ISA"); across ISAs a gadget's bytes must decode to equivalent
behaviour on a *different instruction set*, which essentially never
happens.  We measure both immunities empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..compiler.fatbinary import FatBinary
from ..core.relocation import PSRConfig
from ..errors import DecodeError
from ..isa import ARMLIKE, ISAS, X86LIKE
from .gadgets import (
    GadgetEffect,
    PSRGadgetAnalyzer,
    evaluate_gadget,
    evaluate_instructions,
)
from .galileo import Gadget, mine_binary


# ----------------------------------------------------------------------
# Figure 7: entropy vs chain length
# ----------------------------------------------------------------------
def entropy_series(chain_lengths: Sequence[int],
                   psr_bits_per_gadget: float = 13.0,
                   cap: Optional[float] = None) -> Dict[str, List[float]]:
    """Entropy (number of states) per defense, per chain length.

    ``psr_bits_per_gadget`` is the *minimum* per-gadget entropy PSR adds
    (one relocated return address at the default 8 KB frames); real
    gadgets carry more (Table 2's ~87 bits).  ``cap`` optionally clips
    the curves for plotting, as the paper's figure does.
    """
    def clip(value: float) -> float:
        return min(value, cap) if cap is not None else value

    psr_states = 2.0 ** psr_bits_per_gadget
    series: Dict[str, List[float]] = {
        "isomeron": [], "het_isa": [], "psr": [],
        "psr+isomeron": [], "hipstr": [],
    }
    for k in chain_lengths:
        series["isomeron"].append(clip(2.0 ** k))
        series["het_isa"].append(clip(2.0 ** k))
        series["psr"].append(clip(psr_states ** k))
        series["psr+isomeron"].append(clip((2.0 * psr_states) ** k))
        series["hipstr"].append(clip((2.0 * psr_states) ** k))
    return series


# ----------------------------------------------------------------------
# Figure 8: surviving gadgets vs diversification probability
# ----------------------------------------------------------------------
@dataclass
class DiversificationImmunity:
    """Measured immunity of one binary's viable gadget population."""

    benchmark: str
    viable_gadgets: int
    #: immune to same-ISA variant switching (Isomeron-style)
    same_isa_immune: int
    #: immune to cross-ISA switching (HIPStR-style)
    cross_isa_immune: int


def measure_immunity(binary: FatBinary, benchmark: str = "",
                     isa_name: str = "x86like", seed: int = 0,
                     config: Optional[PSRConfig] = None,
                     ) -> DiversificationImmunity:
    """Empirically test each viable gadget against both diversifiers."""
    config = config or PSRConfig()
    isa = ISAS[isa_name]
    other = ARMLIKE if isa_name == "x86like" else X86LIKE
    gadgets = mine_binary(binary, isa_name)

    # Variant B for the same-ISA test: an independently seeded relocation
    # (Isomeron's "diversified copy" — same ISA, shuffled state).
    variant_a = PSRGadgetAnalyzer(binary, isa_name, config, seed)
    variant_b = PSRGadgetAnalyzer(binary, isa_name, config, seed + 1)

    viable = 0
    same_isa_immune = 0
    cross_isa_immune = 0
    for gadget in gadgets:
        native = evaluate_gadget(gadget)
        if not native.is_viable:
            continue
        viable += 1

        effect_a = variant_a.analyze(gadget).psr_effect
        effect_b = variant_b.analyze(gadget).psr_effect
        if (effect_a is not None and effect_b is not None
                and effect_a.completed and effect_a.same_behaviour(effect_b)):
            same_isa_immune += 1

        if _cross_isa_equivalent(binary, gadget, isa, other, native):
            cross_isa_immune += 1

    return DiversificationImmunity(
        benchmark=benchmark,
        viable_gadgets=viable,
        same_isa_immune=same_isa_immune,
        cross_isa_immune=cross_isa_immune,
    )


def _cross_isa_equivalent(binary: FatBinary, gadget: Gadget, isa, other,
                          native: GadgetEffect) -> bool:
    """Would the gadget's *address* behave identically on the other ISA?

    A tailored chain interleaving ISAs reuses one address on whichever
    core happens to execute it; the bytes at that address must decode to
    a sequence with the same effect on the other instruction set.
    """
    section = binary.sections[isa.name]
    offset = gadget.address - section.base_address
    if gadget.address % other.alignment:
        return False
    instructions = []
    cursor = offset
    for _ in range(len(gadget.instructions) + 4):
        try:
            decoded = other.decode(section.data, cursor, gadget.address
                                   + (cursor - offset))
        except DecodeError:
            return False
        instructions.append(decoded.instruction)
        cursor += decoded.size
        if decoded.instruction.is_control():
            break
    else:
        return False
    effect = evaluate_instructions(other, instructions)
    if not effect.completed:
        return False
    return (set(effect.populated) == set(native.populated)
            and effect.stack_delta == native.stack_delta)


def surviving_vs_probability(immunity: DiversificationImmunity,
                             probabilities: Sequence[float],
                             ) -> Dict[str, List[float]]:
    """Expected surviving gadget counts per defense (Figure 8).

    A gadget survives a diversification flip with probability
    ``(1-p) + p·immune``; the expected surface is the sum over viable
    gadgets.  PSR-based systems start from the same viable pool but an
    attacker must additionally beat PSR itself — the figure isolates the
    diversification axis, so PSR's own reduction is applied as the
    starting pool for the PSR rows.
    """
    n = immunity.viable_gadgets
    same = immunity.same_isa_immune
    cross = immunity.cross_isa_immune
    result: Dict[str, List[float]] = {
        "isomeron": [], "het_isa": [], "psr": [],
        "psr+isomeron": [], "hipstr": [],
    }
    for p in probabilities:
        keep_same = n * (1 - p) + same * p
        keep_cross = n * (1 - p) + cross * p
        result["isomeron"].append(keep_same)
        result["het_isa"].append(keep_cross)
        result["psr"].append(float(n))              # PSR alone: no flips
        result["psr+isomeron"].append(keep_same)
        result["hipstr"].append(keep_cross)
    return result
