"""Just-in-time code reuse (JIT-ROP) attack model — Figure 5 of the paper.

The JIT-ROP attacker (Snow et al.) holds a memory-disclosure primitive:
starting from one leaked code pointer, they read code pages, disassemble
on the fly, and build an exploit from what they *see*.  Against PSR the
pages worth reading are the code cache — only code already translated
(and therefore already randomized) is both visible and executable, which
is why the paper's Figure 5 shows the surface collapsing to the gadgets
"already randomized by PSR and present in the code cache".

Against HIPStR the surviving gadgets must additionally be *enterable
without tripping a migration*: the only indirect-transfer targets the VM
resolves without flagging a breach are the already-registered indirect
targets (function entries reached through pointers, call-return
continuations).  Everything else migrates the victim to the other ISA
with some probability, invalidating the attacker's disclosed knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..compiler.fatbinary import FatBinary
from ..core.relocation import PSRConfig
from ..core.runner import run_under_psr
from ..isa import ISAS
from .gadgets import evaluate_instructions
from .galileo import Gadget, mine_binary, mine_gadgets


@dataclass
class JITROPSurface:
    """The JIT-ROP view of one PSR-protected process at steady state."""

    benchmark: str
    isa_name: str
    #: classic (text-section) gadget population, for scale
    text_gadgets: int
    #: gadgets discoverable inside the disclosed code cache
    cache_gadgets: int
    #: of those, semantically viable (populate a register, complete)
    cache_viable: int
    #: viable gadgets whose entry would flag a breach (migration chance)
    flagging: int
    #: viable gadgets enterable through registered indirect targets
    surviving: int
    #: surviving gadget entry source addresses
    surviving_addresses: Tuple[int, ...] = ()

    @property
    def surface_fraction(self) -> float:
        """Cache-resident share of the classic surface (paper: ~1.45%)."""
        if not self.text_gadgets:
            return 0.0
        return self.cache_viable / self.text_gadgets


def jitrop_surface(binary: FatBinary, benchmark: str = "",
                   isa_name: str = "x86like",
                   config: Optional[PSRConfig] = None, seed: int = 0,
                   stdin: bytes = b"",
                   steady_state_instructions: int = 2_000_000,
                   ) -> JITROPSurface:
    """Run to steady state under PSR, then measure the disclosed surface."""
    config = config or PSRConfig()
    run = run_under_psr(binary, isa_name, config, seed, stdin=stdin,
                        max_instructions=steady_state_instructions)
    vm = run.vm
    isa = ISAS[isa_name]

    text_gadgets = len(mine_binary(binary, isa_name))

    # The attacker reads the code cache and mines it like any code page.
    cache_bytes = vm.cache_bytes()
    cache_gadget_list = mine_gadgets(isa, cache_bytes, vm.cache.base)
    viable: List[Gadget] = []
    for gadget in cache_gadget_list:
        effect = evaluate_instructions(isa, gadget.instructions)
        if effect.is_viable:
            viable.append(gadget)

    # Which viable gadgets can be *entered* without a code-cache-missing
    # indirect transfer?  Entry is by overwriting a return address or
    # code pointer with a source address; the VM resolves it without
    # flagging only if it is a registered indirect target.
    safe_entries: Set[int] = set()
    for source in vm.indirect_targets:
        cache_address = vm.cache.peek(source)
        if cache_address is not None:
            safe_entries.add(cache_address)

    surviving: List[Gadget] = []
    for gadget in viable:
        if gadget.address in safe_entries:
            surviving.append(gadget)

    return JITROPSurface(
        benchmark=benchmark,
        isa_name=isa_name,
        text_gadgets=text_gadgets,
        cache_gadgets=len(cache_gadget_list),
        cache_viable=len(viable),
        flagging=len(viable) - len(surviving),
        surviving=len(surviving),
        surviving_addresses=tuple(g.address for g in surviving),
    )


def four_gadget_chain_possible(surface: JITROPSurface) -> bool:
    """Could the survivors even form the simplest execve chain?

    The paper's bar: four gadgets populating four distinct registers
    without clobbering each other.  With the handful of survivors HIPStR
    leaves, this is expected to fail on every benchmark.
    """
    return surface.surviving >= 4
