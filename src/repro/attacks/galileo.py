"""The Galileo gadget-mining algorithm (Shacham, CCS 2007).

Galileo finds every instruction sequence ending in a return (or, for the
JOP variant, an indirect jump/call) by scanning *backwards* from each
return opcode and attempting a decode at every earlier offset.  On
x86like the scan is byte-granular — unintentional gadgets fall out of
unaligned decode of the dense variable-length encoding, exactly as on
real x86.  On armlike the mandatory word alignment restricts starts to
word boundaries, which is why the paper measures ARM's attack surface at
52× smaller (Section 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DecodeError
from ..isa.base import Instruction, ISADescription, Op

#: longest gadget body considered, in instructions (excluding the ending
#: control transfer) — matches typical Galileo practice
MAX_GADGET_INSTRUCTIONS = 8
#: furthest back the x86like byte scan looks from a return opcode
MAX_GADGET_BYTES = 40

#: opcodes that may legitimately *end* a gadget
GADGET_ENDINGS = frozenset({Op.RET, Op.IJMP, Op.ICALL})


@dataclass(frozen=True)
class Gadget:
    """One mined gadget: a code address and the sequence it decodes to."""

    address: int
    instructions: Tuple[Instruction, ...]      # body + ending transfer
    ending: Op                                 # RET / IJMP / ICALL
    isa_name: str
    #: True if the gadget starts at an intended instruction boundary
    intended: bool = False

    @property
    def body(self) -> Tuple[Instruction, ...]:
        return self.instructions[:-1]

    @property
    def length(self) -> int:
        return len(self.instructions)

    @property
    def kind(self) -> str:
        if self.ending is Op.RET:
            return "rop"
        return "jop"

    def __repr__(self) -> str:
        return (f"<Gadget {self.isa_name}@{self.address:#x} "
                f"{self.length} ins {self.kind}>")


def _seed_anchor_offsets(data: bytes, seeds, step: int) -> List[int]:
    """Offsets whose first byte could begin a gadget-ending instruction.

    The scan never attempts a decode: it runs one C-level ``bytes.find``
    sweep per seed byte, then merges the hit lists.  The result is a
    superset of the true ending offsets (a seed byte may still decode to
    something else — or to nothing), sorted ascending like the exhaustive
    scan produced.
    """
    anchors: List[int] = []
    for seed in seeds:
        needle = bytes((seed,))
        position = data.find(needle)
        while position != -1:
            if position % step == 0:
                anchors.append(position)
            position = data.find(needle, position + 1)
    anchors.sort()
    return anchors


def find_ending_offsets(isa: ISADescription, data: bytes) -> List[int]:
    """Offsets of every decodable gadget-ending instruction."""
    step = isa.alignment
    seeds = isa.gadget_seed_bytes
    if seeds is not None:
        candidates = _seed_anchor_offsets(data, seeds, step)
    else:
        candidates = range(0, len(data), step)
    endings: List[int] = []
    for offset in candidates:
        try:
            decoded = isa.decode(data, offset, offset)
        except DecodeError:
            continue
        if decoded.instruction.op in GADGET_ENDINGS:
            endings.append(offset)
    return endings


class _DecodeMemo:
    """Per-region decode cache: offset -> Decoded (or None for invalid).

    The backward scan re-visits the same offsets for every candidate
    start and every nearby ending, so memoizing the context-free
    ``decode(data, offset, offset)`` turns the quadratic re-decode work
    into one decode per distinct offset.
    """

    __slots__ = ("_isa", "_data", "_cache")

    def __init__(self, isa: ISADescription, data: bytes):
        self._isa = isa
        self._data = data
        self._cache: Dict[int, Optional[object]] = {}

    def decode(self, offset: int):
        cache = self._cache
        if offset in cache:
            return cache[offset]
        try:
            decoded = self._isa.decode(self._data, offset, offset)
        except DecodeError:
            decoded = None
        cache[offset] = decoded
        return decoded


def _decode_sequence(memo: _DecodeMemo, start: int,
                     end: int) -> Optional[List[Instruction]]:
    """Decode [start, end) as a straight-line sequence, or None."""
    instructions: List[Instruction] = []
    offset = start
    while offset < end:
        decoded = memo.decode(offset)
        if decoded is None:
            return None
        ins = decoded.instruction
        if ins.is_control() or ins.op is Op.HLT:
            return None         # intervening control flow breaks the gadget
        instructions.append(ins)
        offset += decoded.size
        if len(instructions) > MAX_GADGET_INSTRUCTIONS:
            return None
    if offset != end:
        return None
    return instructions


def mine_gadgets(isa: ISADescription, data: bytes, base_address: int,
                 intended_starts: Optional[set] = None,
                 include_jop: bool = True) -> List[Gadget]:
    """Run Galileo over one code region.

    ``intended_starts`` (absolute addresses of the real instruction
    stream) marks gadgets that begin at intended boundaries; everything
    else is an unintentional gadget.
    """
    gadgets: List[Gadget] = []
    seen: set = set()
    step = isa.alignment
    memo = _DecodeMemo(isa, data)
    for end_offset in find_ending_offsets(isa, data):
        ending_decoded = memo.decode(end_offset)
        ending_op = ending_decoded.instruction.op
        if not include_jop and ending_op is not Op.RET:
            continue
        earliest = max(0, end_offset - MAX_GADGET_BYTES)
        start = end_offset
        while start >= earliest:
            body = _decode_sequence(memo, start, end_offset)
            if body is not None:
                address = base_address + start
                if address not in seen:
                    seen.add(address)
                    gadgets.append(Gadget(
                        address=address,
                        instructions=tuple(body)
                        + (ending_decoded.instruction,),
                        ending=ending_op,
                        isa_name=isa.name,
                        intended=(intended_starts is not None
                                  and address in intended_starts),
                    ))
            start -= step
    return gadgets


def mine_binary(binary, isa_name: str, include_jop: bool = True) -> List[Gadget]:
    """Mine the fat binary's text section for one ISA."""
    from ..isa import ISAS

    section = binary.sections[isa_name]
    isa = ISAS[isa_name]
    starts = set(section.addresses)
    return mine_gadgets(isa, section.data, section.base_address,
                        intended_starts=starts, include_jop=include_jop)


def gadget_population_summary(gadgets: Sequence[Gadget]) -> Dict[str, int]:
    """Counts the attack-surface tables are built from."""
    return {
        "total": len(gadgets),
        "rop": sum(1 for g in gadgets if g.kind == "rop"),
        "jop": sum(1 for g in gadgets if g.kind == "jop"),
        "unintended": sum(1 for g in gadgets if not g.intended),
        "intended": sum(1 for g in gadgets if g.intended),
    }
