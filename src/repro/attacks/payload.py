"""End-to-end exploit construction — the Figure 1 attack, executed.

A complete ROP-style exploit against a vulnerable network daemon in the
model: the victim reads attacker bytes into a fixed-size stack buffer
(classic overflow), and the attacker's payload redirects the return into
the victim's own syscall-marshalling code with a crafted stack, spawning
``execve("/bin/sh")``.

Run natively, the exploit succeeds deterministically — the attacker
computes every offset from the binary, exactly as the threat model allows
(complete disclosure, Section 4).  Run under PSR, the same payload fails:
the buffer's distance to the return-address slot is randomized per
process by the relocation map, so the overwrite lands in randomization
space and the daemon simply keeps running.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..compiler import compile_minic
from ..compiler.fatbinary import FatBinary
from ..core.relocation import PSRConfig
from ..core.runner import create_psr_process
from ..isa import ISAS, Mem, Op, Reg
from ..machine.process import Process
from ..errors import AttackError

#: the vulnerable daemon: reads a request into a 16-byte stack buffer
#: with a 256-byte read — the canonical overflow
VULNERABLE_SOURCE = """
char greeting[24] = "vulnd: send request\\n";

int log_line(int p, int n) {
    return syscall(4, 1, p, n);
}

int handle_request() {
    char buf[16];
    int n;
    n = syscall(3, 0, &buf, 256);
    if (n <= 0) { return 0 - 1; }
    return n;
}

int main() {
    log_line(&greeting, 20);
    handle_request();
    return 0;
}
"""


def build_vulnerable_binary() -> FatBinary:
    return compile_minic(VULNERABLE_SOURCE)


@dataclass
class SyscallStaging:
    """A located syscall-marshalling sequence — the exploit's one gadget.

    The compiler stages syscall inputs on the stack and loads them into
    the syscall registers immediately before trapping; jumping into the
    first load with a crafted stack gives the attacker full control of
    the syscall and its arguments (a return-into-syscall-stub attack).
    """

    entry_address: int
    #: target register -> stack offset (relative to sp at entry)
    register_slots: Dict[int, int]
    syscall_address: int


def find_syscall_staging(binary: FatBinary,
                         isa_name: str = "x86like") -> List[SyscallStaging]:
    """Locate every syscall staging sequence by disassembling the text."""
    unit = binary.sections[isa_name]
    isa = ISAS[isa_name]
    stagings: List[SyscallStaging] = []
    items = list(zip(unit.addresses, unit.instructions))
    for index, (address, instruction) in enumerate(items):
        if instruction.op is not Op.SYSCALL:
            continue
        slots: Dict[int, int] = {}
        entry = address
        walk = index - 1
        while walk >= 0:
            prev_address, prev = items[walk]
            if (prev.op is Op.LOAD and isinstance(prev.operands[0], Reg)
                    and isinstance(prev.operands[1], Mem)
                    and prev.operands[1].base == isa.sp):
                slots[prev.operands[0].index] = prev.operands[1].disp
                entry = prev_address
                walk -= 1
                continue
            break
        if slots:
            stagings.append(SyscallStaging(entry, slots, address))
    return stagings


@dataclass
class ExploitPayload:
    """The crafted bytes the attacker feeds to the daemon's read()."""

    data: bytes
    buffer_address: int
    return_slot_address: int
    staging: SyscallStaging
    shell_string_address: int


@dataclass
class Reconnaissance:
    """What the attacker learns from running their own copy of the victim."""

    buffer_address: int
    frame_base: int


def reconnoiter(binary: FatBinary, isa_name: str = "x86like",
                victim_function: str = "handle_request") -> Reconnaissance:
    """Run the victim with benign input and observe the buffer address.

    Legal under the threat model: the attacker has the binary and runs it
    locally.  The READ syscall's buffer-pointer argument and the frame
    base at function entry come straight out of the run.
    """
    process = Process(binary.to_process_image(), ISAS[isa_name])
    process.os.reset(stdin=b"x")
    info = binary.symtab.function(victim_function)
    entry_block = info.per_isa[isa_name].block_addresses[
        info.block_order[0]]
    observed = {"base": None}

    def observer(cpu, step_info):
        # The victim function's first block executes with sp == frame base
        # (its first instruction does not touch sp).
        if (step_info.decoded.address == entry_block
                and observed["base"] is None):
            observed["base"] = cpu.sp

    process.interpreter.observers.append(observer)
    process.run(1_000_000)
    read_events = [event for event in process.os.events
                   if event.number == 3]
    if not read_events or observed["base"] is None:
        raise AttackError("reconnaissance failed to observe the read()")
    return Reconnaissance(read_events[0].args[1], observed["base"])


def build_exploit(binary: FatBinary, isa_name: str = "x86like",
                  victim_function: str = "handle_request",
                  shell: bytes = b"/bin/sh") -> ExploitPayload:
    """Craft the overflow payload from static + reconnaissance knowledge."""
    isa = ISAS[isa_name]
    recon = reconnoiter(binary, isa_name, victim_function)
    info = binary.symtab.function(victim_function)
    saved = info.per_isa[isa_name].saved_registers
    words_above = len(saved) + 1
    return_slot = recon.frame_base + \
        info.layout.return_address_offset(words_above)

    stagings = find_syscall_staging(binary, isa_name)
    execve_capable = [s for s in stagings
                      if isa.syscall_number_reg in s.register_slots
                      and isa.syscall_arg_regs[0] in s.register_slots]
    if not execve_capable:
        raise AttackError("no usable syscall staging found")
    staging = execve_capable[0]

    # Stack picture once the overwritten return executes:
    #   sp = return_slot + 4; staging loads from [sp + slot_offset].
    sp_after_return = return_slot + 4
    chain_region_size = max(staging.register_slots.values()) + 4
    shell_address = sp_after_return + chain_region_size

    payload = bytearray(b"A" * (return_slot - recon.buffer_address))
    payload += struct.pack("<I", staging.entry_address)
    chain = bytearray(b"B" * chain_region_size)

    def place(register: int, value: int) -> None:
        offset = staging.register_slots.get(register)
        if offset is not None:
            chain[offset:offset + 4] = struct.pack("<I", value)

    place(isa.syscall_number_reg, 11)              # execve
    place(isa.syscall_arg_regs[0], shell_address)
    if len(isa.syscall_arg_regs) > 1:
        place(isa.syscall_arg_regs[1], 0)
    if len(isa.syscall_arg_regs) > 2:
        place(isa.syscall_arg_regs[2], 0)
    payload += bytes(chain)
    payload += shell + b"\x00"

    return ExploitPayload(
        data=bytes(payload),
        buffer_address=recon.buffer_address,
        return_slot_address=return_slot,
        staging=staging,
        shell_string_address=shell_address,
    )


@dataclass
class AttackOutcome:
    """What happened when the payload was delivered."""

    shell_spawned: bool
    crashed: bool
    exit_reason: str
    spawned: Tuple[bytes, ...]


def attack_native(binary: FatBinary, payload: ExploitPayload,
                  isa_name: str = "x86like") -> AttackOutcome:
    """Deliver the payload to an unprotected victim."""
    process = Process(binary.to_process_image(), ISAS[isa_name])
    process.os.reset(stdin=payload.data)
    result = process.run(1_000_000)
    return AttackOutcome(
        shell_spawned=process.os.shell_spawned,
        crashed=result.crashed,
        exit_reason=result.reason,
        spawned=tuple(process.os.spawned),
    )


def attack_psr(binary: FatBinary, payload: ExploitPayload,
               isa_name: str = "x86like",
               config: Optional[PSRConfig] = None,
               seed: int = 0) -> AttackOutcome:
    """Deliver the same payload to a PSR-protected victim."""
    process, vm = create_psr_process(binary, ISAS[isa_name], config, seed,
                                     stdin=payload.data)
    try:
        result = process.run(5_000_000)
        crashed = result.crashed
        reason = result.reason
    except Exception as error:          # SFI terminations count as caught
        crashed = True
        reason = type(error).__name__
    return AttackOutcome(
        shell_spawned=process.os.shell_spawned,
        crashed=crashed,
        exit_reason=reason,
        spawned=tuple(process.os.spawned),
    )
