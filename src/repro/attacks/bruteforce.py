"""Brute-force attack simulation — Algorithm 1 of the paper.

Simulates an attacker brute-forcing a four-gadget shellcode chain that
populates the registers ``execve`` needs (eax, ebx, ecx, edx on x86like),
against a PSR-protected victim.  Three independent unknowns must be
guessed per link (Section 6): which gadget transforms into something
viable, where the gadget's data lies within the frame, and where the next
return address lies within the frame.  The attacker sprays one register's
value across the whole 8 KB frame at a time, exactly as the methodology
describes, and the expected attempt count follows the paper's line-14
formula::

    B = Y[0] + f·X[0] + n·f·Y[1] + n·f²·X[1] + ... + n³·f⁴·X[3]

where ``n`` is the gadget count, ``f`` the frame size, ``X[i]`` the
search position of the i-th chosen gadget and ``Y[i]`` its randomized
return-address location.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..compiler.fatbinary import FatBinary
from ..core.relocation import PSRConfig
from ..isa.x86like import EAX, EBX, ECX, EDX
from .gadgets import GadgetAnalysis, PSRGadgetAnalyzer
from .galileo import Gadget, mine_binary

#: the registers the execve() shellcode must populate (Section 6)
EXECVE_REGISTERS = (EAX, EBX, ECX, EDX)


@dataclass
class ChainLink:
    """One chosen gadget in the brute-forced chain.

    ``gadget`` is None for an *exhaustion* link: the register had no
    populating gadget and the attacker searched the full space in vain.
    """

    register: int
    gadget: Optional[Gadget]
    search_position: int          # X[i]: gadgets examined before this one
    return_location: int          # Y[i]: randomized return-address offset


@dataclass
class BruteForceResult:
    """Outcome of one Algorithm-1 run."""

    benchmark: str
    total_gadgets: int
    viable_gadgets: int
    chain: List[ChainLink]
    attempts: float               # B from the formula (may be astronomical)
    frame_size: int
    average_randomizable_parameters: float
    entropy_bits: float

    @property
    def chain_complete(self) -> bool:
        return len(self.chain) == len(EXECVE_REGISTERS)

    @property
    def eliminated_gadgets(self) -> int:
        return self.total_gadgets - self.viable_gadgets


def simulate_brute_force(binary: FatBinary, benchmark: str = "",
                         config: Optional[PSRConfig] = None, seed: int = 0,
                         isa_name: str = "x86like",
                         analyses: Optional[Sequence[GadgetAnalysis]] = None,
                         ) -> BruteForceResult:
    """Run Algorithm 1 against one binary under one PSR configuration."""
    config = config or PSRConfig()
    analyzer = PSRGadgetAnalyzer(binary, isa_name, config, seed)
    if analyses is None:
        gadgets = mine_binary(binary, isa_name)
        analyses = analyzer.analyze_all(gadgets)

    frame_size = config.randomization_space      # 8 KB at the default
    rng = random.Random(f"bruteforce:{seed}:{benchmark}")

    # Viable candidates with their (attacker-unknown) randomized
    # return-address location A(g), uniform within the frame.
    candidates: List[Tuple[GadgetAnalysis, int]] = []
    for analysis in analyses:
        if analysis.brute_force_viable:
            location = rng.randrange(frame_size)
            candidates.append((analysis, location))

    # Algorithm 1 proper.
    populated: set = set()
    chain: List[ChainLink] = []
    exhausted: List[int] = []
    used: set = set()
    for register in EXECVE_REGISTERS:
        best: Optional[Tuple[int, int, GadgetAnalysis]] = None
        for position, (analysis, location) in enumerate(candidates):
            if analysis.gadget.address in used:
                continue
            effect = analysis.psr_effect
            if register not in effect.populated:
                continue
            if populated & set(effect.clobbered) - {register}:
                continue            # clobbers previously established state
            if best is None or location < best[0]:
                best = (location, position, analysis)
        if best is None:
            # No gadget populates this register at all.  The attacker
            # cannot know that and must exhaust the search: every gadget
            # at every data/return position before giving up on the link.
            exhausted.append(register)
            continue
        location, position, analysis = best
        chain.append(ChainLink(register, analysis.gadget, position, location))
        populated.add(register)
        used.add(analysis.gadget.address)

    counted_links = list(chain)
    for register in exhausted:
        counted_links.append(ChainLink(
            register=register, gadget=None,
            search_position=max(len(analyses), 1),
            return_location=frame_size))
    counted_links.sort(key=lambda link: link.search_position)
    attempts = _attempt_count(counted_links, len(analyses), frame_size)
    params = [a.randomized_parameters for a in analyses
              if a.rewritten is not None]
    average_params = sum(params) / len(params) if params else 0.0
    entropy_bits = average_params * config.entropy_bits_per_parameter

    return BruteForceResult(
        benchmark=benchmark,
        total_gadgets=len(analyses),
        viable_gadgets=len(candidates),
        chain=chain,
        attempts=attempts,
        frame_size=frame_size,
        average_randomizable_parameters=average_params,
        entropy_bits=entropy_bits,
    )


def _attempt_count(chain: Sequence[ChainLink], gadget_count: int,
                   frame_size: int) -> float:
    """Line 14 of Algorithm 1.

    B = Σᵢ nⁱ·fⁱ·Y[i] + nⁱ·fⁱ⁺¹·X[i] — each deeper link multiplies the
    search space by another (gadget × data-position × return-position)
    product, because earlier links must be re-guessed on every crash.
    """
    n = max(gadget_count, 1)
    f = max(frame_size, 1)
    total = 0.0
    for index, link in enumerate(chain):
        total += (float(n) ** index) * (float(f) ** index) * link.return_location
        total += (float(n) ** index) * (float(f) ** (index + 1)) * \
            max(link.search_position, 1)
    return total


@dataclass
class BruteForceComparison:
    """Table 2 row: attempts with and without register bias."""

    benchmark: str
    randomizable_parameters: float
    entropy_bits: float
    attempts_no_bias: float
    attempts_bias: float


def table2_row(binary: FatBinary, benchmark: str, seed: int = 0,
               pages: int = 2) -> BruteForceComparison:
    """Compute one benchmark's Table 2 entry."""
    no_bias = simulate_brute_force(
        binary, benchmark, PSRConfig(opt_level=2, randomization_pages=pages),
        seed)
    bias = simulate_brute_force(
        binary, benchmark, PSRConfig(opt_level=3, randomization_pages=pages),
        seed)
    return BruteForceComparison(
        benchmark=benchmark,
        randomizable_parameters=no_bias.average_randomizable_parameters,
        entropy_bits=no_bias.entropy_bits,
        attempts_no_bias=no_bias.attempts,
        attempts_bias=bias.attempts,
    )
