"""Attack framework: gadget mining, classification, and attack simulations."""

from .galileo import Gadget, gadget_population_summary, mine_binary, mine_gadgets
from .gadgets import (
    GadgetAnalysis,
    GadgetEffect,
    PSRGadgetAnalyzer,
    evaluate_gadget,
    evaluate_instructions,
)

__all__ = [
    "Gadget",
    "GadgetAnalysis",
    "GadgetEffect",
    "PSRGadgetAnalyzer",
    "evaluate_gadget",
    "evaluate_instructions",
    "gadget_population_summary",
    "mine_binary",
    "mine_gadgets",
]

from .bruteforce import (
    BruteForceComparison,
    BruteForceResult,
    EXECVE_REGISTERS,
    simulate_brute_force,
    table2_row,
)
from .jitrop import JITROPSurface, four_gadget_chain_possible, jitrop_surface
from .tailored import (
    DiversificationImmunity,
    entropy_series,
    measure_immunity,
    surviving_vs_probability,
)
from .blindrop import (
    BlindROPOutcome,
    CrashOracleVictim,
    attack_incremental,
    attack_random_guessing,
    campaign,
    expected_attempts,
)
from .payload import (
    AttackOutcome,
    ExploitPayload,
    attack_native,
    attack_psr,
    build_exploit,
    build_vulnerable_binary,
    find_syscall_staging,
)

__all__ += [
    "AttackOutcome", "BlindROPOutcome", "BruteForceComparison",
    "BruteForceResult", "CrashOracleVictim", "DiversificationImmunity",
    "EXECVE_REGISTERS", "ExploitPayload", "JITROPSurface",
    "attack_incremental", "attack_native", "attack_psr",
    "attack_random_guessing", "build_exploit", "build_vulnerable_binary",
    "campaign", "entropy_series", "expected_attempts",
    "find_syscall_staging", "four_gadget_chain_possible", "jitrop_surface",
    "measure_immunity", "simulate_brute_force", "surviving_vs_probability",
    "table2_row",
]
