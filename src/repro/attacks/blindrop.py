"""Blind-ROP-style crash-oracle brute force (Bittau et al., S&P 2014).

The model of Section 4: a worker thread re-spawned by its parent on every
crash gives the attacker a crash/no-crash oracle.  Against *load-time*
randomization the secret survives re-spawns, so the attacker learns it
incrementally — position by position — in thousands of attempts.  Against
PSR the run-time randomization is rebuilt on every re-spawn (Section 5.3),
so nothing learned from attempt *i* constrains attempt *i+1*: expected
cost is a fresh uniform guess every time, 2^entropy attempts.

The simulation runs at configurable (scaled-down) entropy so both regimes
complete in-model; the analytic extrapolation to the paper's 87-bit
per-gadget entropy is what Table 2 reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional


@dataclass
class BlindROPOutcome:
    """Result of one simulated Blind-ROP campaign."""

    defense: str
    secret_bits: int
    attempts: int
    succeeded: bool


class CrashOracleVictim:
    """A respawning worker whose secret is a position in [0, 2^bits)."""

    def __init__(self, secret_bits: int, rerandomize_on_crash: bool,
                 rng: random.Random):
        self.secret_bits = secret_bits
        self.rerandomize_on_crash = rerandomize_on_crash
        self._rng = rng
        self._secret = self._draw()
        self.crashes = 0

    def _draw(self) -> int:
        return self._rng.randrange(1 << self.secret_bits)

    def probe(self, guess: int) -> bool:
        """One attempt: True if the guess hits the secret, else crash."""
        if guess == self._secret:
            return True
        self.crashes += 1
        if self.rerandomize_on_crash:
            self._secret = self._draw()
        return False

    def probe_prefix(self, prefix: int, bits: int) -> bool:
        """Partial-overwrite probe: does the secret start with ``prefix``?

        This is Blind-ROP's stack-reading primitive: overwrite only part
        of the protected value; a crash reveals the partial guess is
        wrong.  Only meaningful while the secret stays fixed.
        """
        hit = (self._secret >> (self.secret_bits - bits)) == prefix
        if not hit:
            self.crashes += 1
            if self.rerandomize_on_crash:
                self._secret = self._draw()
        return hit


def attack_incremental(victim: CrashOracleVictim,
                       max_attempts: int = 10_000_000) -> BlindROPOutcome:
    """Bit-by-bit search — devastating against load-time randomization."""
    attempts = 0
    prefix = 0
    bits = 0
    while bits < victim.secret_bits and attempts < max_attempts:
        candidate = (prefix << 1) | 0
        attempts += 1
        if victim.probe_prefix(candidate, bits + 1):
            prefix = candidate
        else:
            prefix = (prefix << 1) | 1
            # against a fixed secret, the complement must be right; a
            # re-randomizing victim invalidates the deduction, and the
            # attack silently goes wrong — exactly the PSR effect.
        bits += 1
    attempts += 1
    succeeded = victim.probe(prefix)
    return BlindROPOutcome(
        defense="load-time" if not victim.rerandomize_on_crash else "psr",
        secret_bits=victim.secret_bits,
        attempts=attempts,
        succeeded=succeeded,
    )


def attack_random_guessing(victim: CrashOracleVictim,
                           rng: random.Random,
                           max_attempts: int = 1_000_000) -> BlindROPOutcome:
    """Fresh uniform guesses — the best strategy against re-randomization."""
    attempts = 0
    while attempts < max_attempts:
        attempts += 1
        if victim.probe(rng.randrange(1 << victim.secret_bits)):
            return BlindROPOutcome("psr", victim.secret_bits, attempts, True)
    return BlindROPOutcome("psr", victim.secret_bits, attempts, False)


def expected_attempts(secret_bits: int, rerandomizes: bool) -> float:
    """Analytic expectation backing the simulation."""
    if rerandomizes:
        return float(1 << secret_bits)       # geometric with p = 2^-bits
    return secret_bits + 1.0                 # one probe per bit, then hit


def campaign(secret_bits: int = 12, trials: int = 20,
             seed: int = 0) -> dict:
    """Run matched campaigns against both defenses; return summary stats."""
    results = {"load-time": [], "psr": []}
    for trial in range(trials):
        rng = random.Random(f"{seed}:{trial}")
        fixed = CrashOracleVictim(secret_bits, False, rng)
        outcome = attack_incremental(fixed)
        results["load-time"].append(outcome.attempts if outcome.succeeded
                                    else None)

        rng = random.Random(f"{seed}:{trial}:psr")
        moving = CrashOracleVictim(secret_bits, True, rng)
        outcome = attack_random_guessing(
            moving, rng, max_attempts=(1 << secret_bits) * 8)
        results["psr"].append(outcome.attempts if outcome.succeeded else None)

    def summary(values: List[Optional[int]]) -> dict:
        hits = [v for v in values if v is not None]
        return {
            "success_rate": len(hits) / len(values),
            "mean_attempts": sum(hits) / len(hits) if hits else float("inf"),
        }

    return {
        "secret_bits": secret_bits,
        "load-time": summary(results["load-time"]),
        "psr": summary(results["psr"]),
        "analytic": {
            "load-time": expected_attempts(secret_bits, False),
            "psr": expected_attempts(secret_bits, True),
        },
    }
