"""Semantic gadget evaluation and PSR-obfuscation analysis.

The paper's methodology (Section 6) *executes* gadgets to evaluate them:
"we designate any gadget that successfully populates a register with an
attacker supplied value from the stack as viable" and "we analyze each
gadget to gather data about every perturbation it produces on the state
of the program".  This module does exactly that, on a scratch machine:

* the stack is *sprayed* with distinguishable marker words (the attack
  model sprays the whole frame with its data, Section 6);
* registers start with sentinel values;
* the gadget runs; its *effect* records which registers ended up holding
  attacker (stack) data, what it clobbered, how far sp moved, and whether
  the gadget completed its ending control transfer (a gadget that faults
  first can never chain).

The PSR analysis rewrites a gadget through the owning function's
relocation map (the same addressing-mode transformation the VM applies to
executed fragments) and re-evaluates it: an *obfuscated* gadget no longer
produces its original effect; a *surviving brute-force candidate* still
populates a register from sprayed data despite randomization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.fatbinary import FatBinary
from ..core.relocation import PSRConfig, RelocationMap, build_relocation_map
from ..core.transforms import AddressingModeRewriter
from ..errors import AssemblerError, ReproError
from ..isa import ISAS, assemble_instructions
from ..isa.base import Instruction, ISADescription, Op
from ..machine.cpu import CPUState
from ..machine.interpreter import Interpreter
from ..machine.memory import Memory
from ..machine.syscalls import OperatingSystem
from .galileo import Gadget

#: marker pattern sprayed over the stack: 0xA11_0000 | word index
MARKER_PREFIX = 0xA1100000
MARKER_MASK = 0xFFF00000
#: sentinel pattern for initial register values
SENTINEL_PREFIX = 0xC0DE0000

_CODE_BASE = 0x4000
_STACK_BASE = 0x00200000
_STACK_SIZE = 0x40000            # 256 KB: covers 16-page randomization

#: the sprayed stack image is identical for every evaluation, so build it
#: once per process — rebuilding it per gadget dominated the sweep profile
_STACK_SPRAY = b"".join(
    (MARKER_PREFIX | (index & 0xFFFFF)).to_bytes(4, "little")
    for index in range(_STACK_SIZE // 4))


@dataclass
class GadgetEffect:
    """Observable perturbation a gadget produces (Section 6)."""

    completed: bool                       # ending transfer executed
    #: register -> stack word index whose marker it now holds
    populated: Dict[int, int] = field(default_factory=dict)
    #: registers whose value changed at all
    clobbered: Tuple[int, ...] = ()
    stack_delta: int = 0
    memory_writes: int = 0

    @property
    def is_viable(self) -> bool:
        """Paper criterion: completes and loads attacker data into a register."""
        return self.completed and bool(self.populated)

    def same_behaviour(self, other: "GadgetEffect") -> bool:
        """Equality of attacker-visible behaviour (tailored-attack test)."""
        return (self.completed == other.completed
                and self.populated == other.populated
                and set(self.clobbered) == set(other.clobbered)
                and self.stack_delta == other.stack_delta)


def evaluate_instructions(isa: ISADescription,
                          instructions: Sequence[Instruction],
                          max_steps: int = 64) -> GadgetEffect:
    """Execute an instruction sequence on the sprayed scratch machine."""
    try:
        code = assemble_instructions(isa, list(instructions), _CODE_BASE)
    except (AssemblerError, ReproError):
        return GadgetEffect(completed=False)

    memory = Memory()
    memory.map("code", _CODE_BASE, max(len(code), isa.alignment),
               writable=False, executable=True, data=code)
    memory.map("stack", _STACK_BASE, _STACK_SIZE, data=_STACK_SPRAY)

    cpu = CPUState(isa, pc=_CODE_BASE)
    initial = {}
    for register in range(isa.num_registers):
        value = SENTINEL_PREFIX | register
        cpu.set(register, value)
        initial[register] = value
    sp_start = _STACK_BASE + _STACK_SIZE // 2
    cpu.sp = sp_start
    initial[isa.sp] = sp_start

    interpreter = Interpreter(cpu, memory, OperatingSystem())
    executed_ops: List[Op] = []
    writes = [0]

    def observe(_cpu, info):
        executed_ops.append(info.decoded.instruction.op)
        writes[0] += sum(1 for _, is_write in info.mem_accesses if is_write)

    interpreter.observers.append(observe)
    interpreter.run(max_steps)

    ending = instructions[-1].op if instructions else None
    completed = bool(executed_ops) and ending in executed_ops

    populated: Dict[int, int] = {}
    clobbered: List[int] = []
    for register in range(isa.num_registers):
        if register == isa.sp:
            continue
        value = cpu.get(register)
        if value == initial[register]:
            continue
        clobbered.append(register)
        if value & MARKER_MASK == MARKER_PREFIX:
            populated[register] = value & 0xFFFFF

    return GadgetEffect(
        completed=completed,
        populated=populated,
        clobbered=tuple(clobbered),
        stack_delta=cpu.sp - sp_start,
        memory_writes=writes[0],
    )


def evaluate_gadget(gadget: Gadget) -> GadgetEffect:
    """Evaluate a mined gadget in its native (unprotected) form."""
    return evaluate_instructions(ISAS[gadget.isa_name], gadget.instructions)


@dataclass
class GadgetAnalysis:
    """One gadget's fate under PSR."""

    gadget: Gadget
    native_effect: GadgetEffect
    rewritten: Optional[Tuple[Instruction, ...]]
    psr_effect: Optional[GadgetEffect]
    operands_moved: bool
    randomized_parameters: int

    @property
    def touches_stack(self) -> bool:
        """Any stack interaction: pop/push/ret or sp-relative memory."""
        isa = ISAS[self.gadget.isa_name]
        for instruction in self.gadget.instructions:
            if instruction.op in (Op.PUSH, Op.POP, Op.RET):
                return True
            for operand in instruction.operands:
                if getattr(operand, "base", None) == isa.sp:
                    return True
            if isa.sp in instruction.reads_regs() | instruction.writes_regs():
                return True
        return False

    @property
    def obfuscated(self) -> bool:
        """The gadget no longer performs the attacker-intended action.

        A gadget is obfuscated when PSR moved any of its operands, when
        its observable behaviour changed under the relocation map, or
        when it interacts with the stack at all — stack geometry (data
        placement and the return-address slot) is randomized per frame,
        so "even a nop gadget that just performs a return incurs an
        entropy of at least 13 bits" (Section 5.1).
        """
        if not self.native_effect.completed:
            return True           # was never usable; PSR keeps it that way
        if self.psr_effect is None or self.operands_moved:
            return True
        if self.touches_stack:
            return True
        return not self.native_effect.same_behaviour(self.psr_effect)

    @property
    def brute_force_viable(self) -> bool:
        """Still populates a register from sprayed data under PSR (Fig 4)."""
        return self.psr_effect is not None and self.psr_effect.is_viable


class PSRGadgetAnalyzer:
    """Applies a binary's relocation maps to its mined gadgets.

    Uses the same per-function map derivation as the PSR VM so the
    analysis studies exactly what translated fragments would execute.
    """

    def __init__(self, binary: FatBinary, isa_name: str,
                 config: Optional[PSRConfig] = None, seed: int = 0):
        self.binary = binary
        self.isa = ISAS[isa_name]
        self.config = config or PSRConfig()
        self.seed = seed
        self._rewriters: Dict[str, AddressingModeRewriter] = {}
        self._reloc_maps: Dict[str, RelocationMap] = {}

    def reloc_for(self, function: str) -> RelocationMap:
        cached = self._reloc_maps.get(function)
        if cached is None:
            info = self.binary.symtab.function(function)
            fn = self.binary.program.functions[function]
            rng = random.Random(f"{self.seed}:0:{self.isa.name}:{function}")
            convention = random.Random(f"{self.seed}:0:conv:{function}")
            cached = build_relocation_map(info, fn, self.isa, self.config,
                                          rng, convention)
            self._reloc_maps[function] = cached
        return cached

    def rewriter_for(self, function: str) -> AddressingModeRewriter:
        cached = self._rewriters.get(function)
        if cached is None:
            info = self.binary.symtab.function(function)
            cached = AddressingModeRewriter(
                self.isa, self.reloc_for(function), info.layout,
                info.per_isa[self.isa.name])
            self._rewriters[function] = cached
        return cached

    def owning_function(self, gadget: Gadget) -> Optional[str]:
        info = self.binary.symtab.function_at(self.isa.name, gadget.address)
        return info.name if info is not None else None

    def analyze(self, gadget: Gadget) -> GadgetAnalysis:
        native_effect = evaluate_gadget(gadget)
        function = self.owning_function(gadget)
        if function is None:
            # outside any function (crt0 stub): PSR does not translate it,
            # but execution cannot reach it through the VM either.
            return GadgetAnalysis(gadget, native_effect, None, None,
                                  operands_moved=False,
                                  randomized_parameters=0)
        rewriter = self.rewriter_for(function)
        rewritten: List[Instruction] = []
        moved = False
        parameters = 1        # the relocated return-address geometry
        for instruction in gadget.instructions:
            result = rewriter.rewrite(instruction)
            rewritten.extend(result.instructions)
            moved = moved or result.modified
            parameters += result.randomized_parameters
        psr_effect = evaluate_instructions(self.isa, rewritten)
        return GadgetAnalysis(
            gadget=gadget,
            native_effect=native_effect,
            rewritten=tuple(rewritten),
            psr_effect=psr_effect,
            operands_moved=moved,
            randomized_parameters=parameters,
        )

    def analyze_all(self, gadgets: Sequence[Gadget]) -> List[GadgetAnalysis]:
        return [self.analyze(gadget) for gadget in gadgets]
