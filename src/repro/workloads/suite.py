"""Workload registry: the SPEC-CPU2006-like mini suite plus httpd.

The paper evaluates the eight SPEC CPU2006 C benchmarks that survive its
PSR prototype's no-variable-size-frames restriction (bzip2, gobmk, hmmer,
lbm, libquantum, mcf, milc, sphinx3 — gcc and sjeng excluded, §6), plus
the httpd daemon for the case study in §7.1.  Each mini here mimics its
namesake's dominant kernel; all are compiled through the same multi-ISA
pipeline, so their gadget populations and instruction mixes come out of a
real (if small) compiler, not hand-picked bytes.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..compiler import FatBinary, compile_minic
from .programs import (
    bzip2_mini,
    gobmk_mini,
    hmmer_mini,
    httpd_mini,
    lbm_mini,
    libquantum_mini,
    mcf_mini,
    milc_mini,
    sphinx3_mini,
)

#: benchmark order used throughout the paper's figures
SPEC_NAMES = ("bzip2", "gobmk", "hmmer", "lbm",
              "libquantum", "mcf", "milc", "sphinx3")

#: the six applications Figure 14's Isomeron comparison uses
ISOMERON_COMPARISON_NAMES = ("bzip2", "gobmk", "hmmer",
                             "libquantum", "mcf", "sphinx3")


@dataclass(frozen=True)
class Workload:
    """One benchmark: metadata plus a source generator."""

    name: str
    description: str
    phases: Tuple[str, ...]
    make_source: Callable[[int], str]
    default_work: int
    stdin: bytes = b""

    def source(self, work: Optional[int] = None) -> str:
        return self.make_source(self.default_work if work is None else work)

    def compile(self, work: Optional[int] = None) -> FatBinary:
        return compile_workload(self.name, self.default_work
                                if work is None else work)


_MODULES = {
    "bzip2": bzip2_mini,
    "gobmk": gobmk_mini,
    "hmmer": hmmer_mini,
    "lbm": lbm_mini,
    "libquantum": libquantum_mini,
    "mcf": mcf_mini,
    "milc": milc_mini,
    "sphinx3": sphinx3_mini,
    "httpd": httpd_mini,
}

_DEFAULT_WORK = {
    "bzip2": 3, "gobmk": 3, "hmmer": 3, "lbm": 10,
    "libquantum": 5, "mcf": 4, "milc": 8, "sphinx3": 10, "httpd": 4,
}

WORKLOADS: Dict[str, Workload] = {
    name: Workload(
        name=name,
        description=module.DESCRIPTION,
        phases=tuple(module.PHASES),
        make_source=module.make_source,
        default_work=_DEFAULT_WORK[name],
        stdin=getattr(module, "DEFAULT_STDIN", b""),
    )
    for name, module in _MODULES.items()
}


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


def spec_workloads() -> List[Workload]:
    """The eight SPEC-like minis, in the paper's figure order."""
    return [WORKLOADS[name] for name in SPEC_NAMES]


@functools.lru_cache(maxsize=32)
def compile_workload(name: str, work: Optional[int] = None) -> FatBinary:
    """Compile a workload to its fat binary (cached — compilation is pure)."""
    workload = get_workload(name)
    actual = workload.default_work if work is None else work
    return compile_minic(workload.make_source(actual))
