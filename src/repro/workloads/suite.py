"""Workload registry: the SPEC-CPU2006-like mini suite plus httpd.

The paper evaluates the eight SPEC CPU2006 C benchmarks that survive its
PSR prototype's no-variable-size-frames restriction (bzip2, gobmk, hmmer,
lbm, libquantum, mcf, milc, sphinx3 — gcc and sjeng excluded, §6), plus
the httpd daemon for the case study in §7.1.  Each mini here mimics its
namesake's dominant kernel; all are compiled through the same multi-ISA
pipeline, so their gadget populations and instruction mixes come out of a
real (if small) compiler, not hand-picked bytes.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .. import __version__
from ..compiler import FatBinary, compile_minic
from ..runtime.cache import digest, get_cache
from .programs import (
    bzip2_mini,
    gobmk_mini,
    hmmer_mini,
    httpd_mini,
    lbm_mini,
    libquantum_mini,
    mcf_mini,
    milc_mini,
    sphinx3_mini,
)

#: benchmark order used throughout the paper's figures
SPEC_NAMES = ("bzip2", "gobmk", "hmmer", "lbm",
              "libquantum", "mcf", "milc", "sphinx3")

#: the six applications Figure 14's Isomeron comparison uses
ISOMERON_COMPARISON_NAMES = ("bzip2", "gobmk", "hmmer",
                             "libquantum", "mcf", "sphinx3")


@dataclass(frozen=True)
class Workload:
    """One benchmark: metadata plus a source generator."""

    name: str
    description: str
    phases: Tuple[str, ...]
    make_source: Callable[[int], str]
    default_work: int
    stdin: bytes = b""

    def source(self, work: Optional[int] = None) -> str:
        return self.make_source(self.default_work if work is None else work)

    def compile(self, work: Optional[int] = None) -> FatBinary:
        return compile_workload(self.name, self.default_work
                                if work is None else work)


_MODULES = {
    "bzip2": bzip2_mini,
    "gobmk": gobmk_mini,
    "hmmer": hmmer_mini,
    "lbm": lbm_mini,
    "libquantum": libquantum_mini,
    "mcf": mcf_mini,
    "milc": milc_mini,
    "sphinx3": sphinx3_mini,
    "httpd": httpd_mini,
}

_DEFAULT_WORK = {
    "bzip2": 3, "gobmk": 3, "hmmer": 3, "lbm": 10,
    "libquantum": 5, "mcf": 4, "milc": 8, "sphinx3": 10, "httpd": 4,
}

WORKLOADS: Dict[str, Workload] = {
    name: Workload(
        name=name,
        description=module.DESCRIPTION,
        phases=tuple(module.PHASES),
        make_source=module.make_source,
        default_work=_DEFAULT_WORK[name],
        stdin=getattr(module, "DEFAULT_STDIN", b""),
    )
    for name, module in _MODULES.items()
}


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


def spec_workloads() -> List[Workload]:
    """The eight SPEC-like minis, in the paper's figure order."""
    return [WORKLOADS[name] for name in SPEC_NAMES]


#: compiler identity folded into compile-cache keys — a toolchain version
#: bump invalidates stale on-disk binaries
COMPILER_TAG = f"minic-{__version__}"


def compile_workload(name: str, work: Optional[int] = None) -> FatBinary:
    """Compile a workload to its fat binary (cached — compilation is pure).

    Two cache layers share one code path: an in-process ``lru_cache``
    (identity-preserving) over the on-disk content-addressed store.  The
    work parameter is resolved to its actual value *before* keying, so
    ``compile_workload("mcf")`` and ``compile_workload("mcf", 4)`` are
    the same entry rather than double-keyed.
    """
    workload = get_workload(name)
    return _compile_cached(name, workload.default_work if work is None
                           else work)


@functools.lru_cache(maxsize=64)
def _compile_cached(name: str, work: int) -> FatBinary:
    source = get_workload(name).make_source(work)
    cache = get_cache()
    key = digest("compile", name, work, source, COMPILER_TAG)
    return cache.get_or_compute("binary", key,
                                lambda: compile_minic(source))


def clear_compile_cache() -> None:
    """Drop the in-process compile memo (tests simulating fresh runs)."""
    _compile_cached.cache_clear()
