"""Mini-benchmark source programs, one module per SPEC-like workload."""
