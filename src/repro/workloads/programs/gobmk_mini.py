"""gobmk-mini: game-tree search kernel.

Mirrors SPEC's gobmk behaviour profile: deep recursion over a game tree,
branchy board evaluation, and *function-pointer dispatch* between move
evaluators — gobmk is the paper's example of a workload making tens of
thousands of function-pointer calls per second (Section 7.2).
"""

NAME = "gobmk"
DESCRIPTION = "game-tree search with function-pointer move evaluators"
PHASES = ("search", "evaluate")

SOURCE_TEMPLATE = """
int board[81];
int seed = 777;

int next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
    return seed >> 16;
}

int eval_territory(int pos) {
    int score; int i;
    score = 0;
    i = pos % 9;
    while (i < 81) {
        score = score + board[i] * (9 - (i % 9));
        i = i + 9;
    }
    return score;
}

int eval_influence(int pos) {
    int score; int i;
    score = 0;
    i = 0;
    while (i < 9) {
        score = score + board[(pos + i * 7) % 81] * (i + 1);
        i = i + 1;
    }
    return score;
}

int eval_capture(int pos) {
    int neighbors; int p;
    neighbors = 0;
    p = pos % 81;
    if (p > 8)  { neighbors = neighbors + board[p - 9]; }
    if (p < 72) { neighbors = neighbors + board[p + 9]; }
    if (p % 9 > 0) { neighbors = neighbors + board[p - 1]; }
    if (p % 9 < 8) { neighbors = neighbors + board[p + 1]; }
    return neighbors * 3;
}

int dispatch_eval(int which, int pos) {
    int f;
    if (which == 0) { f = &eval_territory; }
    else if (which == 1) { f = &eval_influence; }
    else { f = &eval_capture; }
    return f(pos);
}

int search(int depth, int pos, int color) {
    int best; int move; int score; int child;
    if (depth == 0) {
        return dispatch_eval(pos % 3, pos);
    }
    best = 0 - 1000000;
    move = 0;
    while (move < 4) {
        child = (pos * 5 + move * 17 + depth) % 81;
        board[child] = color;
        score = 0 - search(depth - 1, child, 0 - color);
        board[child] = 0;
        if (score > best) { best = score; }
        move = move + 1;
    }
    return best;
}

int main() {
    int i; int total; int round;
    i = 0;
    while (i < 81) { board[i] = (next_rand() % 3) - 1; i = i + 1; }
    total = 0;
    round = 0;
    while (round < {work}) {
        total = total + search(4, (round * 13) % 81, 1);
        round = round + 1;
    }
    return total % 100000;
}
"""


def make_source(work: int = 3) -> str:
    return SOURCE_TEMPLATE.replace("{work}", str(work))
