"""libquantum-mini: quantum gate simulation kernel.

Mirrors SPEC's libquantum: applying gates to a register of basis states —
bit-manipulation-heavy loops (XOR toggles for NOT gates, conditional bit
tests for controlled gates) over a state-vector array.
"""

NAME = "libquantum"
DESCRIPTION = "quantum register simulation: bitwise gate loops"
PHASES = ("gates",)

SOURCE_TEMPLATE = """
int states[256];

int init_register(int n) {
    int i;
    i = 0;
    while (i < n) { states[i] = i; i = i + 1; }
    return 0;
}

int sigma_x(int n, int target) {
    int i; int mask;
    mask = 1 << target;
    i = 0;
    while (i < n) {
        states[i] = states[i] ^ mask;
        i = i + 1;
    }
    return 0;
}

int controlled_not(int n, int control, int target) {
    int i; int cmask; int tmask;
    cmask = 1 << control;
    tmask = 1 << target;
    i = 0;
    while (i < n) {
        if (states[i] & cmask) {
            states[i] = states[i] ^ tmask;
        }
        i = i + 1;
    }
    return 0;
}

int toffoli(int n, int c1, int c2, int target) {
    int i; int m1; int m2; int tmask;
    m1 = 1 << c1;
    m2 = 1 << c2;
    tmask = 1 << target;
    i = 0;
    while (i < n) {
        if (states[i] & m1) {
            if (states[i] & m2) {
                states[i] = states[i] ^ tmask;
            }
        }
        i = i + 1;
    }
    return 0;
}

int checksum(int n) {
    int i; int sum;
    sum = 0;
    i = 0;
    while (i < n) { sum = sum ^ (states[i] * (i + 1)); i = i + 1; }
    return sum;
}

int main() {
    int round; int n; int bit; int result;
    n = 200;
    init_register(n);
    round = 0;
    while (round < {work}) {
        bit = 0;
        while (bit < 7) {
            sigma_x(n, bit);
            controlled_not(n, bit, (bit + 1) % 8);
            toffoli(n, bit, (bit + 2) % 8, (bit + 4) % 8);
            bit = bit + 1;
        }
        round = round + 1;
    }
    result = checksum(n);
    if (result < 0) { result = 0 - result; }
    return result % 100000;
}
"""


def make_source(work: int = 5) -> str:
    return SOURCE_TEMPLATE.replace("{work}", str(work))
