"""bzip2-mini: block compression kernel.

Mirrors the dominant behaviour of SPEC's bzip2: generate a block of
pseudo-random bytes, run-length encode it, apply a move-to-front
transform, and histogram the output — byte-granular array traffic, data-
dependent branches, and tight inner loops.
"""

NAME = "bzip2"
DESCRIPTION = "block compression: RLE + move-to-front + histogram"
#: relative weight of call-heavy vs loop-heavy phases (used by the
#: migration policy model: phase 0 prefers the big core, phase 1 is memory
#: bound and migrates well to the little core)
PHASES = ("compress", "histogram")

SOURCE_TEMPLATE = """
int seed = 12345;
char block[256];
char encoded[512];
char mtf[256];
int freq[64];

int next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
    return (seed >> 8) % 17;
}

int fill_block(int n) {
    int i;
    i = 0;
    while (i < n) {
        block[i] = next_rand();
        i = i + 1;
    }
    return n;
}

int rle_encode(int n) {
    int i; int out; int run; int value;
    i = 0; out = 0;
    while (i < n) {
        value = block[i];
        run = 1;
        while (i + run < n && block[i + run] == value && run < 255) {
            run = run + 1;
        }
        encoded[out] = value;
        encoded[out + 1] = run;
        out = out + 2;
        i = i + run;
    }
    return out;
}

int mtf_init() {
    int i;
    i = 0;
    while (i < 64) { mtf[i] = i; i = i + 1; }
    return 0;
}

int mtf_encode(int length) {
    int i; int j; int value; int pos; int sum;
    sum = 0;
    i = 0;
    while (i < length) {
        value = encoded[i];
        pos = 0;
        while (mtf[pos] != value && pos < 63) { pos = pos + 1; }
        j = pos;
        while (j > 0) { mtf[j] = mtf[j - 1]; j = j - 1; }
        mtf[0] = value;
        sum = sum + pos;
        i = i + 1;
    }
    return sum;
}

int histogram(int length) {
    int i; int checksum;
    i = 0;
    while (i < 64) { freq[i] = 0; i = i + 1; }
    i = 0;
    while (i < length) {
        freq[encoded[i] % 64] = freq[encoded[i] % 64] + 1;
        i = i + 1;
    }
    checksum = 0;
    i = 0;
    while (i < 64) { checksum = checksum + freq[i] * i; i = i + 1; }
    return checksum;
}

int main() {
    int round; int checksum; int length;
    checksum = 0;
    round = 0;
    mtf_init();
    while (round < {work}) {
        fill_block(200);
        length = rle_encode(200);
        checksum = checksum + mtf_encode(length);
        checksum = checksum + histogram(length);
        round = round + 1;
    }
    return checksum % 100000;
}
"""


def make_source(work: int = 3) -> str:
    return SOURCE_TEMPLATE.replace("{work}", str(work))
