"""lbm-mini: lattice-Boltzmann stencil kernel.

Mirrors SPEC's lbm: regular sweeps over a grid applying a neighbour
stencil — streaming memory access with almost no branches, the most
cache-bandwidth-bound program in the suite.
"""

NAME = "lbm"
DESCRIPTION = "lattice relaxation stencil sweeps over a 2-D grid"
PHASES = ("stream",)

SOURCE_TEMPLATE = """
int grid[400];
int next[400];

int init_grid(int width, int height) {
    int i;
    i = 0;
    while (i < width * height) {
        grid[i] = (i * 7 + 3) % 97;
        i = i + 1;
    }
    return 0;
}

int relax(int width, int height) {
    int x; int y; int idx; int acc;
    y = 1;
    while (y < height - 1) {
        x = 1;
        while (x < width - 1) {
            idx = y * width + x;
            acc = grid[idx] * 4;
            acc = acc + grid[idx - 1] + grid[idx + 1];
            acc = acc + grid[idx - width] + grid[idx + width];
            next[idx] = acc / 8;
            x = x + 1;
        }
        y = y + 1;
    }
    y = 1;
    while (y < height - 1) {
        x = 1;
        while (x < width - 1) {
            idx = y * width + x;
            grid[idx] = next[idx];
            x = x + 1;
        }
        y = y + 1;
    }
    return grid[(height / 2) * width + width / 2];
}

int main() {
    int sweep; int checksum; int width; int height;
    width = 20;
    height = 20;
    init_grid(width, height);
    checksum = 0;
    sweep = 0;
    while (sweep < {work}) {
        checksum = checksum + relax(width, height);
        sweep = sweep + 1;
    }
    return checksum % 100000;
}
"""


def make_source(work: int = 10) -> str:
    return SOURCE_TEMPLATE.replace("{work}", str(work))
