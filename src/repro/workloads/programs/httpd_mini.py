"""httpd-mini: request-parsing network daemon.

The paper's §7.1 evaluates HIPStR on the network-facing daemon httpd, "a
classic target of ROP attacks".  This mini reproduces that shape: read
request bytes from stdin into a fixed stack-adjacent buffer (the overflow
vector), parse the method/path with byte-level string code, dispatch
handlers through a function-pointer table, and write a response — exactly
the string-heavy, indirect-call-rich profile the attack framework mines.
"""

NAME = "httpd"
DESCRIPTION = "HTTP-style daemon: parse requests, dispatch handlers"
PHASES = ("parse", "respond")

SOURCE_TEMPLATE = """
char reqbuf[128];
char outbuf[128];
char ok_line[20] = "HTTP/1.0 200 OK\\n";
char notfound_line[24] = "HTTP/1.0 404 MISSING\\n";
char get_word[4] = "GET";
char post_word[8] = "POST";
int handled = 0;

int str_eq(int a, int b, int n) {
    int i;
    i = 0;
    while (i < n) {
        if (load8(a + i) != load8(b + i)) { return 0; }
        i = i + 1;
    }
    return 1;
}

int str_len(int p) {
    int n;
    n = 0;
    while (load8(p + n) != 0) { n = n + 1; }
    return n;
}

int copy_bytes(int dst, int src, int n) {
    int i;
    i = 0;
    while (i < n) {
        store8(dst + i, load8(src + i));
        i = i + 1;
    }
    return n;
}

int read_request() {
    int n;
    n = syscall(3, 0, &reqbuf, 127);
    reqbuf[n] = 0;
    return n;
}

int handle_index(int unused) {
    int n;
    n = copy_bytes(&outbuf, &ok_line, str_len(&ok_line));
    syscall(4, 1, &outbuf, n);
    return 200;
}

int handle_missing(int unused) {
    int n;
    n = copy_bytes(&outbuf, &notfound_line, str_len(&notfound_line));
    syscall(4, 1, &outbuf, n);
    return 404;
}

int parse_method(int length) {
    // returns 1 for GET, 2 for POST, 0 for anything else
    if (length >= 3 && str_eq(&reqbuf, &get_word, 3)) { return 1; }
    if (length >= 4 && str_eq(&reqbuf, &post_word, 4)) { return 2; }
    return 0;
}

int find_path(int length) {
    int i;
    i = 0;
    while (i < length && load8(&reqbuf + i) != ' ') { i = i + 1; }
    return i + 1;
}

int serve_one() {
    int length; int method; int path; int handler; int status;
    length = read_request();
    if (length <= 0) { return 0 - 1; }
    method = parse_method(length);
    path = find_path(length);
    handler = &handle_missing;
    if (method == 1) {
        if (load8(&reqbuf + path) == '/') {
            handler = &handle_index;
        }
    }
    status = handler(0);
    handled = handled + 1;
    return status;
}

int main() {
    int round; int total; int status;
    total = 0;
    round = 0;
    while (round < {work}) {
        status = serve_one();
        if (status < 0) { break; }
        total = total + status;
        round = round + 1;
    }
    return total % 100000;
}
"""

#: a stream of requests for the daemon to serve (fed to stdin)
DEFAULT_STDIN = (b"GET / HTTP/1.0\n".ljust(127, b" ")
                 + b"GET /missing.html\n".ljust(127, b" ")
                 + b"POST /form\n".ljust(127, b" ")
                 + b"GET / again\n".ljust(127, b" "))


def make_source(work: int = 4) -> str:
    return SOURCE_TEMPLATE.replace("{work}", str(work))
