"""hmmer-mini: profile-HMM dynamic-programming kernel.

Mirrors SPEC's hmmer: a Viterbi-style DP over (sequence × model states)
with three-way max recurrences — the classic long dependent inner loop
dominated by integer adds, compares, and array loads.
"""

NAME = "hmmer"
DESCRIPTION = "Viterbi dynamic programming over sequence x states"
PHASES = ("dp",)

SOURCE_TEMPLATE = """
int match[32];
int insert[32];
int delete[32];
int prev_match[32];
int prev_insert[32];
int prev_delete[32];
int emissions[64];
int seed = 424242;

int next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
    return (seed >> 12) % 16;
}

int max2(int a, int b) {
    if (a > b) { return a; }
    return b;
}

int max3(int a, int b, int c) {
    return max2(max2(a, b), c);
}

int viterbi_row(int symbol, int states) {
    int j; int em; int best_here;
    best_here = 0 - 1000000;
    j = 1;
    while (j < states) {
        em = emissions[(symbol * 4 + j) % 64];
        match[j] = max3(prev_match[j - 1], prev_insert[j - 1],
                        prev_delete[j - 1]) + em;
        insert[j] = max2(prev_match[j] - 3, prev_insert[j] - 1);
        delete[j] = max2(match[j - 1] - 4, delete[j - 1] - 1);
        if (match[j] > best_here) { best_here = match[j]; }
        j = j + 1;
    }
    j = 0;
    while (j < states) {
        prev_match[j] = match[j];
        prev_insert[j] = insert[j];
        prev_delete[j] = delete[j];
        j = j + 1;
    }
    return best_here;
}

int main() {
    int i; int row; int best; int states; int rounds;
    states = 24;
    i = 0;
    while (i < 64) { emissions[i] = next_rand() - 6; i = i + 1; }
    best = 0;
    rounds = 0;
    while (rounds < {work}) {
        i = 0;
        while (i < states) {
            prev_match[i] = 0; prev_insert[i] = 0 - 10; prev_delete[i] = 0 - 10;
            i = i + 1;
        }
        row = 0;
        while (row < 40) {
            best = best + viterbi_row(next_rand(), states);
            row = row + 1;
        }
        rounds = rounds + 1;
    }
    return best % 100000;
}
"""


def make_source(work: int = 3) -> str:
    return SOURCE_TEMPLATE.replace("{work}", str(work))
