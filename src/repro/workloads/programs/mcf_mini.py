"""mcf-mini: network-simplex pointer-chasing kernel.

Mirrors SPEC's mcf: walking arc/node structures of a flow network with
data-dependent, cache-hostile access patterns — the classic
pointer-chasing, latency-bound benchmark.
"""

NAME = "mcf"
DESCRIPTION = "minimum-cost-flow style arc/node pointer chasing"
PHASES = ("chase", "price")

SOURCE_TEMPLATE = """
int node_next[128];
int node_potential[128];
int arc_from[256];
int arc_to[256];
int arc_cost[256];
int seed = 31337;

int next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
    return seed >> 7;
}

int build_network(int nodes, int arcs) {
    int i;
    i = 0;
    while (i < nodes) {
        node_next[i] = next_rand() % nodes;
        node_potential[i] = next_rand() % 1000;
        i = i + 1;
    }
    i = 0;
    while (i < arcs) {
        arc_from[i] = next_rand() % nodes;
        arc_to[i] = next_rand() % nodes;
        arc_cost[i] = (next_rand() % 200) - 100;
        i = i + 1;
    }
    return 0;
}

int chase(int start, int steps, int nodes) {
    int node; int sum; int i;
    node = start % nodes;
    sum = 0;
    i = 0;
    while (i < steps) {
        sum = sum + node_potential[node];
        node = node_next[node];
        i = i + 1;
    }
    return sum;
}

int price_arcs(int arcs) {
    int i; int reduced; int negative;
    negative = 0;
    i = 0;
    while (i < arcs) {
        reduced = arc_cost[i] + node_potential[arc_from[i]]
                  - node_potential[arc_to[i]];
        if (reduced < 0) {
            negative = negative + 1;
            node_potential[arc_to[i]] = node_potential[arc_to[i]]
                                        + reduced / 2;
        }
        i = i + 1;
    }
    return negative;
}

int main() {
    int round; int total; int nodes; int arcs;
    nodes = 100;
    arcs = 240;
    build_network(nodes, arcs);
    total = 0;
    round = 0;
    while (round < {work}) {
        total = total + chase(round * 11, 300, nodes);
        total = total + price_arcs(arcs);
        round = round + 1;
    }
    if (total < 0) { total = 0 - total; }
    return total % 100000;
}
"""


def make_source(work: int = 4) -> str:
    return SOURCE_TEMPLATE.replace("{work}", str(work))
