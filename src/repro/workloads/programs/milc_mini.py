"""milc-mini: lattice-QCD arithmetic kernel.

Mirrors SPEC's milc: su3-style small-matrix multiply-accumulate swept
over a 4-D lattice — integer multiply dense, strided memory access.
"""

NAME = "milc"
DESCRIPTION = "4-D lattice su3-style multiply-accumulate sweeps"
PHASES = ("mult",)

SOURCE_TEMPLATE = """
int lattice[648];
int link_m[9];
int result[9];

int init_lattice(int sites) {
    int i;
    i = 0;
    while (i < sites * 9) {
        lattice[i] = (i * 13 + 7) % 23 - 11;
        i = i + 1;
    }
    i = 0;
    while (i < 9) { link_m[i] = (i * 5 + 1) % 7 - 3; i = i + 1; }
    return 0;
}

int su3_mult(int site_base) {
    int row; int col; int k; int acc;
    row = 0;
    while (row < 3) {
        col = 0;
        while (col < 3) {
            acc = 0;
            k = 0;
            while (k < 3) {
                acc = acc + lattice[site_base + row * 3 + k]
                            * link_m[k * 3 + col];
                k = k + 1;
            }
            result[row * 3 + col] = acc;
            col = col + 1;
        }
        row = row + 1;
    }
    return result[0] + result[4] + result[8];
}

int sweep(int sites) {
    int site; int trace_sum;
    trace_sum = 0;
    site = 0;
    while (site < sites) {
        trace_sum = trace_sum + su3_mult(site * 9);
        site = site + 1;
    }
    return trace_sum;
}

int main() {
    int round; int total; int sites;
    sites = 72;
    init_lattice(sites);
    total = 0;
    round = 0;
    while (round < {work}) {
        total = total + sweep(sites);
        round = round + 1;
    }
    if (total < 0) { total = 0 - total; }
    return total % 100000;
}
"""


def make_source(work: int = 8) -> str:
    return SOURCE_TEMPLATE.replace("{work}", str(work))
