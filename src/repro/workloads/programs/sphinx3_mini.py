"""sphinx3-mini: GMM acoustic-scoring kernel.

Mirrors SPEC's sphinx3: Gaussian-mixture scoring of feature frames —
nested loops computing per-component squared distances with a running
best-score reduction, plus a senone dispatch layer of small calls.
"""

NAME = "sphinx3"
DESCRIPTION = "GMM scoring: distance loops with best-score reduction"
PHASES = ("score", "normalize")

SOURCE_TEMPLATE = """
int means[256];
int variances[256];
int features[16];
int scores[32];
int seed = 90210;

int next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
    return (seed >> 10) % 32;
}

int init_model(int components, int dims) {
    int i;
    i = 0;
    while (i < components * dims) {
        means[i] = next_rand() - 16;
        variances[i] = (next_rand() % 7) + 1;
        i = i + 1;
    }
    return 0;
}

int component_score(int component, int dims) {
    int d; int diff; int score; int base;
    base = component * dims;
    score = 0;
    d = 0;
    while (d < dims) {
        diff = features[d] - means[base + d];
        score = score + diff * diff / variances[base + d];
        d = d + 1;
    }
    return 0 - score;
}

int score_frame(int components, int dims) {
    int c; int best; int s;
    best = 0 - 1000000;
    c = 0;
    while (c < components) {
        s = component_score(c, dims);
        scores[c] = s;
        if (s > best) { best = s; }
        c = c + 1;
    }
    return best;
}

int normalize(int components, int best) {
    int c; int total;
    total = 0;
    c = 0;
    while (c < components) {
        total = total + (scores[c] - best);
        c = c + 1;
    }
    return total;
}

int main() {
    int frame; int total; int d; int best; int components; int dims;
    components = 16;
    dims = 12;
    init_model(components, dims);
    total = 0;
    frame = 0;
    while (frame < {work}) {
        d = 0;
        while (d < dims) { features[d] = next_rand() - 16; d = d + 1; }
        best = score_frame(components, dims);
        total = total + best - normalize(components, best) / 8;
        frame = frame + 1;
    }
    if (total < 0) { total = 0 - total; }
    return total % 100000;
}
"""


def make_source(work: int = 10) -> str:
    return SOURCE_TEMPLATE.replace("{work}", str(work))
