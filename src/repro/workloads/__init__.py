"""Workloads: SPEC-CPU2006-like mini benchmarks plus the httpd daemon."""

from .suite import (
    ISOMERON_COMPARISON_NAMES,
    SPEC_NAMES,
    WORKLOADS,
    Workload,
    clear_compile_cache,
    compile_workload,
    get_workload,
    spec_workloads,
)

__all__ = [
    "ISOMERON_COMPARISON_NAMES",
    "SPEC_NAMES",
    "WORKLOADS",
    "Workload",
    "clear_compile_cache",
    "compile_workload",
    "get_workload",
    "spec_workloads",
]
