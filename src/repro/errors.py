"""Exception hierarchy for the HIPStR reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish simulator faults (bugs in *our* code) from modelled
machine faults (segfaults, illegal instructions) that are *expected* outcomes
of, e.g., a failed ROP attempt.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration or construction parameters.

    Subclasses :class:`ValueError` so legacy callers catching the bare
    builtin keep working while new code can catch :class:`ReproError`.
    """


class AssemblerError(ReproError):
    """Raised when source assembly cannot be encoded."""


class DecodeError(ReproError):
    """Raised when bytes cannot be decoded into a valid instruction."""

    def __init__(self, address: int, message: str = "invalid instruction"):
        super().__init__(f"{message} at {address:#x}")
        self.address = address


class MachineFault(ReproError):
    """Base class for modelled hardware/OS faults during execution.

    These are *modelled* outcomes: a ROP payload that jumps to garbage
    raises one of these, and the attack harness treats it as a failed
    attempt (the parent process would observe a crashed child).
    """

    def __init__(self, address: int, message: str):
        super().__init__(f"{message} at {address:#x}")
        self.address = address


class SegmentationFault(MachineFault):
    """Access to unmapped memory or a permission violation."""

    def __init__(self, address: int, access: str = "access"):
        super().__init__(address, f"segmentation fault ({access})")
        self.access = access


class IllegalInstruction(MachineFault):
    """Execution reached bytes that do not decode to a valid instruction."""

    def __init__(self, address: int):
        super().__init__(address, "illegal instruction")


class AlignmentFault(MachineFault):
    """A fixed-width ISA fetched from an unaligned program counter."""

    def __init__(self, address: int):
        super().__init__(address, "unaligned instruction fetch")


class ExecutionLimitExceeded(ReproError):
    """The interpreter ran past its configured instruction budget."""


class CompileError(ReproError):
    """Raised by the mini-C frontend or the code generators."""


class LinkError(ReproError):
    """Raised when fat-binary assembly or symbol resolution fails."""


class TranslationError(ReproError):
    """Raised by the dynamic binary translator on untranslatable input."""


class MigrationError(ReproError):
    """Raised when cross-ISA state transformation cannot proceed."""


class TranspileError(ReproError):
    """Raised when the static binary transpiler cannot lift an input.

    Carries the pre-lift CFG-recovery findings (when the rejection came
    from validation) so callers can report *why* the section was not
    liftable instead of just that it wasn't.
    """

    def __init__(self, message: str, findings=None):
        super().__init__(message)
        self.findings = list(findings) if findings else []


class VerificationError(ReproError):
    """Raised when static verification rejects a fat binary.

    Carries the full :class:`~repro.staticcheck.findings.VerificationReport`
    so callers can inspect or serialize every finding.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class MigrationRollback(MigrationError):
    """A migration failed mid-flight and pre-migration state was restored.

    Raised by :class:`~repro.migration.engine.MigrationEngine` after it
    rolls its checkpoint back; the HIPStR system catches it, re-arms the
    in-flight control transfer, and continues on the source ISA — the
    relocation is dropped/re-queued, never half-applied.
    """

    def __init__(self, message: str, cause: str = "", kind: str = ""):
        super().__init__(message)
        self.cause = cause
        self.kind = kind


class FaultInjected(ReproError):
    """An error deliberately raised by the fault-injection subsystem.

    Carries enough provenance (site, kind, per-site ordinal) for the
    chaos harness to match every injected fault against the recovery
    counters — a fault that neither recovers nor surfaces is a bug.
    """

    def __init__(self, site: str, kind: str, ordinal: int):
        super().__init__(f"injected fault {kind!r} at {site} #{ordinal}")
        self.site = site
        self.kind = kind
        self.ordinal = ordinal


class CacheIntegrityError(ReproError):
    """A cache artifact failed its checksum or could not be decoded.

    Raised internally by :class:`~repro.runtime.cache.ArtifactCache` when
    verifying an entry; the public ``get`` path converts it into a
    quarantine-and-recompute, never an exception to the caller.
    """

    def __init__(self, path, detail: str):
        super().__init__(f"corrupt cache entry {path}: {detail}")
        self.path = path
        self.detail = detail


class JournalCorruptError(ReproError):
    """A run journal failed structural validation during replay.

    Raised by :func:`~repro.runtime.durable.replay_journal` for damage
    that cannot be attributed to a crash mid-append: a garbled record
    *before* the final line, a missing or wrong-schema header, or an
    unknown record type.  (A torn *final* line is the expected crash
    signature and is repaired, not raised.)
    """

    def __init__(self, path, detail: str):
        super().__init__(f"corrupt run journal {path}: {detail}")
        self.path = path
        self.detail = detail


class ResumeMismatchError(ReproError):
    """A resumed run does not match the journal it is resuming from.

    Raised when the config digest recorded in the journal disagrees with
    the digest recomputed from the stored command line (the journal was
    edited, or the toolchain changed underneath it), so replaying
    completed jobs would silently mix incompatible artifacts.
    """


class RunInterrupted(ReproError):
    """A sweep was interrupted by SIGTERM after draining in-flight jobs.

    Raised by :class:`~repro.runtime.engine.ExperimentEngine` once every
    in-flight job has completed and been journaled; the CLI catches it,
    appends a ``run_interrupted`` record, flushes the trace, and exits
    nonzero — never dying mid-write.
    """

    def __init__(self, message: str = "run interrupted by signal",
                 completed: int = 0, remaining: int = 0):
        super().__init__(f"{message} ({completed} job(s) drained, "
                         f"{remaining} not started)")
        self.completed = completed
        self.remaining = remaining


class AttackError(ReproError, RuntimeError):
    """An attack harness step failed (reconnaissance, staging, payload).

    Subclasses :class:`RuntimeError` for backward compatibility with
    callers that caught the bare builtin.
    """


class SecurityViolation(ReproError):
    """Raised when a software-fault-isolation invariant is broken.

    The PSR virtual machine terminates the process when, e.g., an indirect
    jump targets the code cache (Section 5.1 of the paper).
    """

    def __init__(self, message: str, address: int = 0):
        super().__init__(message)
        self.address = address
