"""Exception hierarchy for the HIPStR reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish simulator faults (bugs in *our* code) from modelled
machine faults (segfaults, illegal instructions) that are *expected* outcomes
of, e.g., a failed ROP attempt.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AssemblerError(ReproError):
    """Raised when source assembly cannot be encoded."""


class DecodeError(ReproError):
    """Raised when bytes cannot be decoded into a valid instruction."""

    def __init__(self, address: int, message: str = "invalid instruction"):
        super().__init__(f"{message} at {address:#x}")
        self.address = address


class MachineFault(ReproError):
    """Base class for modelled hardware/OS faults during execution.

    These are *modelled* outcomes: a ROP payload that jumps to garbage
    raises one of these, and the attack harness treats it as a failed
    attempt (the parent process would observe a crashed child).
    """

    def __init__(self, address: int, message: str):
        super().__init__(f"{message} at {address:#x}")
        self.address = address


class SegmentationFault(MachineFault):
    """Access to unmapped memory or a permission violation."""

    def __init__(self, address: int, access: str = "access"):
        super().__init__(address, f"segmentation fault ({access})")
        self.access = access


class IllegalInstruction(MachineFault):
    """Execution reached bytes that do not decode to a valid instruction."""

    def __init__(self, address: int):
        super().__init__(address, "illegal instruction")


class AlignmentFault(MachineFault):
    """A fixed-width ISA fetched from an unaligned program counter."""

    def __init__(self, address: int):
        super().__init__(address, "unaligned instruction fetch")


class ExecutionLimitExceeded(ReproError):
    """The interpreter ran past its configured instruction budget."""


class CompileError(ReproError):
    """Raised by the mini-C frontend or the code generators."""


class LinkError(ReproError):
    """Raised when fat-binary assembly or symbol resolution fails."""


class TranslationError(ReproError):
    """Raised by the dynamic binary translator on untranslatable input."""


class MigrationError(ReproError):
    """Raised when cross-ISA state transformation cannot proceed."""


class VerificationError(ReproError):
    """Raised when static verification rejects a fat binary.

    Carries the full :class:`~repro.staticcheck.findings.VerificationReport`
    so callers can inspect or serialize every finding.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class SecurityViolation(ReproError):
    """Raised when a software-fault-isolation invariant is broken.

    The PSR virtual machine terminates the process when, e.g., an indirect
    jump targets the code cache (Section 5.1 of the paper).
    """

    def __init__(self, message: str, address: int = 0):
        super().__init__(message)
        self.address = address
