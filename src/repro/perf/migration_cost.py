"""Migration cost model — Figures 12 and 13.

Heterogeneous-ISA process migration pays for (a) the OS-level core
hand-off, and (b) the PSR-aware program state transformation: walking the
stack, moving every live value between randomized locations, rebuilding
scatter slots, and rewriting return addresses.  The direction matters:
landing on the x86 core means rebuilding the denser x86 frame images and
warming the big core's structures, which the paper measures as the more
expensive direction (1.287 ms into x86's partner vs 0.909 ms the other
way — Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..migration.engine import MigrationRecord

#: fixed per-migration hand-off cost in microseconds, by target ISA.
HANDOFF_MICROS = {
    "x86like": 400.0,     # warming the big out-of-order core costs more
    "armlike": 250.0,
}
#: per-frame walk/rewrite cost (μs)
FRAME_MICROS = 18.0
#: per-value relocation cost (μs): fetch at old slot, store at new
VALUE_MICROS = 2.5
#: per-byte cost of rebuilding frame images on the target ISA (μs)
BYTE_MICROS = 0.05
#: translating the resume unit on the target, μs per direction
RESUME_TRANSLATION_MICROS = {"x86like": 220.0, "armlike": 120.0}


def migration_micros(record: MigrationRecord) -> float:
    """Cost of one recorded migration, in microseconds."""
    report = record.report
    micros = HANDOFF_MICROS[record.target_isa]
    micros += report.frames * FRAME_MICROS
    micros += report.values_moved * VALUE_MICROS
    micros += report.bytes_touched * BYTE_MICROS
    micros += RESUME_TRANSLATION_MICROS[record.target_isa]
    return micros


@dataclass
class MigrationCostSummary:
    """Aggregated migration costs for one run (Figure 12's bars)."""

    count: int
    total_micros: float
    by_direction: Dict[str, float]        # "arm_to_x86"/"x86_to_arm" avg μs

    @property
    def average_micros(self) -> float:
        return self.total_micros / self.count if self.count else 0.0


def summarize(records: Iterable[MigrationRecord]) -> MigrationCostSummary:
    totals: Dict[str, List[float]] = {"arm_to_x86": [], "x86_to_arm": []}
    total = 0.0
    count = 0
    for record in records:
        micros = migration_micros(record)
        total += micros
        count += 1
        key = ("arm_to_x86" if record.target_isa == "x86like"
               else "x86_to_arm")
        totals[key].append(micros)
    return MigrationCostSummary(
        count=count,
        total_micros=total,
        by_direction={
            key: (sum(values) / len(values) if values else 0.0)
            for key, values in totals.items()
        },
    )
