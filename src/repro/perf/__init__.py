"""Performance model: cores, caches, branch prediction, timing, migration."""

from .branch import BranchPredictor, BranchStats
from .caches import Cache, CacheStats
from .cores import ARM_CORE, CORES, CacheConfig, CoreConfig, X86_CORE
from .migration_cost import MigrationCostSummary, migration_micros, summarize
from .timing import CLASS_COSTS, DBTCostModel, PerfMeasurement, TimingModel

__all__ = [
    "ARM_CORE",
    "BranchPredictor",
    "BranchStats",
    "CLASS_COSTS",
    "CORES",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "CoreConfig",
    "DBTCostModel",
    "MigrationCostSummary",
    "PerfMeasurement",
    "TimingModel",
    "X86_CORE",
    "migration_micros",
    "summarize",
]
