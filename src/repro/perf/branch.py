"""Two-bit saturating-counter branch predictor (bimodal)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigError


@dataclass
class BranchStats:
    predictions: int = 0
    mispredictions: int = 0

    @property
    def misprediction_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions


class BranchPredictor:
    """Classic bimodal table of 2-bit counters indexed by PC."""

    def __init__(self, entries: int = 4096, disabled: bool = False):
        if entries & (entries - 1):
            raise ConfigError("entries must be a power of two")
        self._mask = entries - 1
        #: counters: 0,1 predict not-taken; 2,3 predict taken
        self._table: List[int] = [1] * entries
        self.stats = BranchStats()
        #: with prediction disabled every branch mispredicts (the
        #: Isomeron model: shepherding defeats branch prediction)
        self.disabled = disabled

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Record one resolved branch; returns True if predicted right."""
        self.stats.predictions += 1
        if self.disabled:
            self.stats.mispredictions += 1
            return False
        index = (pc >> 1) & self._mask
        counter = self._table[index]
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        if not correct:
            self.stats.mispredictions += 1
        if taken:
            self._table[index] = min(counter + 1, 3)
        else:
            self._table[index] = max(counter - 1, 0)
        return correct
