"""Set-associative cache simulation with LRU replacement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigError
from .cores import CacheConfig


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of set-associative cache, LRU within each set."""

    def __init__(self, config: CacheConfig):
        self.config = config
        line = config.line_size
        if line & (line - 1):
            raise ConfigError("line size must be a power of two")
        self.num_sets = max(config.size // (line * config.associativity), 1)
        self._offset_bits = line.bit_length() - 1
        #: per-set list of tags, most recently used last
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _locate(self, address: int):
        block = address >> self._offset_bits
        return block % self.num_sets, block

    def access(self, address: int) -> bool:
        """Touch one address; returns True on hit."""
        index, tag = self._locate(address)
        ways = self._sets[index]
        self.stats.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)
        return False

    def access_cost(self, address: int) -> int:
        """Touch and return the latency in cycles."""
        if self.access(address):
            return self.config.hit_latency
        return self.config.hit_latency + self.config.miss_penalty

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()
