"""Analytic/event timing model over executed instruction streams.

Attaches to the interpreter as a step observer: every executed
instruction charges its class cost scaled by the core's sustainable ILP,
plus I-cache, D-cache, and branch-predictor penalties from the actual
addresses and branch outcomes of the run.  DBT-specific costs (unit
translation, RAT lookups, dispatcher hits) are charged from the PSR VM's
statistics after the run.

This is deliberately *not* a cycle-accurate pipeline — absolute numbers
differ from the paper's gem5 results — but every effect the paper's
performance figures rely on is modelled from first principles: relocated
state costs extra memory traffic (Figure 9), sparse frames touch more
cache lines (Figure 10), small RATs add return penalties (Figure 11),
code-cache pressure adds retranslation work (Figure 13), and defeated
branch prediction hurts call-dense code (Figure 14's Isomeron model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..isa.base import Op
from ..machine.cpu import CPUState
from ..machine.interpreter import StepInfo
from .branch import BranchPredictor
from .caches import Cache
from .cores import CoreConfig

#: base execution cost per instruction class, in issue slots
CLASS_COSTS: Dict[Op, float] = {
    Op.MUL: 3.0,
    Op.DIV: 12.0,
    Op.MOD: 12.0,
    Op.SYSCALL: 80.0,
    Op.CALL: 2.0,
    Op.ICALL: 3.0,
    Op.RET: 2.0,
    Op.IJMP: 3.0,
}
_DEFAULT_COST = 1.0


@dataclass
class DBTCostModel:
    """Costs of the translation machinery itself."""

    translation_cycles_per_byte: float = 12.0
    chain_cycles_per_unit: float = 30.0
    rat_lookup_cycles: float = 1.0       # the paper's 1-cycle RAT penalty
    rat_miss_cycles: float = 60.0        # trap + re-translation dispatch
    indirect_dispatch_cycles: float = 8.0

    def snapshot(self, vm) -> Dict[str, float]:
        """Capture the VM counters the overhead computation depends on."""
        return {
            "bytes_installed": vm.cache.stats.bytes_installed,
            "installs": vm.cache.stats.installs,
            "rat_lookups": vm.rat.stats.lookups,
            "rat_misses": vm.rat.stats.misses,
            "security_events": vm.stats.security_events,
        }

    def overhead_cycles(self, vm,
                        since: Optional[Dict[str, float]] = None) -> float:
        """DBT overhead from the VM's statistics.

        ``since`` (an earlier :meth:`snapshot`) restricts the charge to
        work done during the measurement window — translation performed
        during warmup is amortized start-up cost, as in the paper's
        fast-forwarded steady-state methodology.
        """
        now = self.snapshot(vm)
        base = since or {key: 0.0 for key in now}
        delta = {key: now[key] - base.get(key, 0.0) for key in now}
        cycles = delta["bytes_installed"] * self.translation_cycles_per_byte
        cycles += delta["installs"] * self.chain_cycles_per_unit
        cycles += delta["rat_lookups"] * self.rat_lookup_cycles
        cycles += delta["rat_misses"] * self.rat_miss_cycles
        cycles += delta["security_events"] * self.indirect_dispatch_cycles
        return cycles


class TimingModel:
    """Step observer accumulating cycles for one core."""

    def __init__(self, core: CoreConfig,
                 disable_branch_prediction: bool = False):
        self.core = core
        self.icache = Cache(core.icache)
        self.dcache = Cache(core.dcache)
        self.branch_predictor = BranchPredictor(
            disabled=disable_branch_prediction)
        self.cycles = 0.0
        self.instructions = 0
        #: fraction of a D-cache miss the out-of-order window hides
        self.miss_overlap = 0.4
        #: cycles per data-memory access even on a hit: address generation
        #: plus load-use latency the window cannot always hide.  This is
        #: what makes stack-relocated state cost real time — the effect
        #: the -O2 global register cache exists to claw back (Figure 9).
        self.mem_access_cost = 0.7

    # ------------------------------------------------------------------
    def observe(self, cpu: CPUState, info: StepInfo) -> None:
        decoded = info.decoded
        op = decoded.instruction.op
        self.instructions += 1
        self.cycles += CLASS_COSTS.get(op, _DEFAULT_COST) / self.core.ilp_factor

        if not self.icache.access(decoded.address):
            self.cycles += self.core.icache.miss_penalty

        for address, _is_write in info.mem_accesses:
            self.cycles += self.mem_access_cost / self.core.ilp_factor
            if not self.dcache.access(address):
                self.cycles += (self.core.dcache.miss_penalty
                                * (1.0 - self.miss_overlap))

        if op is Op.JCC:
            correct = self.branch_predictor.predict_and_update(
                decoded.address, info.branch_taken)
            if not correct:
                self.cycles += self.core.mispredict_penalty

    # ------------------------------------------------------------------
    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def seconds(self) -> float:
        return self.core.cycles_to_seconds(self.cycles)

    def add_cycles(self, cycles: float) -> None:
        self.cycles += cycles


@dataclass
class PerfMeasurement:
    """One measured run: cycles, instructions, and derived metrics."""

    label: str
    cycles: float
    instructions: int
    core: CoreConfig

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def seconds(self) -> float:
        return self.core.cycles_to_seconds(self.cycles)

    def relative_to(self, baseline: "PerfMeasurement") -> float:
        """Performance relative to a baseline run (1.0 = as fast)."""
        if self.seconds == 0:
            return 0.0
        return baseline.seconds / self.seconds
