"""Core configurations — Table 1 of the paper.

The ARM core models a low-power Cortex-A9-class design, the x86 core a
high-performance Xeon-class design.  The timing model derives each core's
sustainable ILP from fetch/issue width and ROB depth, so the heterogeneity
shows up as a genuine performance gap between the two ISAs' cores.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    size: int = 32 * 1024
    associativity: int = 2
    line_size: int = 64
    hit_latency: int = 1
    miss_penalty: int = 20


@dataclass(frozen=True)
class CoreConfig:
    """One core of the heterogeneous-ISA CMP (Table 1)."""

    name: str
    isa_name: str
    frequency_hz: float
    fetch_width: int
    issue_width: int
    rob_size: int
    load_queue: int
    store_queue: int
    int_alus: int
    icache: CacheConfig
    dcache: CacheConfig
    #: pipeline flush cost on a branch mispredict, in cycles
    mispredict_penalty: int

    @property
    def ilp_factor(self) -> float:
        """Sustainable instructions per cycle for integer code.

        Front-end width bounds it; ROB depth determines how much of that
        width out-of-order execution can actually keep fed.
        """
        width = min(self.fetch_width, self.issue_width)
        rob_efficiency = self.rob_size / (self.rob_size + 24.0)
        return max(width * rob_efficiency, 0.5)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def cycles_to_micros(self, cycles: float) -> float:
        return self.cycles_to_seconds(cycles) * 1e6


#: low-power in-order-ish core (Cortex-A9-like) — Table 1, top half
ARM_CORE = CoreConfig(
    name="arm-little",
    isa_name="armlike",
    frequency_hz=2.0e9,
    fetch_width=2,
    issue_width=4,
    rob_size=20,
    load_queue=16,
    store_queue=16,
    int_alus=2,
    icache=CacheConfig(size=32 * 1024, associativity=2),
    dcache=CacheConfig(size=32 * 1024, associativity=2),
    mispredict_penalty=8,
)

#: high-performance out-of-order core (Xeon-like) — Table 1, bottom half
X86_CORE = CoreConfig(
    name="x86-big",
    isa_name="x86like",
    frequency_hz=3.3e9,
    fetch_width=4,
    issue_width=4,
    rob_size=128,
    load_queue=48,
    store_queue=96,
    int_alus=6,
    icache=CacheConfig(size=32 * 1024, associativity=2),
    dcache=CacheConfig(size=32 * 1024, associativity=2),
    mispredict_penalty=14,
)

CORES = {"x86like": X86_CORE, "armlike": ARM_CORE}
