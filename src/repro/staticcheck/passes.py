"""The pass framework and driver of the static verifier.

A :class:`VerifierPass` bundles a name, the rule IDs it can emit, and a
``run`` hook; :func:`run_verifier` executes the registered passes over a
:class:`~repro.compiler.fatbinary.FatBinary` *without executing it*,
optionally restricted to a rule selection, and returns a
:class:`~repro.staticcheck.findings.VerificationReport`.

Observability: each pass runs inside a ``verify.pass`` span and every
finding bumps the ``verify.findings{rule,severity}`` counter, so traced
``repro verify`` runs summarize under ``repro report``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigError
from ..obs import context as obs
from .cfg import recover_cfgs
from .consistency import check_consistency
from .dataflow import check_dataflow
from .findings import (
    Finding,
    PassTiming,
    VerificationReport,
    resolve_rules,
)
from .framesafety import check_frame_safety
from .gadget_audit import check_gadget_surface
from .symequiv import check_symbolic_equivalence
from .transpilecheck import check_transpilation


class VerifierPass:
    """One static-analysis pass: a named producer of findings."""

    #: stable pass name (used by ``passes=`` selections and spans)
    name: str = "abstract"
    #: rule IDs this pass can emit (rule filtering prunes whole passes)
    rules: Sequence[str] = ()

    def run(self, binary, report: VerificationReport) -> List[Finding]:
        raise NotImplementedError


class CFGRecoveryPass(VerifierPass):
    """Recursive-descent CFG recovery, cross-checked against the IR."""

    name = "cfg"
    rules = ("HIP101", "HIP102", "HIP103", "HIP104", "HIP105", "HIP106",
             "HIP204")

    def run(self, binary, report: VerificationReport) -> List[Finding]:
        findings: List[Finding] = []
        block_counts = {}
        for isa_name in binary.isa_names:
            recovered = recover_cfgs(binary, isa_name, findings)
            block_counts[isa_name] = sum(
                len(fn.blocks) for fn in recovered.values())
        report.facts["cfg.blocks"] = block_counts
        return findings


class ConsistencyPass(VerifierPass):
    """Cross-ISA agreement on stack maps, call sites, symbols, live sets."""

    name = "consistency"
    rules = ("HIP201", "HIP202", "HIP203", "HIP204", "HIP205", "HIP206")

    def run(self, binary, report: VerificationReport) -> List[Finding]:
        findings: List[Finding] = []
        check_consistency(binary, findings)
        return findings


class DataflowPass(VerifierPass):
    """IR lints: use-before-def, dead stores, unreachable, call arity."""

    name = "dataflow"
    rules = ("HIP301", "HIP302", "HIP303", "HIP304")

    def run(self, binary, report: VerificationReport) -> List[Finding]:
        findings: List[Finding] = []
        check_dataflow(binary, findings)
        return findings


class SymbolicEquivalencePass(VerifierPass):
    """Per-block symbolic proof that both ISA views compute the same
    thing (registers, frame slots, effects) at every equivalence point."""

    name = "symequiv"
    rules = ("HIP401", "HIP402", "HIP403", "HIP404")

    def run(self, binary, report: VerificationReport) -> List[Finding]:
        findings: List[Finding] = []
        report.facts["symequiv"] = check_symbolic_equivalence(
            binary, findings)
        return findings


class FrameSafetyPass(VerifierPass):
    """Abstract interpretation proving store bounds, SP balance and
    alignment, and return-address-slot integrity on every path."""

    name = "framesafety"
    rules = ("HIP501", "HIP502", "HIP503", "HIP504")

    def run(self, binary, report: VerificationReport) -> List[Finding]:
        findings: List[Finding] = []
        stats = check_frame_safety(binary, findings)
        report.facts["framesafety"] = stats
        if obs.enabled():
            registry = obs.get_registry()
            for outcome in ("proved", "unproven"):
                count = stats.get(f"stores_{outcome}", 0)
                if count:
                    registry.counter("verify.frame_stores",
                                     outcome=outcome).inc(count)
        return findings


class GadgetAuditPass(VerifierPass):
    """Static gadget-surface audit (the paper's encoding asymmetry)."""

    name = "gadgets"
    rules = ("HIP601", "HIP602")

    def run(self, binary, report: VerificationReport) -> List[Finding]:
        findings: List[Finding] = []
        report.facts["gadgets"] = check_gadget_surface(binary, findings)
        return findings


class TranspileCheckPass(VerifierPass):
    """HIP7xx: remap audit plus symbolic re-proof of lifted sections.

    A no-op (zero findings, no facts) on binaries that are not
    transpilation products, so default ``repro verify`` output is
    unchanged.
    """

    name = "transpile"
    rules = ("HIP701", "HIP702", "HIP703", "HIP704")

    def run(self, binary, report: VerificationReport) -> List[Finding]:
        findings: List[Finding] = []
        stats = check_transpilation(binary, findings)
        if stats.get("functions"):
            report.facts["transpile"] = stats
        return findings


#: registered passes, in execution order
DEFAULT_PASSES: Sequence[Callable[[], VerifierPass]] = (
    CFGRecoveryPass, ConsistencyPass, DataflowPass,
    SymbolicEquivalencePass, FrameSafetyPass, GadgetAuditPass,
    TranspileCheckPass,
)

#: pass name -> factory, for ``passes=('cfg', 'consistency')`` selections
PASSES_BY_NAME: Dict[str, Callable[[], VerifierPass]] = {
    factory.name: factory for factory in DEFAULT_PASSES}


def _selected_passes(passes: Optional[Sequence[str]],
                     rules: Optional[frozenset]) -> List[VerifierPass]:
    factories = list(DEFAULT_PASSES)
    if passes is not None:
        unknown = [name for name in passes if name not in PASSES_BY_NAME]
        if unknown:
            raise ConfigError(f"unknown verifier pass(es): {unknown}; "
                             f"available: {sorted(PASSES_BY_NAME)}")
        factories = [PASSES_BY_NAME[name] for name in passes]
    selected = [factory() for factory in factories]
    if rules is not None:
        selected = [p for p in selected if set(p.rules) & rules]
    return selected


def run_verifier(binary, rules: Optional[Sequence[str]] = None,
                 passes: Optional[Sequence[str]] = None
                 ) -> VerificationReport:
    """Statically verify a fat binary; never executes its code.

    ``rules`` restricts the checks (IDs, slugs, or ``HIP2``-style
    prefixes — see :func:`~repro.staticcheck.findings.resolve_rules`);
    passes that cannot emit any selected rule are skipped entirely.
    ``passes`` names a subset of passes to run (``cfg``, ``consistency``,
    ``dataflow``, ``symequiv``, ``framesafety``, ``gadgets``).
    """
    selected_rules = resolve_rules(rules)
    report = VerificationReport()
    with obs.span("verify", isas=",".join(binary.isa_names)):
        for verifier_pass in _selected_passes(passes, selected_rules):
            start = time.perf_counter()
            with obs.span("verify.pass",
                          **{"pass": verifier_pass.name}) as span:
                found = verifier_pass.run(binary, report)
                if selected_rules is not None:
                    found = [f for f in found
                             if f.rule_id in selected_rules]
                if span is not None:
                    span.set(findings=len(found))
            seconds = time.perf_counter() - start
            report.findings.extend(found)
            report.timings.append(
                PassTiming(verifier_pass.name, seconds, len(found)))
    if obs.enabled():
        registry = obs.get_registry()
        for finding in report.findings:
            registry.counter("verify.findings", rule=finding.rule_id,
                             severity=str(finding.severity)).inc()
        registry.counter("verify.runs",
                         outcome="ok" if report.ok else "error").inc()
    return report


def verify_binary(binary, rules: Optional[Sequence[str]] = None,
                  passes: Optional[Sequence[str]] = None) -> VerificationReport:
    """Verify and *reject*: raises :class:`~repro.errors.VerificationError`
    carrying the report when any ERROR-severity finding is produced.

    This is the hook behind ``compile_minic(..., verify=True)`` and the
    migration engine's pre-migration assertion mode.
    """
    from ..errors import VerificationError

    report = run_verifier(binary, rules=rules, passes=passes)
    if not report.ok:
        errors = report.errors
        head = "; ".join(f.render() for f in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        raise VerificationError(
            f"fat binary failed static verification: {head}{more}", report)
    return report
