"""Transpilation verification: the HIP7xx pass family.

Applies only to :class:`~repro.transpile.lifter.TranspiledBinary`
instances (anything without the ``transpiled_from`` marker passes
through untouched, so ordinary ``repro verify`` runs and the CI
findings ratchet see no new diagnostics).  Two layers:

* **Remap audit (HIP702)** — the rebuilt symbol table must rename the
  original register assignment *exactly* through the lifter's
  :data:`~repro.transpile.lifter.REGISTER_MAP`: no dropped values, no
  spurious ones, no disagreements, and the callee-save list must be
  the renamed original in the original's push order (frame layouts are
  shared by construction, so a dropped or skewed remap is precisely a
  frame-slot/register relocation the migration engine would get wrong).

* **Symbolic re-proof (HIP701/703/704)** — the PR 8 symbolic
  equivalence prover is re-run with the *lifted* section standing in
  for the compiled one, and its verdicts are reported under
  transpilation-specific rule IDs: value/effect divergence maps to
  HIP701, control divergence (e.g. an inverted branch condition) to
  HIP703, and unmodelable blocks to HIP704.
"""

from __future__ import annotations

from typing import Dict, List

from .findings import Finding
from .symequiv import check_symbolic_equivalence

#: prover rule IDs -> transpilation rule IDs
_RULE_REMAP = {
    "HIP401": "HIP701",
    "HIP402": "HIP701",
    "HIP403": "HIP703",
    "HIP404": "HIP704",
}


def check_transpilation(binary, findings: List[Finding]) -> Dict[str, int]:
    """Run the HIP7xx checks; returns stats (all zero when the binary
    is not a transpilation product)."""
    stats = {"functions": 0, "blocks": 0, "proven": 0, "unsupported": 0,
             "remaps_checked": 0}
    source = getattr(binary, "transpiled_from", None)
    if source is None or source not in binary.isa_names:
        return stats
    targets = [name for name in binary.isa_names if name != source]
    if len(targets) != 1:
        return stats
    target = targets[0]

    from ..transpile.lifter import REGISTER_MAP

    for info in binary.symtab:
        stats["functions"] += 1
        src = info.per_isa[source]
        tgt = info.per_isa[target]
        for value, reg in sorted(src.register_assignment.items()):
            stats["remaps_checked"] += 1
            expected = REGISTER_MAP.get(reg)
            got = tgt.register_assignment.get(value)
            if got is None:
                findings.append(Finding(
                    "HIP702",
                    f"value {value!r} lost its register remap: {source} "
                    f"r{reg} has no {target} assignment",
                    function=info.name, isa=target, subject=value))
            elif got != expected:
                findings.append(Finding(
                    "HIP702",
                    f"value {value!r} remapped to {target} r{got}, but "
                    f"the lifter maps {source} r{reg} to r{expected}",
                    function=info.name, isa=target, subject=value))
        for value in sorted(set(tgt.register_assignment)
                            - set(src.register_assignment)):
            findings.append(Finding(
                "HIP702",
                f"value {value!r} has a spurious {target} register "
                f"assignment with no {source} counterpart",
                function=info.name, isa=target, subject=value))
        expected_saved = [REGISTER_MAP[reg] for reg in src.saved_registers
                          if reg in REGISTER_MAP]
        if list(tgt.saved_registers) != expected_saved:
            findings.append(Finding(
                "HIP702",
                f"callee-save list {tgt.saved_registers} is not the "
                f"renamed {source} save order {expected_saved}",
                function=info.name, isa=target))

    proved: List[Finding] = []
    equiv = check_symbolic_equivalence(binary, proved)
    stats["blocks"] = equiv.get("blocks", 0)
    stats["proven"] = equiv.get("proven", 0)
    stats["unsupported"] = equiv.get("unsupported", 0)
    for finding in proved:
        findings.append(Finding(
            _RULE_REMAP.get(finding.rule_id, "HIP701"),
            f"lifted code diverges from {source}: {finding.message}",
            function=finding.function,
            block=finding.block,
            isa=finding.isa or target,
            address=finding.address,
            subject=finding.subject,
        ))
    return stats
