"""Static gadget-surface audit.

The paper's security argument leans on an encoding asymmetry: x86like's
dense variable-length encoding yields a large population of unintended
gadgets under unaligned decode, while armlike's fixed-width word-aligned
encoding yields *none* (Section 5.5 measures ARM's surface at 52×
smaller).  This pass re-derives both populations statically with the
same Galileo miner the attack experiments use as ground truth
(:mod:`repro.attacks.gadgets` / :mod:`repro.attacks.galileo`) and turns
the asymmetry into checkable invariants:

* an aligned ISA (alignment > 1) must expose **zero** unintended gadget
  starts — any hit means the assembler emitted something decodable off
  the intended stream, i.e. the encoding model is broken (``HIP601``);
* the byte-granular ISA's total surface must strictly dominate the
  aligned ISA's (``HIP602``).
"""

from __future__ import annotations

from typing import Dict, List

from ..attacks.galileo import gadget_population_summary, mine_binary
from ..isa import ISAS
from .findings import Finding


def collect_gadget_summaries(binary) -> Dict[str, Dict[str, int]]:
    """Mine every ISA's text section and summarize the populations."""
    return {isa_name: gadget_population_summary(mine_binary(binary, isa_name))
            for isa_name in binary.isa_names}


def audit_gadget_summaries(summaries: Dict[str, Dict[str, int]],
                           findings: List[Finding]) -> None:
    """Assert the paper's asymmetry over pre-computed summaries.

    Split from the miner so deliberately-broken populations can be
    audited directly in tests.
    """
    aligned = {name for name in summaries if ISAS[name].alignment > 1}
    byte_granular = {name for name in summaries
                     if ISAS[name].alignment == 1}
    for isa_name in sorted(aligned):
        unintended = summaries[isa_name].get("unintended", 0)
        if unintended:
            findings.append(Finding(
                "HIP601",
                f"{unintended} unintended gadget starts on the "
                f"{ISAS[isa_name].alignment}-byte-aligned ISA "
                f"(the paper requires zero)",
                isa=isa_name, subject="unintended"))
    for dense in sorted(byte_granular):
        for sparse in sorted(aligned):
            dense_total = summaries[dense].get("total", 0)
            sparse_total = summaries[sparse].get("total", 0)
            if dense_total <= sparse_total:
                findings.append(Finding(
                    "HIP602",
                    f"gadget surface asymmetry violated: {dense} has "
                    f"{dense_total} gadgets vs {sparse} with "
                    f"{sparse_total}",
                    isa=dense, subject=f"{dense}<={sparse}"))


def check_gadget_surface(binary, findings: List[Finding]
                         ) -> Dict[str, Dict[str, int]]:
    """Mine, audit, and return the per-ISA summaries (report facts)."""
    summaries = collect_gadget_summaries(binary)
    audit_gadget_summaries(summaries, findings)
    return summaries
