"""Cross-ISA consistency checks over the extended symbol table.

PSR and the migration engine *assume* that both codegens agreed on the
program-state metadata: the stack map, the call-site return-address
tables, the symbol tables, and the live-value sets at every equivalence
point.  This pass proves those invariants from the fat binary alone —
every divergence is a finding with function/block/slot provenance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..compiler import ir
from ..isa import ISAS
from ..isa.base import WORD_SIZE
from .findings import Finding


def check_symbols(binary, findings: List[Finding]) -> None:
    """Both text sections must define the same symbol set."""
    isa_names = list(binary.sections)
    if len(isa_names) < 2:
        return
    reference = isa_names[0]
    reference_symbols = set(binary.sections[reference].symbols)
    for other in isa_names[1:]:
        other_symbols = set(binary.sections[other].symbols)
        for missing in sorted(reference_symbols - other_symbols):
            findings.append(Finding(
                "HIP204",
                f"symbol defined on {reference} but missing on {other}",
                isa=other, subject=missing))
        for missing in sorted(other_symbols - reference_symbols):
            findings.append(Finding(
                "HIP204",
                f"symbol defined on {other} but missing on {reference}",
                isa=reference, subject=missing))
    for info in binary.symtab:
        views = set(info.per_isa)
        for isa_name in isa_names:
            if isa_name not in views:
                findings.append(Finding(
                    "HIP204",
                    f"function has no {isa_name} view in the symbol table",
                    function=info.name, isa=isa_name))


def check_stack_map(binary, info, findings: List[Finding]) -> None:
    """The shared frame-data layout must be internally coherent.

    Uses the authoritative :meth:`FunctionInfo.slot_entries` accessor:
    every slot must be word-aligned, lie inside the frame-data region,
    and not overlap any other slot.
    """
    layout = info.layout
    entries = info.slot_entries()
    for entry in entries:
        if entry.offset % WORD_SIZE:
            findings.append(Finding(
                "HIP201",
                f"slot at offset {entry.offset} is not word-aligned",
                function=info.name, subject=entry.name))
        if entry.offset < 0 or entry.end > layout.frame_data_size:
            findings.append(Finding(
                "HIP201",
                f"slot [{entry.offset}, {entry.end}) lies outside the "
                f"frame-data region [0, {layout.frame_data_size})",
                function=info.name, subject=entry.name))
    for previous, current in zip(entries, entries[1:]):
        if previous.end > current.offset:
            findings.append(Finding(
                "HIP201",
                f"slot {previous.name} [{previous.offset}, {previous.end}) "
                f"overlaps slot {current.name} at offset {current.offset}",
                function=info.name,
                subject=f"{previous.name}/{current.name}"))


def check_register_assignments(binary, info, findings: List[Finding]) -> None:
    """Per-ISA register assignments must be valid and saved coherently."""
    for isa_name, per_isa in info.per_isa.items():
        isa = ISAS[isa_name]
        allocatable = set(isa.allocatable)
        assigned: Dict[int, str] = {}
        for value, register in sorted(per_isa.register_assignment.items()):
            if register not in allocatable:
                findings.append(Finding(
                    "HIP206",
                    f"value assigned to non-allocatable register "
                    f"{isa.register_name(register)}",
                    function=info.name, isa=isa_name, subject=value))
            if register in assigned:
                findings.append(Finding(
                    "HIP206",
                    f"register {isa.register_name(register)} assigned to "
                    f"both {assigned[register]!r} and {value!r}",
                    function=info.name, isa=isa_name, subject=value))
            assigned.setdefault(register, value)
        saved = set(per_isa.saved_registers)
        used = set(per_isa.register_assignment.values())
        for register in sorted(used - saved):
            findings.append(Finding(
                "HIP206",
                f"register {isa.register_name(register)} holds a value but "
                f"is missing from the prologue's callee saves",
                function=info.name, isa=isa_name,
                subject=isa.register_name(register)))


def check_live_sets(binary, info, findings: List[Finding]) -> None:
    """Every value live at an equivalence point must be locatable.

    Equivalence points are block entries: migration resumes there, and
    the stack transformer reads every live-in value from *some* location
    — a register recorded in the per-ISA assignment or a frame slot in
    the shared stack map.  A value with neither would silently read
    garbage mid-migration.
    """
    layout = info.layout
    for block_label in info.block_order:
        liveness = info.liveness.get(block_label)
        if liveness is None:
            findings.append(Finding(
                "HIP205", "block has no recorded liveness",
                function=info.name, block=block_label))
            continue
        for value in sorted(liveness.live_in):
            for isa_name, per_isa in info.per_isa.items():
                in_register = value in per_isa.register_assignment
                if not in_register and not layout.has_slot(value):
                    findings.append(Finding(
                        "HIP205",
                        "live-in value has neither a register assignment "
                        "nor a frame slot",
                        function=info.name, block=block_label,
                        isa=isa_name, subject=value))


def _ir_calls_by_block(fn) -> Dict[str, List[ir.IRInstruction]]:
    calls: Dict[str, List[ir.IRInstruction]] = {}
    for block in fn.blocks:
        found = [instruction for instruction in block.instructions
                 if isinstance(instruction, (ir.Call, ir.CallIndirect))]
        if found:
            calls[block.label] = found
    return calls


def _sites_by_block(per_isa) -> Dict[str, List]:
    bounds = per_isa.block_bounds()
    result: Dict[str, List] = {}
    for site in sorted(per_isa.call_sites, key=lambda s: s.address):
        for label, start, end in bounds:
            if start <= site.address < end:
                result.setdefault(label, []).append(site)
                break
    return result


def check_call_sites(binary, info, findings: List[Finding]) -> None:
    """Call-site tables must agree with the IR and across ISAs.

    For every block: the number of native call sites equals the number
    of IR calls on *each* ISA (a dropped table entry strands a return
    address the migration engine cannot resolve), return addresses fall
    inside the function, and the i-th direct call of a block targets the
    same function entry on both ISAs.
    """
    fn = binary.program.functions.get(info.name)
    if fn is None:
        findings.append(Finding(
            "HIP204", "symbol table records a function the IR lacks",
            function=info.name))
        return
    ir_calls = _ir_calls_by_block(fn)
    per_isa_sites = {isa_name: _sites_by_block(per_isa)
                     for isa_name, per_isa in info.per_isa.items()}

    for isa_name, per_isa in info.per_isa.items():
        sites_by_block = per_isa_sites[isa_name]
        labels = set(ir_calls) | set(sites_by_block)
        for label in sorted(labels):
            expected = len(ir_calls.get(label, []))
            actual = len(sites_by_block.get(label, []))
            if expected != actual:
                findings.append(Finding(
                    "HIP202",
                    f"{actual} native call sites vs {expected} IR calls",
                    function=info.name, block=label, isa=isa_name))
        for site in per_isa.call_sites:
            if not (per_isa.entry <= site.address < per_isa.end):
                findings.append(Finding(
                    "HIP202",
                    f"call site at {site.address:#x} lies outside the "
                    f"function range [{per_isa.entry:#x}, {per_isa.end:#x})",
                    function=info.name, isa=isa_name, address=site.address))
            elif not (per_isa.entry < site.return_address <= per_isa.end):
                findings.append(Finding(
                    "HIP202",
                    f"return address {site.return_address:#x} of the call "
                    f"at {site.address:#x} lies outside the function",
                    function=info.name, isa=isa_name, address=site.address))

    _check_call_targets(binary, info, per_isa_sites, ir_calls, findings)


def _resolve_target(binary, isa_name: str, address: int) -> Optional[str]:
    resolved = binary.symtab.function_at(isa_name, address)
    if resolved is None:
        return None
    if resolved.per_isa[isa_name].entry != address:
        return None
    return resolved.name


def _check_call_targets(binary, info, per_isa_sites, ir_calls,
                        findings: List[Finding]) -> None:
    """The i-th call of each block must hit the same callee on every ISA,
    and that callee must match the IR call instruction."""
    for label, calls in ir_calls.items():
        for ordinal, call in enumerate(calls):
            expected = call.function if isinstance(call, ir.Call) else None
            resolved: Dict[str, Optional[str]] = {}
            for isa_name, sites_by_block in per_isa_sites.items():
                sites = sites_by_block.get(label, [])
                if ordinal >= len(sites):
                    continue          # count mismatch already reported
                site = sites[ordinal]
                if site.kind != "call":
                    continue          # indirect: no static target
                if site.target is None:
                    findings.append(Finding(
                        "HIP203",
                        "direct call site has no resolved target",
                        function=info.name, block=label, isa=isa_name,
                        address=site.address))
                    continue
                resolved[isa_name] = _resolve_target(
                    binary, isa_name, site.target)
                if resolved[isa_name] is None:
                    findings.append(Finding(
                        "HIP203",
                        f"call target {site.target:#x} is not a function "
                        f"entry",
                        function=info.name, block=label, isa=isa_name,
                        address=site.address))
                elif expected is not None and resolved[isa_name] != expected:
                    findings.append(Finding(
                        "HIP203",
                        f"native call targets {resolved[isa_name]!r} but "
                        f"the IR calls {expected!r}",
                        function=info.name, block=label, isa=isa_name,
                        address=site.address))
            names = {name for name in resolved.values() if name is not None}
            if len(names) > 1:
                findings.append(Finding(
                    "HIP203",
                    f"call #{ordinal} resolves to different callees per "
                    f"ISA: {sorted(names)}",
                    function=info.name, block=label,
                    subject=f"call#{ordinal}"))


def check_consistency(binary, findings: List[Finding]) -> None:
    """Run every cross-ISA consistency check over the whole binary."""
    check_symbols(binary, findings)
    for info in binary.symtab:
        check_stack_map(binary, info, findings)
        check_register_assignments(binary, info, findings)
        check_live_sets(binary, info, findings)
        check_call_sites(binary, info, findings)
