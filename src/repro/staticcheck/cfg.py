"""Per-ISA CFG recovery by recursive-descent disassembly.

The verifier rebuilds each function's control-flow graph *from the
emitted bytes alone* — decoding instruction by instruction from the
function entry, following branch targets — and then cross-checks the
recovered structure against the IR block structure the compiler claims
it emitted.  Any disagreement means the extended symbol table would
mislead the migration engine at run time.

Intra-block control flow is expected: the code generators materialise
compare results with small internal branch diamonds whose labels live
*inside* one IR block.  Only edges that leave the block's address range
count as CFG successor edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import DecodeError
from ..isa import ISAS
from ..isa.base import Decoded, Imm, Op
from .findings import Finding

#: opcodes that end a native block without falling through
_NO_FALLTHROUGH = frozenset({Op.JMP, Op.RET, Op.IJMP, Op.HLT})


@dataclass
class RecoveredBlock:
    """One IR block's native form, rebuilt from the bytes."""

    label: str
    start: int
    end: int
    instructions: List[Decoded] = field(default_factory=list)
    #: absolute addresses of recovered out-edges (excluding call targets)
    edge_targets: Set[int] = field(default_factory=set)
    falls_through: bool = True
    decoded_ok: bool = True


@dataclass
class RecoveredFunction:
    """Recursive-descent view of one function on one ISA."""

    name: str
    isa_name: str
    entry: int
    end: int
    blocks: Dict[str, RecoveredBlock] = field(default_factory=dict)


def _block_bounds(per_isa) -> List[Tuple[str, int, int]]:
    return per_isa.block_bounds()


def _decode_block(isa, data: bytes, base: int, start: int,
                  end: int) -> Tuple[List[Decoded], bool]:
    """Decode [start, end) linearly; returns (instructions, clean)."""
    instructions: List[Decoded] = []
    address = start
    while address < end:
        try:
            decoded = isa.decode(data, address - base, address)
        except DecodeError:
            return instructions, False
        instructions.append(decoded)
        address = decoded.end
    return instructions, address == end


def _branch_target(decoded: Decoded) -> Optional[int]:
    """Absolute target of a direct JMP/JCC, if statically known."""
    instruction = decoded.instruction
    if instruction.op not in (Op.JMP, Op.JCC):
        return None
    operand = instruction.operands[0]
    if isinstance(operand, Imm):
        return operand.value
    return None


def recover_function(binary, isa_name: str, name: str,
                     findings: List[Finding]) -> Optional[RecoveredFunction]:
    """Rebuild one function's CFG from the bytes, appending findings."""
    isa = ISAS[isa_name]
    info = binary.symtab.function(name)
    per_isa = info.per_isa.get(isa_name)
    if per_isa is None:
        findings.append(Finding(
            "HIP204", f"function has no {isa_name} view in the symbol table",
            function=name, isa=isa_name))
        return None
    section = binary.sections[isa_name]
    recovered = RecoveredFunction(name=name, isa_name=isa_name,
                                  entry=per_isa.entry, end=per_isa.end)

    if per_isa.entry % isa.alignment:
        findings.append(Finding(
            "HIP104",
            f"function entry {per_isa.entry:#x} violates the "
            f"{isa.alignment}-byte alignment of {isa_name}",
            function=name, isa=isa_name, address=per_isa.entry))
    if not (section.base_address <= per_isa.entry
            and per_isa.end <= section.end_address):
        findings.append(Finding(
            "HIP105",
            f"function range [{per_isa.entry:#x}, {per_isa.end:#x}) falls "
            f"outside the text section "
            f"[{section.base_address:#x}, {section.end_address:#x})",
            function=name, isa=isa_name, address=per_isa.entry))
        return recovered

    bounds = _block_bounds(per_isa)
    starts = {start for _, start, _ in bounds}
    for label, start, end in bounds:
        block = RecoveredBlock(label=label, start=start, end=end)
        recovered.blocks[label] = block
        if start % isa.alignment:
            findings.append(Finding(
                "HIP104",
                f"block entry {start:#x} violates the {isa.alignment}-byte "
                f"alignment of {isa_name}",
                function=name, block=label, isa=isa_name, address=start))
            block.decoded_ok = False
            continue
        instructions, clean = _decode_block(
            isa, section.data, section.base_address, start, end)
        block.instructions = instructions
        if not clean:
            resume = (instructions[-1].end if instructions else start)
            findings.append(Finding(
                "HIP101",
                f"decode failed or overran block bounds near {resume:#x} "
                f"(block spans [{start:#x}, {end:#x}))",
                function=name, block=label, isa=isa_name, address=resume))
            block.decoded_ok = False
            continue
        for decoded in instructions:
            target = _branch_target(decoded)
            if target is None:
                continue
            if start <= target < end:
                continue          # internal compare/diamond control flow
            block.edge_targets.add(target)
            if not (per_isa.entry <= target < per_isa.end):
                findings.append(Finding(
                    "HIP103",
                    f"branch at {decoded.address:#x} leaves the function "
                    f"(target {target:#x})",
                    function=name, block=label, isa=isa_name,
                    address=decoded.address))
            elif target not in starts:
                findings.append(Finding(
                    "HIP106",
                    f"branch at {decoded.address:#x} targets {target:#x}, "
                    f"which is not a recorded block entry",
                    function=name, block=label, isa=isa_name,
                    address=decoded.address))
        if instructions:
            block.falls_through = (
                instructions[-1].instruction.op not in _NO_FALLTHROUGH)
        else:
            block.falls_through = True
    return recovered


def check_function_cfg(binary, recovered: RecoveredFunction,
                       findings: List[Finding]) -> None:
    """Cross-check a recovered CFG against the IR block structure."""
    name = recovered.name
    fn = binary.program.functions[name]
    info = binary.symtab.function(name)
    per_isa = info.per_isa[recovered.isa_name]

    ir_labels = [blk.label for blk in fn.blocks]
    for label in ir_labels:
        if label not in per_isa.block_addresses:
            findings.append(Finding(
                "HIP102",
                "IR block has no native address in the symbol table",
                function=name, block=label, isa=recovered.isa_name))
    extra = set(per_isa.block_addresses) - set(ir_labels)
    for label in sorted(extra):
        findings.append(Finding(
            "HIP102",
            "symbol table records a block the IR does not contain",
            function=name, block=label, isa=recovered.isa_name))

    address_to_label = {block.start: label
                        for label, block in recovered.blocks.items()}
    order = [label for label, _, _ in per_isa.block_bounds()]
    for index, label in enumerate(order):
        block = recovered.blocks.get(label)
        if block is None or not block.decoded_ok:
            continue
        if label not in {blk.label for blk in fn.blocks}:
            continue
        expected = set(fn.block(label).successors())
        native: Set[str] = set()
        for target in block.edge_targets:
            target_label = address_to_label.get(target)
            if target_label is not None:
                native.add(target_label)
        if block.falls_through and index + 1 < len(order):
            native.add(order[index + 1])
        if native != expected:
            findings.append(Finding(
                "HIP103",
                f"recovered successors {sorted(native)} disagree with IR "
                f"successors {sorted(expected)}",
                function=name, block=label, isa=recovered.isa_name,
                address=block.start))


def check_function_ranges(binary, isa_name: str,
                          findings: List[Finding]) -> None:
    """Function extents must tile the section without overlapping."""
    ranges = []
    for info in binary.symtab:
        per_isa = info.per_isa.get(isa_name)
        if per_isa is not None:
            ranges.append((per_isa.entry, per_isa.end, info.name))
    ranges.sort()
    for (start_a, end_a, name_a), (start_b, end_b, name_b) in zip(
            ranges, ranges[1:]):
        if end_a > start_b:
            findings.append(Finding(
                "HIP105",
                f"function ranges overlap: {name_a} "
                f"[{start_a:#x}, {end_a:#x}) vs {name_b} "
                f"[{start_b:#x}, {end_b:#x})",
                function=name_b, isa=isa_name, address=start_b))


def recover_cfgs(binary, isa_name: str, findings: List[Finding]
                 ) -> Dict[str, RecoveredFunction]:
    """Recover and cross-check every function's CFG on one ISA."""
    check_function_ranges(binary, isa_name, findings)
    recovered: Dict[str, RecoveredFunction] = {}
    for info in binary.symtab:
        result = recover_function(binary, isa_name, info.name, findings)
        if result is not None:
            recovered[info.name] = result
            check_function_cfg(binary, result, findings)
    return recovered
