"""Static verification of fat binaries — no execution required.

``repro verify`` and the ``verify=True`` compile-pipeline flag run a
pass-based analysis framework over a compiled
:class:`~repro.compiler.fatbinary.FatBinary`:

* :mod:`repro.staticcheck.cfg` — per-ISA CFG recovery by recursive-
  descent disassembly, cross-checked against the IR block structure;
* :mod:`repro.staticcheck.consistency` — cross-ISA agreement on stack
  maps, call-site return-address tables, symbols, and live sets at
  every equivalence point;
* :mod:`repro.staticcheck.dataflow` — IR lints (use-before-def, dead
  stores, unreachable blocks, call arity vs. the symbol table);
* :mod:`repro.staticcheck.symexec` /
  :mod:`repro.staticcheck.symequiv` — per-block symbolic execution of
  both ISA views, proving real semantic equivalence (same values, same
  effects, same control) at every equivalence point;
* :mod:`repro.staticcheck.framesafety` — interval/stack-pointer
  abstract interpretation proving store bounds, SP balance and
  alignment, and return-address integrity on every path;
* :mod:`repro.staticcheck.gadget_audit` — the paper's gadget-surface
  asymmetry as a static invariant;
* :mod:`repro.staticcheck.transpilecheck` — HIP7xx re-verification of
  statically transpiled binaries (register/frame remap audit plus the
  symbolic prover run original-vs-lifted).

Every diagnostic carries a stable ``HIPnnn`` rule ID (see
:data:`~repro.staticcheck.findings.RULES` and DESIGN.md's rule catalog).
"""

from .findings import (
    Finding,
    PassTiming,
    Rule,
    RULES,
    Severity,
    VerificationReport,
    resolve_rules,
)
from .framesafety import check_frame_safety
from .passes import (
    DEFAULT_PASSES,
    PASSES_BY_NAME,
    VerifierPass,
    run_verifier,
    verify_binary,
)
from .symequiv import check_symbolic_equivalence
from .symexec import BlockSummary, execute_block
from .transpilecheck import check_transpilation

__all__ = [
    "BlockSummary",
    "DEFAULT_PASSES",
    "Finding",
    "PASSES_BY_NAME",
    "PassTiming",
    "RULES",
    "Rule",
    "Severity",
    "VerificationReport",
    "VerifierPass",
    "check_frame_safety",
    "check_symbolic_equivalence",
    "check_transpilation",
    "execute_block",
    "resolve_rules",
    "run_verifier",
    "verify_binary",
]
