"""Findings, severities, and the rule catalog of the static verifier.

Every diagnostic the verifier can emit has a *stable rule ID* (``HIPnnn``)
so that CI gates, suppression lists, and the documentation can refer to a
check without depending on message wording.  The numbering is grouped by
pass:

* ``HIP1xx`` — CFG recovery (decode failures, block/edge mismatches);
* ``HIP2xx`` — cross-ISA consistency (stack maps, call-site tables,
  symbols, live sets at equivalence points);
* ``HIP3xx`` — IR dataflow lints (use-before-def, dead stores,
  unreachable blocks, call arity);
* ``HIP4xx`` — symbolic cross-ISA equivalence (per-block symbolic
  execution of both ISA views, compared through the shared stack map);
* ``HIP5xx`` — frame-safety abstract interpretation (store bounds, SP
  balance/alignment, return-address integrity);
* ``HIP6xx`` — gadget-surface audit (the paper's ISA asymmetry;
  numbered HIP40x before the symbolic-equivalence pass claimed HIP4xx).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError


class Severity(enum.IntEnum):
    """Finding severity; CI fails a build on any :attr:`ERROR`."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One verifier check: stable ID, slug, default severity."""

    rule_id: str
    slug: str
    severity: Severity
    summary: str

    def __str__(self) -> str:
        return f"{self.rule_id} {self.slug}"


_RULE_DEFS: Tuple[Rule, ...] = (
    # --- CFG recovery -------------------------------------------------
    Rule("HIP101", "undecodable-code", Severity.ERROR,
         "code bytes inside a function fail to decode, or a block's "
         "decoded instructions overrun its recorded bounds"),
    Rule("HIP102", "cfg-block-missing", Severity.ERROR,
         "an IR basic block has no recovered native block (missing from "
         "the symbol table or unreachable by recursive descent)"),
    Rule("HIP103", "cfg-edge-mismatch", Severity.ERROR,
         "the control-flow edges recovered from the native code disagree "
         "with the IR block's successor set"),
    Rule("HIP104", "misaligned-code", Severity.ERROR,
         "a function or block entry address violates the ISA's "
         "instruction alignment"),
    Rule("HIP105", "function-bounds", Severity.ERROR,
         "function address ranges overlap each other or fall outside "
         "the ISA's text section"),
    Rule("HIP106", "branch-into-mid-block", Severity.ERROR,
         "a branch targets an address that is not a recorded block entry "
         "in its function"),
    # --- cross-ISA consistency ---------------------------------------
    Rule("HIP201", "stackmap-mismatch", Severity.ERROR,
         "the per-function stack map is inconsistent: a slot is "
         "misaligned, out of frame bounds, or overlaps another slot"),
    Rule("HIP202", "callsite-mismatch", Severity.ERROR,
         "the call-site return-address table disagrees with the IR call "
         "structure or between the two ISAs"),
    Rule("HIP203", "callsite-target-mismatch", Severity.ERROR,
         "a direct call's resolved target differs between the two ISAs "
         "or does not land on a function entry"),
    Rule("HIP204", "symtab-mismatch", Severity.ERROR,
         "symbols present in one ISA's view of the binary are missing or "
         "different in the other's"),
    Rule("HIP205", "liveset-unlocatable", Severity.ERROR,
         "a value live at an equivalence point has no location (neither "
         "a register assignment nor a frame slot) on some ISA"),
    Rule("HIP206", "register-assignment-invalid", Severity.ERROR,
         "a value is assigned to a register outside the ISA's allocatable "
         "set, or the recorded callee saves disagree with the assignment"),
    # --- IR dataflow lints -------------------------------------------
    Rule("HIP301", "use-before-def", Severity.ERROR,
         "a value may be read on some path before any assignment"),
    Rule("HIP302", "dead-store", Severity.WARNING,
         "a pure instruction defines a value that is never used"),
    Rule("HIP303", "unreachable-block", Severity.WARNING,
         "a basic block is unreachable from the function entry"),
    Rule("HIP304", "call-arity-mismatch", Severity.ERROR,
         "a direct call passes a different number of arguments than the "
         "callee's symbol-table parameter list declares"),
    # --- symbolic cross-ISA equivalence ------------------------------
    Rule("HIP401", "semantic-divergence", Severity.ERROR,
         "a value live at an equivalence point has different symbolic "
         "values in the two ISA views of the block"),
    Rule("HIP402", "memory-effect-divergence", Severity.ERROR,
         "the two ISA views of a block perform different externally "
         "visible effects (calls, syscalls, or non-frame stores)"),
    Rule("HIP403", "control-divergence", Severity.ERROR,
         "the two ISA views of a block exit to different successors or "
         "under different path conditions"),
    Rule("HIP404", "symexec-unsupported", Severity.WARNING,
         "symbolic execution could not fully model a block (path "
         "explosion or an unmodeled construct); equivalence unproven"),
    # --- frame-safety abstract interpretation ------------------------
    Rule("HIP501", "frame-store-out-of-bounds", Severity.ERROR,
         "a store provably lands outside the current frame and outside "
         "the data section"),
    Rule("HIP502", "sp-unbalanced", Severity.ERROR,
         "the stack pointer is not balanced at a block exit or return "
         "(push/pop or frame adjust mismatch on some path)"),
    Rule("HIP503", "sp-misaligned", Severity.ERROR,
         "the stack pointer leaves word alignment on some path"),
    Rule("HIP504", "return-address-clobbered", Severity.ERROR,
         "a store provably overwrites the return-address slot between "
         "equivalence points"),
    # --- gadget-surface audit ----------------------------------------
    Rule("HIP601", "aligned-isa-unintended-gadgets", Severity.ERROR,
         "a fixed-width, aligned ISA exposes unintended gadget starts "
         "(the paper requires the armlike unintentional count be zero)"),
    Rule("HIP602", "gadget-asymmetry-violated", Severity.WARNING,
         "the byte-granular ISA's gadget surface does not dominate the "
         "aligned ISA's (x86like should be much larger than armlike)"),
    # --- transpilation verification ----------------------------------
    Rule("HIP701", "transpiled-semantic-divergence", Severity.ERROR,
         "a lifted block's symbolic state or externally visible effects "
         "diverge from the original section it was transpiled from"),
    Rule("HIP702", "transpile-remap-mismatch", Severity.ERROR,
         "the transpiled symbol table's register or frame-slot remapping "
         "is dropped, spurious, or inconsistent with the lifter's "
         "register map"),
    Rule("HIP703", "transpiled-control-divergence", Severity.ERROR,
         "a lifted block exits to different successors or under "
         "different path conditions than the original"),
    Rule("HIP704", "transpile-unproven", Severity.WARNING,
         "symbolic execution could not fully model a lifted block; "
         "transpilation equivalence unproven"),
)

#: rule ID -> :class:`Rule`, the authoritative catalog
RULES: Dict[str, Rule] = {rule.rule_id: rule for rule in _RULE_DEFS}


def resolve_rules(selection: Optional[Sequence[str]]) -> Optional[frozenset]:
    """Normalize a ``--rules`` selection to a frozenset of rule IDs.

    Accepts exact IDs (``HIP201``), slugs (``stackmap-mismatch``), and
    prefixes (``HIP2`` selects the whole consistency group).  ``None``
    means "all rules".  Unknown selectors raise :class:`ValueError`.
    """
    if selection is None:
        return None
    chosen: set = set()
    by_slug = {rule.slug: rule.rule_id for rule in _RULE_DEFS}
    for item in selection:
        token = item.strip()
        if not token:
            continue
        if token in RULES:
            chosen.add(token)
        elif token in by_slug:
            chosen.add(by_slug[token])
        else:
            matched = {rule_id for rule_id in RULES
                       if rule_id.startswith(token.upper())}
            if not matched:
                raise ConfigError(f"unknown rule selector {item!r}")
            chosen.update(matched)
    return frozenset(chosen)


@dataclass(frozen=True)
class Finding:
    """One diagnostic, with provenance down to the slot that diverged."""

    rule_id: str
    message: str
    function: Optional[str] = None
    block: Optional[str] = None
    isa: Optional[str] = None
    address: Optional[int] = None
    #: the value/slot/symbol the finding is about (slot provenance)
    subject: Optional[str] = None

    @property
    def rule(self) -> Rule:
        return RULES[self.rule_id]

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    def location(self) -> str:
        parts = [part for part in (self.isa, self.function, self.block)
                 if part]
        where = "/".join(parts) if parts else "<binary>"
        if self.address is not None:
            where += f"@{self.address:#x}"
        if self.subject:
            where += f" [{self.subject}]"
        return where

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule_id,
            "slug": self.rule.slug,
            "severity": str(self.severity),
            "message": self.message,
        }
        for key in ("function", "block", "isa", "subject"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.address is not None:
            payload["address"] = self.address
        return payload

    def render(self) -> str:
        return (f"{self.rule_id} [{self.severity}] {self.location()}: "
                f"{self.message}")


@dataclass
class PassTiming:
    """Wall-clock and finding count of one executed pass."""

    name: str
    seconds: float
    findings: int


@dataclass
class VerificationReport:
    """Everything one verifier run produced."""

    findings: List[Finding] = field(default_factory=list)
    timings: List[PassTiming] = field(default_factory=list)
    #: free-form facts passes want to surface (e.g. gadget counts)
    facts: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity finding was produced."""
        return not self.errors

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def count_by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            key = str(finding.severity)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def count_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    def extend(self, other: "VerificationReport") -> None:
        self.findings.extend(other.findings)
        self.timings.extend(other.timings)
        self.facts.update(other.facts)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "counts": {
                "total": len(self.findings),
                "by_severity": self.count_by_severity(),
                "by_rule": self.count_by_rule(),
            },
            "findings": [finding.as_dict() for finding in self.findings],
            "passes": [{"name": t.name, "seconds": round(t.seconds, 6),
                        "findings": t.findings} for t in self.timings],
            "facts": self.facts,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.render())
        by_sev = self.count_by_severity()
        summary = ", ".join(f"{by_sev[key]} {key}"
                            for key in ("error", "warning", "info")
                            if key in by_sev) or "no findings"
        passes = " ".join(f"{t.name}={t.seconds * 1000:.1f}ms"
                          for t in self.timings)
        lines.append(f"verify: {summary}"
                     + (f"  ({passes})" if passes else ""))
        return "\n".join(lines)
