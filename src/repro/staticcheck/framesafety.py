"""Frame-safety abstract interpretation (the ``framesafety`` pass).

The migration-time stack walk, the PSR relocation builder, and the
Galileo gadget audit all silently assume three invariants about the
emitted code: every store lands inside the current frame's data region
or the shared data section, the stack pointer stays word-aligned and
balanced on every path (so block entries really are equivalence
points), and nothing but the call/return protocol ever touches the
return-address slot.  This pass *proves* those invariants per function
per ISA with a small abstract interpreter.

The domain is deliberately tiny:

* ``TOP`` — unknown;
* ``("const", lo, hi)`` — a value interval (data-section pointers,
  immediates);
* ``("sp", lo, hi)`` — a stack address, as a byte-offset interval
  relative to the *function entry* SP.

SP itself is tracked exactly (an integer delta from function entry, or
``None`` once paths disagree — which is itself the ``HIP502`` finding).
A block-level fixpoint with interval join and widening propagates
register and frame-slot facts across the CFG; a final linear sweep per
block performs the checks so each violation is reported once.

Stores whose target stays ``TOP`` (e.g. computed array indexing) are
*counted* as unproven in the pass facts — visible in the report and the
``verify.frame_stores`` counter — but deliberately not flagged: the
pass proves what it can and is honest about the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa import ISAS
from ..isa.base import Imm, Mem, Op, Reg
from ..machine.process import Layout
from .cfg import _decode_block
from .findings import Finding

TOP = ("top",)

#: joins per block before differing facts widen straight to TOP
WIDEN_AFTER = 8


def _const_val(value: int) -> Tuple:
    return ("const", value, value)


def _join_val(a: Tuple, b: Tuple) -> Tuple:
    if a == b:
        return a
    if a[0] != b[0] or a is TOP or b is TOP:
        return TOP
    return (a[0], min(a[1], b[1]), max(a[2], b[2]))


def _shift(value: Tuple, disp: int) -> Tuple:
    if value is TOP or value == TOP:
        return TOP
    return (value[0], value[1] + disp, value[2] + disp)


def _alu_val(op: Op, a: Tuple, b: Tuple) -> Tuple:
    """Abstract two-operand ALU; only pointer-relevant shapes are kept."""
    if op is Op.ADD and a != TOP:
        if b[0] == "const":
            return (a[0], a[1] + b[1], a[2] + b[2])
        if a[0] == "const" and b[0] == "sp":
            return ("sp", a[1] + b[1], a[2] + b[2])
        return TOP
    if op is Op.SUB and a != TOP and b[0] == "const":
        return (a[0], a[1] - b[2], a[2] - b[1])
    if a[0] == "const" and b[0] == "const" and a[1] == a[2] \
            and b[1] == b[2]:
        # exact constants: fold through the symbolic evaluator's
        # arithmetic so e.g. shifted data-section addresses stay exact
        from .symexec import _fold_alu
        folded = _fold_alu(op, ("const", a[1] & 0xFFFFFFFF),
                           ("const", b[1] & 0xFFFFFFFF))
        if folded[0] == "const":
            return _const_val(folded[1])
    return TOP


@dataclass
class AbsState:
    """Abstract machine state at one program point."""

    #: exact SP delta from function entry, or None on path disagreement
    delta: Optional[int] = 0
    regs: Dict[int, Tuple] = field(default_factory=dict)
    #: frame-data facts keyed by entry-SP-relative byte offset
    frame: Dict[int, Tuple] = field(default_factory=dict)

    def copy(self) -> "AbsState":
        return AbsState(delta=self.delta, regs=dict(self.regs),
                        frame=dict(self.frame))

    def join(self, other: "AbsState", widen: bool) -> bool:
        """Merge ``other`` in; returns True when anything changed."""
        changed = False
        if self.delta != other.delta:
            self.delta = None
            changed = True
        for env_mine, env_other in ((self.regs, other.regs),
                                    (self.frame, other.frame)):
            for key in list(env_mine):
                if key not in env_other:
                    del env_mine[key]
                    changed = True
                    continue
                joined = (TOP if widen and env_mine[key] != env_other[key]
                          else _join_val(env_mine[key], env_other[key]))
                if joined != env_mine[key]:
                    env_mine[key] = joined
                    changed = True
        return changed


class _FunctionFrame:
    """Geometry of one function's frame on one ISA."""

    def __init__(self, binary, info, isa_name: str):
        self.isa = ISAS[isa_name]
        self.info = info
        self.isa_name = isa_name
        per_isa = info.per_isa[isa_name]
        self.per_isa = per_isa
        section = binary.sections[isa_name]
        self.data = section.data
        self.base = section.base_address
        layout = info.layout
        saved = len(per_isa.saved_registers)
        # Block bounds exclude the prologue/epilogue pushes, so every
        # block starts at the post-prologue SP: deltas are relative to
        # that anchor, the frame-data region sits at [0, total_data),
        # and the return-address slot (CALL-pushed on x86like, the
        # prologue-pushed LR on armlike) sits just above the saves.
        self.anchor = 0
        self.frame_lo = 0
        self.frame_hi = layout.total_data_size
        self.ra_lo = layout.return_address_offset(layout.words_above(saved))
        self.ra_hi = self.ra_lo + 4
        #: SP offset at the RET instruction, after the epilogue pops
        self.ret_delta = layout.total_data_size + 4 * saved
        self.data_lo = Layout.DATA_BASE
        self.data_hi = Layout.DATA_BASE + len(binary.data)


def _classify_store(frame: _FunctionFrame, state: AbsState, mem: Mem,
                    width: int) -> Tuple[str, Optional[int]]:
    """Where does this store land?  Returns (verdict, exact offset).

    Verdicts: "ok" (proved in-frame or in-data), "oob" (provably
    outside both), "ra" (overlaps the return-address slot), "unproven".
    """
    if mem.base == frame.isa.sp:
        if state.delta is None:
            return "unproven", None
        target = _shift(("sp", state.delta, state.delta), mem.disp)
    else:
        target = _shift(state.regs.get(mem.base, TOP), mem.disp)
    if target == TOP:
        return "unproven", None
    lo, hi = target[1], target[2] + width
    exact = target[1] if target[1] == target[2] else None
    if target[0] == "sp":
        if lo < frame.ra_hi and hi > frame.ra_lo:
            return "ra", exact
        if frame.frame_lo <= lo and hi <= frame.frame_hi:
            return "ok", exact
        if hi <= frame.frame_lo or lo >= frame.frame_hi:
            # fully outside the frame data; the region below the
            # current SP is legitimate only for PUSH, not stores
            return "oob", exact
        return "unproven", exact
    if frame.data_lo <= lo and hi <= frame.data_hi:
        return "ok", exact
    if hi <= frame.data_lo or lo >= frame.data_hi:
        return "oob", exact
    return "unproven", exact


def _transfer_block(frame: _FunctionFrame, state: AbsState,
                    instructions, check=None) -> AbsState:
    """Run one block's instructions over the abstract state.

    ``check`` (the final sweep's callback) receives
    ``(decoded, state_before_instruction)`` for the store/SP checks;
    the fixpoint phase passes None and just computes the out-state.
    """
    isa = frame.isa
    for decoded in instructions:
        if check is not None:
            check(decoded, state)
        ins = decoded.instruction
        op = ins.op
        if op is Op.PUSH:
            if state.delta is not None:
                state.delta -= 4
        elif op is Op.POP:
            if state.delta is not None:
                state.delta += 4
            if isinstance(ins.dst, Reg):
                if ins.dst.index == isa.sp:
                    state.delta = None
                else:
                    state.regs[ins.dst.index] = TOP
        elif op in (Op.ADD, Op.SUB) and isinstance(ins.dst, Reg) \
                and ins.dst.index == isa.sp:
            if isinstance(ins.src, Imm) and state.delta is not None:
                sign = 1 if op is Op.ADD else -1
                state.delta += sign * ins.src.signed
            else:
                state.delta = None
        elif op is Op.MOV and isinstance(ins.dst, Reg):
            if ins.dst.index == isa.sp:
                state.delta = None
            else:
                state.regs[ins.dst.index] = _operand_val(frame, state,
                                                         ins.src)
        elif op is Op.MOVT and isinstance(ins.dst, Reg):
            current = state.regs.get(ins.dst.index, TOP)
            if current[0] == "const" and current[1] == current[2]:
                value = ((current[1] & 0xFFFF)
                         | ((ins.src.value & 0xFFFF) << 16))
                state.regs[ins.dst.index] = _const_val(value)
            else:
                state.regs[ins.dst.index] = TOP
        elif op is Op.LEA:
            mem = ins.src
            if mem.base == isa.sp and state.delta is not None:
                value = ("sp", state.delta + mem.disp,
                         state.delta + mem.disp)
            else:
                value = _shift(state.regs.get(mem.base, TOP)
                               if mem.base != isa.sp else TOP, mem.disp)
            state.regs[ins.dst.index] = value
        elif op in (Op.LOAD, Op.LOADB):
            state.regs[ins.dst.index] = _load_val(frame, state, ins.src,
                                                  op is Op.LOADB)
        elif op in (Op.STORE, Op.STOREB):
            _record_frame_store(frame, state, ins.dst,
                                _operand_val(frame, state, ins.src))
        elif op in (Op.CALL, Op.ICALL):
            for reg in isa.symbolic_clobbers():
                state.regs[reg] = TOP
        elif op is Op.SYSCALL:
            state.regs[isa.return_reg] = TOP
        elif op in (Op.NEG, Op.NOT):
            if isinstance(ins.dst, Reg):
                state.regs[ins.dst.index] = TOP
        elif op in (Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
                    Op.SHL, Op.SHR, Op.SAR, Op.ADD, Op.SUB):
            if isinstance(ins.dst, Reg) and ins.dst.index != isa.sp:
                state.regs[ins.dst.index] = _alu_val(
                    op, state.regs.get(ins.dst.index, TOP),
                    _operand_val(frame, state, ins.src))
        # CMP/JMP/JCC/RET/IJMP/NOP/HLT: no abstract-state effect
    return state


def _operand_val(frame: _FunctionFrame, state: AbsState, operand) -> Tuple:
    if isinstance(operand, Imm):
        return _const_val(operand.signed)
    if isinstance(operand, Reg):
        if operand.index == frame.isa.sp:
            if state.delta is None:
                return TOP
            return ("sp", state.delta, state.delta)
        return state.regs.get(operand.index, TOP)
    if isinstance(operand, Mem):
        return _load_val(frame, state, operand, byte=False)
    return TOP


def _frame_offset(frame: _FunctionFrame, state: AbsState,
                  mem: Mem) -> Optional[int]:
    """Exact entry-SP-relative offset of a memory operand, if known."""
    if mem.base == frame.isa.sp:
        if state.delta is None:
            return None
        return state.delta + mem.disp
    pointer = state.regs.get(mem.base, TOP)
    if pointer[0] == "sp" and pointer[1] == pointer[2]:
        return pointer[1] + mem.disp
    return None


def _load_val(frame: _FunctionFrame, state: AbsState, mem: Mem,
              byte: bool) -> Tuple:
    if byte:
        return ("const", 0, 0xFF)
    offset = _frame_offset(frame, state, mem)
    if offset is not None:
        return state.frame.get(offset, TOP)
    return TOP


def _record_frame_store(frame: _FunctionFrame, state: AbsState,
                        mem: Mem, value: Tuple) -> None:
    offset = _frame_offset(frame, state, mem)
    if offset is not None and offset % 4 == 0:
        state.frame[offset] = value


def check_frame_safety(binary, findings: List[Finding]) -> Dict[str, int]:
    """Prove store bounds, SP balance/alignment, and RA integrity."""
    stats = {"functions": 0, "stores_proved": 0, "stores_unproven": 0}
    for isa_name in binary.isa_names:
        for info in binary.symtab:
            if isa_name not in info.per_isa:
                continue
            _check_function(binary, info, isa_name, findings, stats)
    return stats


def _decode_function(frame: _FunctionFrame) -> Optional[Dict[str, list]]:
    decoded: Dict[str, list] = {}
    for label, start, end in frame.per_isa.block_bounds():
        instructions, clean = _decode_block(frame.isa, frame.data,
                                            frame.base, start, end)
        if not clean:
            return None           # HIP101 (cfg pass) already fires
        decoded[label] = instructions
    return decoded


def _check_function(binary, info, isa_name: str, findings: List[Finding],
                    stats: Dict[str, int]) -> None:
    frame = _FunctionFrame(binary, info, isa_name)
    blocks = _decode_function(frame)
    if blocks is None:
        return
    stats["functions"] += 1
    fn = binary.program.functions.get(info.name)
    successors = {}
    order = [label for label, _, _ in frame.per_isa.block_bounds()]
    for label in order:
        if fn is not None and label in {blk.label for blk in fn.blocks}:
            successors[label] = list(fn.block(label).successors())
        else:
            successors[label] = []

    entry = order[0] if order else None
    states: Dict[str, AbsState] = {entry: AbsState()}
    join_counts: Dict[str, int] = {}
    worklist = [entry] if entry is not None else []
    while worklist:
        label = worklist.pop(0)
        out = _transfer_block(frame, states[label].copy(), blocks[label])
        for successor in successors[label]:
            if successor not in blocks:
                continue
            if successor not in states:
                states[successor] = out.copy()
                worklist.append(successor)
                continue
            joins = join_counts.get(successor, 0) + 1
            join_counts[successor] = joins
            if states[successor].join(out, widen=joins > WIDEN_AFTER) \
                    and successor not in worklist:
                worklist.append(successor)

    reported: set = set()

    def finding(rule: str, message: str, label: str, address: int,
                subject: Optional[str] = None) -> None:
        key = (rule, label, address)
        if key in reported:
            return
        reported.add(key)
        findings.append(Finding(rule, message, function=info.name,
                                block=label, isa=isa_name,
                                address=address, subject=subject))

    for label in order:
        if label not in states:
            continue              # unreachable: HIP303 territory
        state = states[label].copy()
        if state.delta is None:
            finding("HIP502",
                    "predecessors reach this equivalence point with "
                    "different stack-pointer offsets", label,
                    frame.per_isa.block_addresses[label])
            continue

        def check(decoded, current, label=label):
            _check_instruction(frame, decoded, current, label, finding,
                               stats)

        end_state = _transfer_block(frame, state, blocks[label], check)
        last = blocks[label][-1].instruction if blocks[label] else None
        exits_function = last is not None and last.op in (
            Op.RET, Op.HLT, Op.IJMP)
        if (not exits_function and successors[label]
                and end_state.delta is not None
                and end_state.delta != frame.anchor):
            finding("HIP502",
                    f"stack pointer leaves the block at "
                    f"entry{end_state.delta:+d} instead of the frame "
                    f"anchor ({frame.anchor:+d}): pushes and frame "
                    f"adjusts do not balance", label,
                    blocks[label][-1].address if blocks[label]
                    else frame.per_isa.block_addresses[label])


def _check_instruction(frame: _FunctionFrame, decoded, state: AbsState,
                       label: str, finding, stats: Dict[str, int]) -> None:
    ins = decoded.instruction
    op = ins.op
    if state.delta is not None and state.delta % 4 != 0:
        finding("HIP503",
                f"stack pointer is misaligned (entry{state.delta:+d}) "
                f"at {decoded.address:#x}", label, decoded.address)
    if op is Op.RET:
        if state.delta is not None and state.delta != frame.ret_delta:
            finding("HIP502",
                    f"return executes at entry{state.delta:+d} but the "
                    f"epilogue should leave SP at "
                    f"entry{frame.ret_delta:+d}: some path is "
                    f"unbalanced", label, decoded.address)
        return
    if op not in (Op.STORE, Op.STOREB):
        return
    width = 4 if op is Op.STORE else 1
    verdict, exact = _classify_store(frame, state, ins.dst, width)
    if verdict == "ok":
        stats["stores_proved"] += 1
        return
    if verdict == "unproven":
        stats["stores_unproven"] += 1
        return
    subject = None
    if exact is not None:
        entry = frame.info.layout.slot_at(exact - frame.anchor)
        if entry is not None:
            subject = entry.name
    if verdict == "ra":
        finding("HIP504",
                f"store at {decoded.address:#x} overwrites the "
                f"return-address slot "
                f"(entry{frame.ra_lo:+d}..{frame.ra_hi:+d})",
                label, decoded.address, subject)
        return
    where = (f"entry{exact:+d}" if exact is not None
             else "a provably out-of-range address")
    finding("HIP501",
            f"store at {decoded.address:#x} lands at {where}, outside "
            f"the frame data region "
            f"(entry{frame.frame_lo:+d}..{frame.frame_hi:+d}) and the "
            f"data section", label, decoded.address, subject)
