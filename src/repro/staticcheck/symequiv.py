"""Cross-ISA semantic equivalence proof (the ``symequiv`` pass).

Every basic-block entry is an equivalence point: HIPStR may migrate a
thread there, so the two ISA views of the block must compute the same
thing.  PR 3's consistency pass only checks that *metadata* agrees
(stack maps, call sites, live sets); this pass checks the *code*.  For
each block it symbolically executes both ISA views
(:mod:`repro.staticcheck.symexec`), matches up the resulting paths by
their canonical path conditions, and then requires, per matched path:

* the same exit kind and successor, and the same SP balance relative to
  the frame anchor (``HIP403`` on divergence);
* the same ordered log of externally visible effects — calls with
  argument terms, syscalls, stores outside the frame (``HIP402``);
* for every value live out of the block, the same symbolic term once
  each side's location (register assignment or shared frame slot) is
  read through its own stack map (``HIP401``) — this is what catches a
  single mutated instruction in one ISA's text section;
* the same symbolic return value at ``ret`` exits (``HIP401``).

Blocks the evaluator cannot fully model (path explosion, unmodelled
constructs) degrade to a ``HIP404`` warning: equivalence there is
*unproven*, not disproven.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .findings import Finding
from .symexec import BlockSummary, ExitRecord, canonicalize, execute_block


def _live_out_terms(record: ExitRecord, info, isa_name: str, label: str,
                    func_entries) -> Dict[str, object]:
    assignment = info.per_isa[isa_name].register_assignment
    layout = info.layout
    projected: Dict[str, object] = {}
    for value in sorted(info.live_out(label)):
        if value in assignment:
            term = record.state.regs.get(
                assignment[value], ("regin", isa_name, assignment[value]))
        elif layout.has_slot(value):
            offset = layout.slot_of(value)
            term = record.state.stack.get(offset, ("stackinit", offset))
        else:
            continue        # unlocatable: HIP205 (consistency) territory
        projected[value] = canonicalize(term, func_entries)
    return projected


def _slot_provenance(layout, term) -> Optional[str]:
    """Name the frame slot a stackinit-rooted term refers to, if any."""
    if isinstance(term, tuple) and term[0] in ("stackinit", "spaddr"):
        entry = layout.slot_at(term[1])
        if entry is not None:
            return entry.name
    return None


def _func_entry_maps(binary) -> Dict[str, Dict[int, str]]:
    maps: Dict[str, Dict[int, str]] = {name: {}
                                       for name in binary.isa_names}
    for info in binary.symtab:
        for isa_name, per_isa in info.per_isa.items():
            if isa_name in maps:
                maps[isa_name][per_isa.entry] = info.name
    return maps


def _compare_block(info, label: str, left: BlockSummary,
                   right: BlockSummary, func_maps,
                   findings: List[Finding]) -> bool:
    """Compare two ISA views of one block; returns True when proven."""
    name = info.name
    isa_a, isa_b = left.isa_name, right.isa_name

    def finding(rule: str, message: str, isa: Optional[str] = None,
                subject: Optional[str] = None) -> None:
        findings.append(Finding(rule, message, function=name, block=label,
                                isa=isa, subject=subject))

    for summary in (left, right):
        if summary.unsupported:
            finding("HIP404",
                    f"symbolic execution incomplete: "
                    f"{summary.unsupported}; equivalence unproven",
                    isa=summary.isa_name)
    if left.unsupported or right.unsupported:
        return False

    by_key_a = {record.cond_key: record for record in left.records}
    by_key_b = {record.cond_key: record for record in right.records}
    if set(by_key_a) != set(by_key_b):
        only_a = len(set(by_key_a) - set(by_key_b))
        only_b = len(set(by_key_b) - set(by_key_a))
        finding("HIP403",
                f"path structure diverges between {isa_a} and {isa_b}: "
                f"{only_a} path(s) unique to {isa_a}, {only_b} unique "
                f"to {isa_b}")
        return False

    clean = True
    for key in sorted(by_key_a, key=repr):
        rec_a, rec_b = by_key_a[key], by_key_b[key]
        where = (f"on path [{_describe_path(key)}]" if key
                 else "on the straight-line path")
        if (rec_a.kind, rec_a.successor) != (rec_b.kind, rec_b.successor):
            finding("HIP403",
                    f"exit diverges {where}: {isa_a} leaves via "
                    f"{rec_a.kind}->{rec_a.successor}, {isa_b} via "
                    f"{rec_b.kind}->{rec_b.successor}")
            clean = False
            continue
        if rec_a.kind != "ret" and rec_a.sp_rel != rec_b.sp_rel:
            finding("HIP401",
                    f"stack-pointer balance diverges {where}: "
                    f"{isa_a} exits at anchor{rec_a.sp_rel:+d}, "
                    f"{isa_b} at anchor{rec_b.sp_rel:+d}",
                    subject="sp")
            clean = False
        events_a = [canonicalize(e, func_maps[isa_a])
                    for e in rec_a.state.events]
        events_b = [canonicalize(e, func_maps[isa_b])
                    for e in rec_b.state.events]
        if events_a != events_b:
            index = next((i for i, (ea, eb)
                          in enumerate(zip(events_a, events_b))
                          if ea != eb), min(len(events_a), len(events_b)))
            finding("HIP402",
                    f"memory/call effects diverge {where} at event "
                    f"#{index}: {isa_a} performs "
                    f"{_head(events_a, index)}, {isa_b} performs "
                    f"{_head(events_b, index)}")
            clean = False
        if rec_a.kind == "ret":
            ret_a = canonicalize(rec_a.ret_term, func_maps[isa_a])
            ret_b = canonicalize(rec_b.ret_term, func_maps[isa_b])
            if ret_a != ret_b:
                finding("HIP401",
                        f"return value diverges {where}: {isa_a} "
                        f"returns {ret_a!r}, {isa_b} returns {ret_b!r}",
                        subject="<return>")
                clean = False
        if rec_a.kind == "ijmp":
            tgt_a = canonicalize(rec_a.target_term, func_maps[isa_a])
            tgt_b = canonicalize(rec_b.target_term, func_maps[isa_b])
            if tgt_a != tgt_b:
                finding("HIP403",
                        f"indirect-jump target diverges {where}: "
                        f"{tgt_a!r} vs {tgt_b!r}")
                clean = False
        live_a = _live_out_terms(rec_a, info, isa_a, label,
                                 func_maps[isa_a])
        live_b = _live_out_terms(rec_b, info, isa_b, label,
                                 func_maps[isa_b])
        for value in sorted(set(live_a) | set(live_b)):
            term_a, term_b = live_a.get(value), live_b.get(value)
            if term_a != term_b:
                finding("HIP401",
                        f"live-out value {value!r} diverges {where}: "
                        f"{isa_a} holds {term_a!r}, {isa_b} holds "
                        f"{term_b!r}", subject=value)
                clean = False
    return clean


def _describe_path(key) -> str:
    return " & ".join(cond.lower() for cond, _ in key)


def _head(events, index: int) -> str:
    if index < len(events):
        return repr(events[index])
    return "no event (log exhausted)"


def check_symbolic_equivalence(binary, findings: List[Finding]
                               ) -> Dict[str, int]:
    """Prove per-block cross-ISA equivalence; returns summary facts."""
    isa_names = binary.isa_names
    stats = {"blocks": 0, "proven": 0, "paths": 0, "unsupported": 0}
    if len(isa_names) < 2:
        return stats
    func_maps = _func_entry_maps(binary)
    isa_a, isa_b = isa_names[0], isa_names[1]
    for info in binary.symtab:
        if isa_a not in info.per_isa or isa_b not in info.per_isa:
            continue        # missing view: HIP204 (cfg pass) territory
        for label, _, _ in info.per_isa[isa_a].block_bounds():
            if label not in {lbl for lbl, _, _
                             in info.per_isa[isa_b].block_bounds()}:
                continue    # missing block: HIP102 territory
            left = execute_block(binary, info, isa_a, label)
            right = execute_block(binary, info, isa_b, label)
            stats["blocks"] += 1
            stats["paths"] += max(len(left.records), len(right.records))
            if left.unsupported or right.unsupported:
                stats["unsupported"] += 1
            before = len(findings)
            if _compare_block(info, label, left, right, func_maps,
                              findings) and len(findings) == before:
                stats["proven"] += 1
    return stats
