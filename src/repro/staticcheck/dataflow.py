"""IR-level dataflow lints: the compiler-front-door checks.

These run over the IR the fat binary was compiled from, catching the
classes of bugs that corrupt the *metadata* the runtime navigates by:
values read before any assignment (their home slots would hold garbage
at an equivalence point), dead stores, unreachable blocks (which still
get native code and stack-map entries), and call-arity divergence from
the symbol table's parameter lists.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..compiler import ir
from ..compiler.liveness import live_after_each_instruction
from .findings import Finding

#: IR instructions with no side effect beyond their def
_PURE = (ir.Const, ir.Move, ir.BinOp, ir.UnOp, ir.Compare,
         ir.Load, ir.LoadByte, ir.AddrOfLocal, ir.AddrOfGlobal,
         ir.AddrOfFunction)


def reachable_blocks(fn: ir.IRFunction) -> Set[str]:
    """Labels reachable from the entry block."""
    seen: Set[str] = set()
    stack = [fn.blocks[0].label] if fn.blocks else []
    labels = {blk.label: blk for blk in fn.blocks}
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        for successor in labels[label].successors():
            if successor not in seen:
                stack.append(successor)
    return seen


def check_unreachable(fn: ir.IRFunction, findings: List[Finding]) -> None:
    reachable = reachable_blocks(fn)
    for blk in fn.blocks:
        if blk.label not in reachable:
            findings.append(Finding(
                "HIP303", "block is unreachable from the function entry",
                function=fn.name, block=blk.label))


def check_use_before_def(fn: ir.IRFunction,
                         findings: List[Finding]) -> None:
    """Forward must-analysis: definitely-assigned values per block.

    The meet over predecessors is intersection; non-entry blocks start
    optimistically at "everything assigned" and the fixpoint shrinks
    them.  A use outside the definitely-assigned set means some path
    reaches it with the value never written.
    """
    if not fn.blocks:
        return
    reachable = reachable_blocks(fn)
    blocks = [blk for blk in fn.blocks if blk.label in reachable]
    predecessors: Dict[str, List[str]] = {blk.label: [] for blk in blocks}
    for blk in blocks:
        for successor in blk.successors():
            if successor in predecessors:
                predecessors[successor].append(blk.label)

    everything = set(fn.all_values())
    entry_label = fn.blocks[0].label
    assigned_in: Dict[str, Set[str]] = {
        blk.label: set(everything) for blk in blocks}
    assigned_in[entry_label] = set(fn.params)
    assigned_out: Dict[str, Set[str]] = {}
    for blk in blocks:
        defs = {name for instruction in blk.instructions
                for name in instruction.defs()}
        assigned_out[blk.label] = assigned_in[blk.label] | defs

    changed = True
    while changed:
        changed = False
        for blk in blocks:
            if blk.label == entry_label:
                new_in = set(fn.params)
            else:
                preds = predecessors[blk.label]
                new_in = set(everything)
                for pred in preds:
                    new_in &= assigned_out[pred]
                if not preds:
                    new_in = set(fn.params)
            if new_in != assigned_in[blk.label]:
                assigned_in[blk.label] = new_in
                changed = True
            defs = {name for instruction in blk.instructions
                    for name in instruction.defs()}
            new_out = new_in | defs
            if new_out != assigned_out[blk.label]:
                assigned_out[blk.label] = new_out
                changed = True

    for blk in blocks:
        assigned = set(assigned_in[blk.label])
        for instruction in blk.instructions:
            for name in instruction.uses():
                if name not in assigned:
                    findings.append(Finding(
                        "HIP301",
                        "value may be read before any assignment",
                        function=fn.name, block=blk.label, subject=name))
                    assigned.add(name)      # report each value once
            assigned.update(instruction.defs())


def check_dead_stores(fn: ir.IRFunction, liveness,
                      findings: List[Finding]) -> None:
    """A pure instruction whose def is not live afterwards is dead."""
    for blk in fn.blocks:
        block_liveness = liveness.get(blk.label)
        if block_liveness is None:
            continue
        live_after = live_after_each_instruction(
            blk, block_liveness.live_out)
        for index, instruction in enumerate(blk.instructions):
            if not isinstance(instruction, _PURE):
                continue
            for name in instruction.defs():
                if name not in live_after[index]:
                    findings.append(Finding(
                        "HIP302",
                        f"dead store: {instruction!r} defines a value "
                        f"that is never used",
                        function=fn.name, block=blk.label, subject=name))


def check_call_arity(binary, fn: ir.IRFunction,
                     findings: List[Finding]) -> None:
    """Direct calls must pass exactly the callee's declared parameters."""
    for blk in fn.blocks:
        for instruction in blk.instructions:
            if not isinstance(instruction, ir.Call):
                continue
            callee = (binary.symtab.functions.get(instruction.function)
                      if instruction.function in binary.symtab
                      else None)
            if callee is None:
                findings.append(Finding(
                    "HIP304",
                    f"call to {instruction.function!r}, which the symbol "
                    f"table does not record",
                    function=fn.name, block=blk.label,
                    subject=instruction.function))
                continue
            if len(instruction.args) != len(callee.params):
                findings.append(Finding(
                    "HIP304",
                    f"call passes {len(instruction.args)} arguments but "
                    f"{instruction.function!r} declares "
                    f"{len(callee.params)} parameters",
                    function=fn.name, block=blk.label,
                    subject=instruction.function))


def check_dataflow(binary, findings: List[Finding]) -> None:
    """Run every IR lint over every function of the binary's program."""
    for fn in binary.program.functions.values():
        info = binary.symtab.functions.get(fn.name)
        liveness = info.liveness if info is not None else {}
        check_unreachable(fn, findings)
        check_use_before_def(fn, findings)
        check_dead_stores(fn, liveness, findings)
        check_call_arity(binary, fn, findings)
