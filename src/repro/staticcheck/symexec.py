"""Symbolic execution of one basic block on one ISA.

The semantic-equivalence prover (:mod:`repro.staticcheck.symequiv`)
needs, for every basic block of every function, a *normalized symbolic
store*: what each register and frame slot holds at every block exit, as
a term over the block's entry state.  This module provides exactly that
— a small symbolic evaluator over the decoded instruction stream, with
per-opcode transfer functions that mirror
:mod:`repro.machine.interpreter` bit-for-bit on constants.

Design notes, shared with the frame-safety pass:

* **Terms are nested tuples** — ``("const", v)``, ``("val", name)`` (an
  IR value's content at block entry), ``("stackinit", off)`` (initial
  content of a frame byte offset), ``("add", a, b)``, ... — compared
  structurally.  Constant subterms fold eagerly using the interpreter's
  exact arithmetic (signed MUL/DIV/MOD with C truncation, shift counts
  masked to 5 bits, results truncated to 32 bits), so an x86like
  ``MOV reg, imm32`` and an armlike ``MOV/MOVT`` pair normalize to the
  same ``("const", v)``.

* **The stack is delta-addressed.**  SP is tracked as an exact integer
  delta from block entry; every sp-relative access is keyed by its
  offset from the function's *frame anchor* (the post-prologue SP),
  which is where the shared :class:`~repro.compiler.frames.FrameLayout`
  offsets live and therefore the coordinate system both ISAs agree on.
  For the entry block the anchor sits ``4*pushes + frame data`` below
  the entry SP; everywhere else it *is* the entry SP.

* **Everything else is an event.**  Stores outside the frame, calls,
  and syscalls append to an ordered event log (and bump a memory
  generation counter that taints later loads); the equivalence pass
  compares the two ISAs' logs rather than modelling global memory.

* **Compare diamonds fork.**  Intra-block conditional branches with a
  non-constant compare result split the state into two paths, each
  tagged with the canonical condition that holds on it; paths are the
  unit the equivalence pass matches across ISAs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..isa import ISAS
from ..isa.base import (
    Decoded,
    Imm,
    Instruction,
    Mem,
    Op,
    Reg,
    to_signed,
    to_unsigned,
)
from ..machine.syscalls import Sys
from .cfg import _decode_block

Term = Tuple[Any, ...]

#: fork limit per block: beyond this the block is reported unsupported
MAX_PATHS = 64
#: instruction-execution limit per path (guards intra-block loops)
MAX_STEPS = 20_000

#: how many argument registers each modelled syscall actually consumes
#: (mirrors :meth:`repro.machine.syscalls.OperatingSystem.dispatch`);
#: unused argument registers hold ISA-specific garbage and must not be
#: part of the cross-ISA contract
SYSCALL_ARITY = {
    int(Sys.EXIT): 1,
    int(Sys.READ): 3,
    int(Sys.WRITE): 3,
    int(Sys.EXECVE): 1,
    int(Sys.BRK): 1,
    int(Sys.GETPID): 0,
}


def _const(value: int) -> Term:
    return ("const", to_unsigned(value))


def _is_const(term: Term) -> bool:
    return term[0] == "const"


def _fold_alu(op: Op, a: Term, b: Term) -> Term:
    """dst = dst OP src with the interpreter's exact 32-bit arithmetic."""
    if _is_const(a) and _is_const(b):
        va, vb = a[1], b[1]
        sa, sb = to_signed(va), to_signed(vb)
        amount = vb & 31
        if op is Op.ADD:
            return _const(va + vb)
        if op is Op.SUB:
            return _const(va - vb)
        if op is Op.MUL:
            return _const(sa * sb)
        if op is Op.DIV and sb != 0:
            return _const(int(sa / sb))
        if op is Op.MOD and sb != 0:
            return _const(sa - int(sa / sb) * sb)
        if op is Op.AND:
            return _const(va & vb)
        if op is Op.OR:
            return _const(va | vb)
        if op is Op.XOR:
            return _const(va ^ vb)
        if op is Op.SHL:
            return _const(va << amount)
        if op is Op.SHR:
            return _const(va >> amount)
        if op is Op.SAR:
            return _const(sa >> amount)
    if op is Op.ADD and _is_const(b) and b[1] == 0:
        return a
    if op is Op.SUB and _is_const(b) and b[1] == 0:
        return a
    return (op.value, a, b)


def _fold_unary(op: Op, a: Term) -> Term:
    if _is_const(a):
        if op is Op.NEG:
            return _const(-to_signed(a[1]))
        if op is Op.NOT:
            return _const(~a[1])
    return (op.value, a)


def _fold_movt(low: Term, imm: int) -> Term:
    if _is_const(low):
        return _const((low[1] & 0xFFFF) | ((imm & 0xFFFF) << 16))
    return ("movt", low, imm & 0xFFFF)


def _fold_getbyte(word: Term, lane: int) -> Term:
    if _is_const(word):
        return _const((word[1] >> (8 * lane)) & 0xFF)
    return ("getbyte", word, lane)


def _fold_setbyte(word: Term, lane: int, byte: Term) -> Term:
    if _is_const(word) and _is_const(byte):
        mask = 0xFF << (8 * lane)
        return _const((word[1] & ~mask) | ((byte[1] & 0xFF) << (8 * lane)))
    return ("setbyte", word, lane, byte)


class Unsupported(Exception):
    """The block uses a construct the evaluator does not model."""


@dataclass
class SymState:
    """One symbolic path through a block: registers, stack, events."""

    regs: Dict[int, Term] = field(default_factory=dict)
    #: exact SP offset from block entry, in bytes
    sp_delta: int = 0
    #: frame-anchored stack memory: byte offset -> word term
    stack: Dict[int, Term] = field(default_factory=dict)
    #: last CMP result: None, an exact signed int, or an ("sdiff",..) term
    diff: Any = None
    #: ordered externally visible effects (stores, calls, syscalls)
    events: List[Term] = field(default_factory=list)
    #: memory generation — bumped whenever unknown memory may change
    generation: int = 0
    #: canonical path conditions that hold on this path
    conds: List[Tuple[str, Term]] = field(default_factory=list)
    #: fresh-name counters (call/syscall indices), synced across forks
    counters: Dict[str, int] = field(default_factory=dict)

    def fork(self) -> "SymState":
        return SymState(regs=dict(self.regs), sp_delta=self.sp_delta,
                        stack=dict(self.stack), diff=self.diff,
                        events=list(self.events),
                        generation=self.generation,
                        conds=list(self.conds),
                        counters=dict(self.counters))

    def fresh(self, kind: str) -> int:
        index = self.counters.get(kind, 0)
        self.counters[kind] = index + 1
        return index


@dataclass
class ExitRecord:
    """How one symbolic path left the block, and with what state."""

    kind: str                      # "fall"|"jmp"|"ret"|"halt"|"ijmp"
    successor: Optional[str]       # block label, when statically known
    state: SymState
    #: SP offset from the frame anchor at exit (compared for non-ret exits)
    sp_rel: int = 0
    ret_term: Optional[Term] = None
    target_term: Optional[Term] = None

    @property
    def cond_key(self) -> Tuple[Tuple[str, Term], ...]:
        return tuple(self.state.conds)


@dataclass
class BlockSummary:
    """All symbolic paths through one block on one ISA."""

    function: str
    label: str
    isa_name: str
    records: List[ExitRecord] = field(default_factory=list)
    unsupported: Optional[str] = None


class _BlockContext:
    """Everything the evaluator needs to know about one block's frame."""

    def __init__(self, binary, info, isa_name: str, label: str):
        self.isa = ISAS[isa_name]
        self.info = info
        self.label = label
        per_isa = info.per_isa[isa_name]
        self.per_isa = per_isa
        bounds = per_isa.block_bounds()
        order = [name for name, _, _ in bounds]
        index = order.index(label)
        _, self.start, self.end = bounds[index]
        self.next_label = order[index + 1] if index + 1 < len(order) else None
        self.label_of = {start: name for name, start, _ in bounds}
        section = binary.sections[isa_name]
        self.data = section.data
        self.base = section.base_address
        # Block bounds exclude the prologue, so every block — the entry
        # block included — begins at the post-prologue SP: the frame
        # anchor *is* the block-entry SP, and the shared FrameLayout
        # offsets apply to it directly on both ISAs.
        self.frame_base = 0
        #: function entry address -> name, for pointer canonicalization
        self.func_entries = {}
        for other in binary.symtab:
            other_isa = other.per_isa.get(isa_name)
            if other_isa is not None:
                self.func_entries[other_isa.entry] = other.name

    def seed(self) -> SymState:
        """Initial symbolic state at the block's entry.

        Every live-in value sits in its recorded location (the prologue
        has already copied incoming arguments there); its content is
        the opaque, ISA-independent term ``("val", name)``."""
        state = SymState()
        layout = self.info.layout
        assignment = self.per_isa.register_assignment
        for value in sorted(self.info.live_in(self.label)):
            if value in assignment:
                state.regs[assignment[value]] = ("val", value)
            elif layout.has_slot(value):
                state.stack[layout.slot_of(value)] = ("val", value)
        return state


def _reg_term(ctx: _BlockContext, state: SymState, index: int) -> Term:
    if index == ctx.isa.sp:
        return ("spaddr", state.sp_delta - ctx.frame_base)
    return state.regs.get(index, ("regin", ctx.isa.name, index))


def _mem_slot(ctx: _BlockContext, state: SymState, mem: Mem):
    """Resolve a memory operand: frame-anchored offset or address term."""
    if mem.base == ctx.isa.sp:
        return ("stack", state.sp_delta + mem.disp - ctx.frame_base)
    base = _reg_term(ctx, state, mem.base)
    if base[0] == "spaddr":
        return ("stack", base[1] + mem.disp)
    if _is_const(base):
        return ("addr", _const(base[1] + mem.disp))
    return ("addr", _fold_alu(Op.ADD, base, _const(mem.disp)))


def _load(ctx, state: SymState, mem: Mem, width: int = 4) -> Term:
    where, at = _mem_slot(ctx, state, mem)
    if where == "stack":
        word = at & ~3
        init = state.stack.get(word, ("stackinit", word))
        if width == 1:
            return _fold_getbyte(init, at & 3)
        if at & 3:
            return ("unaligned", at, state.generation)
        return init
    op = "load" if width == 4 else "loadb"
    return (op, at, state.generation)


def _store(ctx, state: SymState, mem: Mem, value: Term,
           width: int = 4) -> None:
    where, at = _mem_slot(ctx, state, mem)
    if where == "stack":
        word = at & ~3
        if width == 1:
            init = state.stack.get(word, ("stackinit", word))
            state.stack[word] = _fold_setbyte(init, at & 3, value)
            return
        if at & 3:
            state.events.append(("store-unaligned", at, value))
            state.generation += 1
            return
        state.stack[at] = value
        return
    kind = "store" if width == 4 else "storeb"
    state.events.append((kind, at, value))
    state.generation += 1


def _value_term(ctx, state: SymState, operand) -> Term:
    if isinstance(operand, Reg):
        return _reg_term(ctx, state, operand.index)
    if isinstance(operand, Imm):
        return _const(operand.value)
    if isinstance(operand, Mem):
        return _load(ctx, state, operand)
    raise Unsupported(f"unresolved operand {operand!r}")


def _set_reg(ctx, state: SymState, index: int, term: Term) -> None:
    if index == ctx.isa.sp:
        if not _is_const(term):
            raise Unsupported("symbolic write to the stack pointer")
        raise Unsupported("absolute write to the stack pointer")
    state.regs[index] = term


def _call_args(ctx, state: SymState, count: int) -> Tuple[Term, ...]:
    """The terms pushed for an outgoing call's arguments, in order."""
    bottom = state.sp_delta - ctx.frame_base
    return tuple(state.stack.get(bottom + 4 * index,
                                 ("stackinit", bottom + 4 * index))
                 for index in range(count))


def _do_call(ctx, state: SymState, callee) -> None:
    index = state.fresh("call")
    count = 0
    if isinstance(callee, str):
        fn = ctx.info  # self-recursion keeps the same info object
        if callee != ctx.info.name:
            fn = ctx.symtab_function(callee)
        if fn is not None:
            count = len(fn.params)
        state.events.append(("call", callee, _call_args(ctx, state, count)))
    else:
        state.events.append(("icall", callee, index))
    for reg in ctx.isa.symbolic_clobbers():
        state.regs[reg] = ("clobber", ctx.isa.name, index, reg)
    state.regs[ctx.isa.return_reg] = ("callret", callee, index)
    state.generation += 1


def _do_syscall(ctx, state: SymState) -> Optional[str]:
    """Record a syscall event; returns "halt" for a constant EXIT."""
    index = state.fresh("syscall")
    number = _reg_term(ctx, state, ctx.isa.syscall_number_reg)
    arg_regs = list(ctx.isa.syscall_arg_regs)
    if _is_const(number):
        arity = SYSCALL_ARITY.get(number[1], len(arg_regs))
    else:
        arity = len(arg_regs)
    args = tuple(_reg_term(ctx, state, reg) for reg in arg_regs[:arity])
    state.events.append(("syscall", number, args))
    state.regs[ctx.isa.return_reg] = ("sysret", index)
    state.generation += 1
    if _is_const(number) and number[1] == int(Sys.EXIT):
        return "halt"
    return None


def execute_block(binary, info, isa_name: str, label: str) -> BlockSummary:
    """Symbolically execute one block of one ISA view, over all paths."""
    summary = BlockSummary(function=info.name, label=label,
                           isa_name=isa_name)
    ctx = _BlockContext(binary, info, isa_name, label)
    ctx.symtab_function = lambda name: (
        binary.symtab.function(name)
        if name in getattr(binary.symtab, "functions", {}) else None)
    instructions, clean = _decode_block(
        ctx.isa, ctx.data, ctx.base, ctx.start, ctx.end)
    if not clean:
        summary.unsupported = "block does not decode cleanly"
        return summary
    index_of = {decoded.address: i
                for i, decoded in enumerate(instructions)}
    # worklist of (instruction index, state); depth-first keeps the
    # fork bookkeeping tiny and the exploration order deterministic
    work: List[Tuple[int, SymState]] = [(0, ctx.seed())]
    steps = 0
    try:
        while work:
            position, state = work.pop()
            while True:
                steps += 1
                if steps > MAX_STEPS:
                    raise Unsupported("intra-block execution limit hit")
                if position >= len(instructions):
                    summary.records.append(_exit(ctx, state, "fall",
                                                 ctx.next_label))
                    break
                decoded = instructions[position]
                outcome = _transfer(ctx, state, decoded, index_of, work,
                                    summary)
                if outcome is None:
                    position += 1
                elif outcome == "exit":
                    break
                else:
                    position = outcome
            if len(summary.records) + len(work) > MAX_PATHS:
                raise Unsupported("path explosion (compare diamonds)")
    except Unsupported as exc:
        summary.records = []
        summary.unsupported = str(exc)
    summary.records.sort(key=lambda record: repr(record.cond_key))
    return summary


def _exit(ctx, state: SymState, kind: str, successor: Optional[str],
          ret_term: Optional[Term] = None,
          target_term: Optional[Term] = None) -> ExitRecord:
    return ExitRecord(kind=kind, successor=successor, state=state,
                      sp_rel=state.sp_delta - ctx.frame_base,
                      ret_term=ret_term, target_term=target_term)


def _transfer(ctx, state: SymState, decoded: Decoded, index_of, work,
              summary: BlockSummary):
    """Execute one instruction.  Returns None (advance), an int (jump
    to that instruction index), or "exit" (the path left the block)."""
    ins: Instruction = decoded.instruction
    isa = ctx.isa
    op = ins.op
    override = isa.symbolic_transfer_overrides.get(op)
    if override is not None and override(state, decoded):
        return None

    if op is Op.NOP:
        return None
    if op is Op.MOV:
        _set_reg(ctx, state, ins.dst.index,
                 _value_term(ctx, state, ins.src))
        return None
    if op is Op.MOVT:
        low = _reg_term(ctx, state, ins.dst.index)
        _set_reg(ctx, state, ins.dst.index,
                 _fold_movt(low, ins.src.value))
        return None
    if op in (Op.LOAD, Op.LOADB):
        width = 4 if op is Op.LOAD else 1
        _set_reg(ctx, state, ins.dst.index,
                 _load(ctx, state, ins.src, width))
        return None
    if op in (Op.STORE, Op.STOREB):
        width = 4 if op is Op.STORE else 1
        _store(ctx, state, ins.dst,
               _value_term(ctx, state, ins.src), width)
        return None
    if op is Op.LEA:
        mem = ins.src
        where, at = _mem_slot(ctx, state, mem)
        term = ("spaddr", at) if where == "stack" else at
        _set_reg(ctx, state, ins.dst.index, term)
        return None
    if op is Op.PUSH:
        value = _value_term(ctx, state, ins.operands[0])
        state.sp_delta -= 4
        state.stack[state.sp_delta - ctx.frame_base] = value
        return None
    if op is Op.POP:
        offset = state.sp_delta - ctx.frame_base
        value = state.stack.get(offset, ("stackinit", offset))
        state.sp_delta += 4
        _set_reg(ctx, state, ins.dst.index, value)
        return None
    if op is Op.CMP:
        a = _value_term(ctx, state, ins.dst)
        b = _value_term(ctx, state, ins.src)
        if _is_const(a) and _is_const(b):
            state.diff = to_signed(a[1]) - to_signed(b[1])
        else:
            state.diff = ("sdiff", a, b)
        return None
    if op in (Op.NEG, Op.NOT):
        target = ins.dst
        if isinstance(target, Reg):
            term = _fold_unary(op, _reg_term(ctx, state, target.index))
            _set_reg(ctx, state, target.index, term)
        else:
            term = _fold_unary(op, _load(ctx, state, target))
            _store(ctx, state, target, term)
        return None
    if op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
              Op.XOR, Op.SHL, Op.SHR, Op.SAR):
        dst = ins.dst
        if isinstance(dst, Reg) and dst.index == isa.sp:
            src = ins.src
            if op in (Op.ADD, Op.SUB) and isinstance(src, Imm):
                sign = 1 if op is Op.ADD else -1
                state.sp_delta += sign * src.signed
                return None
            raise Unsupported("non-constant stack-pointer adjustment")
        src_term = _value_term(ctx, state, ins.src)
        if isinstance(dst, Reg):
            result = _fold_alu(op, _reg_term(ctx, state, dst.index),
                               src_term)
            _set_reg(ctx, state, dst.index, result)
        else:
            result = _fold_alu(op, _load(ctx, state, dst), src_term)
            _store(ctx, state, dst, result)
        return None
    if op is Op.JMP:
        target = ins.operands[0].value
        if ctx.start <= target < ctx.end:
            return index_of[target]
        summary.records.append(_exit(ctx, state, "jmp",
                                     ctx.label_of.get(target)))
        return "exit"
    if op is Op.JCC:
        return _jcc(ctx, state, ins, decoded, index_of, work, summary)
    if op is Op.CALL:
        target = ins.operands[0].value
        callee = ctx.func_entries.get(target, target)
        _do_call(ctx, state, callee)
        return None
    if op is Op.ICALL:
        _do_call(ctx, state,
                 _value_term(ctx, state, ins.operands[0]))
        return None
    if op is Op.RET:
        ret = _reg_term(ctx, state, isa.return_reg)
        summary.records.append(_exit(ctx, state, "ret", None,
                                     ret_term=ret))
        return "exit"
    if op is Op.IJMP:
        target = _value_term(ctx, state, ins.operands[0])
        summary.records.append(_exit(ctx, state, "ijmp", None,
                                     target_term=target))
        return "exit"
    if op is Op.SYSCALL:
        if _do_syscall(ctx, state) == "halt":
            summary.records.append(_exit(ctx, state, "halt", None))
            return "exit"
        return None
    if op is Op.HLT:
        summary.records.append(_exit(ctx, state, "halt", None))
        return "exit"
    raise Unsupported(f"unmodelled opcode {op.name}")


def _jcc(ctx, state: SymState, ins: Instruction, decoded: Decoded,
         index_of, work, summary: BlockSummary):
    """Conditional branch: resolve on a constant compare, fork otherwise.

    Path conditions are canonicalized to "the condition that holds":
    the not-taken arm records the negated condition, so both ISAs'
    diamonds line up even when their generators invert the test."""
    target = ins.operands[0].value
    internal = ctx.start <= target < ctx.end
    if state.diff is None:
        raise Unsupported("conditional branch with no prior compare")
    if isinstance(state.diff, int):
        taken = ins.cond.evaluate(state.diff)
        if taken:
            if internal:
                return index_of[target]
            summary.records.append(_exit(ctx, state, "jmp",
                                         ctx.label_of.get(target)))
            return "exit"
        return None
    taken_state = state.fork()
    taken_state.conds.append((ins.cond.name, state.diff))
    state.conds.append((ins.cond.negate().name, state.diff))
    if internal:
        work.append((index_of[target], taken_state))
    else:
        taken_state_exit = _exit(ctx, taken_state, "jmp",
                                 ctx.label_of.get(target))
        summary.records.append(taken_state_exit)
    return None


def canonicalize(term, func_entries: Dict[int, str]):
    """Rewrite ISA-local function addresses to ISA-independent names.

    The two text sections live at different addresses, so a function
    pointer materialized as a constant differs across ISAs; projecting
    ``("const", entry)`` to ``("funcaddr", name)`` makes the views
    comparable.  Applied recursively to every compared artifact."""
    if not isinstance(term, tuple) or not term:
        return term
    if len(term) == 2 and term[0] == "const" and term[1] in func_entries:
        return ("funcaddr", func_entries[term[1]])
    return tuple(canonicalize(item, func_entries)
                 if isinstance(item, tuple) else item
                 for item in term)
