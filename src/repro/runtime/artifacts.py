"""Cache-aware wrappers for the pipeline's expensive artifacts.

Three artifact families dominate experiment wall time, and all three are
pure functions of plain inputs, so they memoize cleanly through the
content-addressed store (:mod:`repro.runtime.cache`):

* **compiled fat binaries** — cached by :func:`repro.workloads.suite.
  compile_workload` itself (key: workload name, work parameter, source
  text, toolchain tag);
* **Galileo mining results** and the PSR gadget analyses built on them —
  keyed by a digest of the binary's actual section bytes, so any
  compiler change invalidates naturally;
* **measured-performance rows** — keyed by the binary digest plus every
  run parameter (config, seed, stdin, budget, warmup).

Measurement wrappers return *plain summaries* (rows of numbers), never
live VM objects, so they pickle and so cache hits carry everything the
figure drivers consume.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional

from .. import __version__
from ..analysis import perfrun
from ..attacks.galileo import Gadget, mine_binary
from ..attacks.gadgets import GadgetAnalysis, PSRGadgetAnalyzer
from ..attacks.jitrop import JITROPSurface, jitrop_surface
from ..attacks.tailored import DiversificationImmunity, measure_immunity
from ..compiler.fatbinary import FatBinary
from ..core.relocation import PSRConfig
from .cache import ArtifactCache, digest, get_cache

#: folded into every digest — bump ``repro.__version__`` (or the cache
#: schema) when toolchain/model changes should invalidate old artifacts
TOOLCHAIN_TAG = f"repro-{__version__}"


def binary_digest(binary: FatBinary) -> str:
    """Content digest of a fat binary: section bytes + layout + data."""
    parts: List[object] = ["fatbinary", TOOLCHAIN_TAG]
    for name in sorted(binary.sections):
        unit = binary.sections[name]
        parts.extend((name, unit.base_address, bytes(unit.data)))
    parts.append(bytes(binary.data))
    return digest(*parts)


def _config_key(config: Optional[PSRConfig]) -> Dict[str, object]:
    return asdict(config) if config is not None else {}


# ----------------------------------------------------------------------
# Mining and gadget analysis
# ----------------------------------------------------------------------
def mine_binary_cached(binary: FatBinary, isa_name: str,
                       include_jop: bool = True,
                       cache: Optional[ArtifactCache] = None) -> List[Gadget]:
    cache = cache or get_cache()
    key = digest("galileo", binary_digest(binary), isa_name, include_jop)
    return cache.get_or_compute(
        "gadgets", key,
        lambda: mine_binary(binary, isa_name, include_jop))


def analyze_gadgets_cached(binary: FatBinary, isa_name: str, seed: int = 0,
                           config: Optional[PSRConfig] = None,
                           cache: Optional[ArtifactCache] = None,
                           ) -> List[GadgetAnalysis]:
    """Mined gadgets + their fates under PSR, both through the cache."""
    cache = cache or get_cache()
    key = digest("psr-analyses", binary_digest(binary), isa_name, seed,
                 _config_key(config))

    def compute() -> List[GadgetAnalysis]:
        gadgets = mine_binary_cached(binary, isa_name, cache=cache)
        analyzer = (PSRGadgetAnalyzer(binary, isa_name, config, seed)
                    if config is not None
                    else PSRGadgetAnalyzer(binary, isa_name, seed=seed))
        return analyzer.analyze_all(gadgets)

    return cache.get_or_compute("analyses", key, compute)


def immunity_cached(binary: FatBinary, benchmark: str,
                    isa_name: str = "x86like", seed: int = 0,
                    cache: Optional[ArtifactCache] = None,
                    ) -> DiversificationImmunity:
    cache = cache or get_cache()
    key = digest("immunity", binary_digest(binary), benchmark, isa_name,
                 seed)
    return cache.get_or_compute(
        "immunity", key,
        lambda: measure_immunity(binary, benchmark, isa_name, seed))


def jitrop_cached(binary: FatBinary, benchmark: str, seed: int = 0,
                  stdin: bytes = b"",
                  steady_state_instructions: int = 400_000,
                  cache: Optional[ArtifactCache] = None) -> JITROPSurface:
    cache = cache or get_cache()
    key = digest("jitrop", binary_digest(binary), benchmark, seed, stdin,
                 steady_state_instructions)
    return cache.get_or_compute(
        "jitrop", key,
        lambda: jitrop_surface(
            binary, benchmark, seed=seed, stdin=stdin,
            steady_state_instructions=steady_state_instructions))


# ----------------------------------------------------------------------
# Measured-performance rows
# ----------------------------------------------------------------------
def measure_native_cached(binary: FatBinary, *, isa_name: str = "x86like",
                          stdin: bytes = b"",
                          budget: int = perfrun.DEFAULT_BUDGET,
                          warmup: int = perfrun.DEFAULT_WARMUP,
                          cache: Optional[ArtifactCache] = None,
                          ) -> perfrun.PerfMeasurement:
    cache = cache or get_cache()
    key = digest("native", binary_digest(binary), isa_name, stdin, budget,
                 warmup)
    return cache.get_or_compute(
        "measure", key,
        lambda: perfrun.measure_native(binary, isa_name, stdin=stdin,
                                       budget=budget, warmup=warmup))


def measure_psr_cached(binary: FatBinary, *, isa_name: str = "x86like",
                       config: Optional[PSRConfig] = None, seed: int = 0,
                       stdin: bytes = b"",
                       budget: int = perfrun.DEFAULT_BUDGET,
                       warmup: int = perfrun.DEFAULT_WARMUP,
                       cache: Optional[ArtifactCache] = None,
                       ) -> perfrun.PSRRunSummary:
    cache = cache or get_cache()
    key = digest("psr", binary_digest(binary), isa_name,
                 _config_key(config), seed, stdin, budget, warmup)
    return cache.get_or_compute(
        "measure", key,
        lambda: perfrun.measure_psr_summary(
            binary, isa_name, config=config, seed=seed, stdin=stdin,
            budget=budget, warmup=warmup))


def measure_isomeron_cached(binary: FatBinary, *,
                            isa_name: str = "x86like",
                            diversification_probability: float = 0.5,
                            seed: int = 0, stdin: bytes = b"",
                            budget: int = perfrun.DEFAULT_BUDGET,
                            warmup: int = perfrun.DEFAULT_WARMUP,
                            cache: Optional[ArtifactCache] = None,
                            ) -> perfrun.PerfMeasurement:
    cache = cache or get_cache()
    key = digest("isomeron", binary_digest(binary), isa_name,
                 diversification_probability, seed, stdin, budget, warmup)
    return cache.get_or_compute(
        "measure", key,
        lambda: perfrun.measure_isomeron(
            binary, isa_name, diversification_probability, seed,
            stdin=stdin, budget=budget, warmup=warmup))


def measure_psr_isomeron_cached(binary: FatBinary, *,
                                isa_name: str = "x86like",
                                config: Optional[PSRConfig] = None,
                                diversification_probability: float = 0.5,
                                seed: int = 0, stdin: bytes = b"",
                                budget: int = perfrun.DEFAULT_BUDGET,
                                warmup: int = perfrun.DEFAULT_WARMUP,
                                cache: Optional[ArtifactCache] = None,
                                ) -> perfrun.PerfMeasurement:
    cache = cache or get_cache()
    key = digest("psr-isomeron", binary_digest(binary), isa_name,
                 _config_key(config), diversification_probability, seed,
                 stdin, budget, warmup)
    return cache.get_or_compute(
        "measure", key,
        lambda: perfrun.measure_psr_isomeron(
            binary, isa_name, config=config,
            diversification_probability=diversification_probability,
            seed=seed, stdin=stdin, budget=budget, warmup=warmup))


def measure_hipstr_cached(binary: FatBinary, *,
                          config: Optional[PSRConfig] = None, seed: int = 0,
                          migration_probability: float = 1.0,
                          stdin: bytes = b"",
                          budget: int = perfrun.DEFAULT_BUDGET,
                          phase_interval: Optional[int] = None,
                          warmup: int = perfrun.DEFAULT_WARMUP,
                          prewarm: bool = False,
                          cache: Optional[ArtifactCache] = None,
                          ) -> perfrun.HIPStRRunSummary:
    cache = cache or get_cache()
    key = digest("hipstr", binary_digest(binary), _config_key(config), seed,
                 migration_probability, stdin, budget,
                 phase_interval if phase_interval is not None else -1,
                 warmup, prewarm)
    return cache.get_or_compute(
        "measure", key,
        lambda: perfrun.measure_hipstr_summary(
            binary, config=config, seed=seed,
            migration_probability=migration_probability, stdin=stdin,
            budget=budget, phase_interval=phase_interval, warmup=warmup,
            prewarm=prewarm))


def bruteforce_row_cached(binary: FatBinary, benchmark: str, seed: int = 0,
                          cache: Optional[ArtifactCache] = None):
    """Table 2 row (brute-force simulation executes many attack runs)."""
    from ..attacks.bruteforce import table2_row
    cache = cache or get_cache()
    key = digest("table2", binary_digest(binary), benchmark, seed)
    return cache.get_or_compute(
        "bruteforce", key, lambda: table2_row(binary, benchmark, seed))
