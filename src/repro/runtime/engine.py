"""Fan-out experiment engine: a process-pool job runner.

Every experiment driver in :mod:`repro.analysis.experiments` decomposes
into independent jobs (per benchmark, per seed, per configuration).  The
engine runs a job list across cores with:

* **deterministic result ordering** — results come back in submission
  order regardless of completion order, so a parallel sweep is
  byte-identical to the serial one;
* **worker-crash isolation** — a job that raises (or times out, or whose
  worker process dies) produces a failed :class:`JobResult`; the rest of
  the sweep completes and reports normally;
* **per-job timeouts** — enforced inside the worker via ``SIGALRM`` on
  POSIX, so a runaway job cannot poison the pool;
* **zero-overhead serial mode** — with ``workers <= 1`` jobs execute
  inline in the calling process (no pickling, no subprocesses), which is
  both the default and the reference path for determinism tests.

Jobs must be picklable for the parallel path: top-level functions plus
plain-data arguments.  Worker processes share the on-disk artifact cache
(:mod:`repro.runtime.cache`), whose atomic writes make concurrent
population safe.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import context as obs

try:                                            # not exported on Windows
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = RuntimeError            # type: ignore[misc]

ENV_WORKERS = "REPRO_WORKERS"


class EngineError(RuntimeError):
    """Raised by :func:`collect` when a sweep contains failed jobs."""

    def __init__(self, failures: List["JobResult"]):
        self.failures = failures
        detail = "; ".join(f"{r.key}: {r.error}" for r in failures[:5])
        more = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
        super().__init__(f"{len(failures)} job(s) failed: {detail}{more}")


class JobTimeout(Exception):
    """A job exceeded its per-job wall-clock budget."""


@dataclass(frozen=True)
class Job:
    """One unit of independent work.

    ``fn`` must be a module-level callable and the arguments plain data
    so the job can cross a process boundary.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: wall-clock seconds before the job is aborted (POSIX only)
    timeout: Optional[float] = None


@dataclass
class JobResult:
    """Outcome of one job: a value, or an error description — never both."""

    key: str
    index: int
    value: Any = None
    error: Optional[str] = None
    seconds: float = 0.0
    #: plain-data observability capture (metrics snapshot + trace
    #: records) taken around the job — present only when tracing is on
    metrics: Optional[Dict[str, Any]] = None
    trace: Optional[List[Dict[str, Any]]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def outcome(self) -> str:
        if self.error is None:
            return "ok"
        if self.error.startswith("timed out"):
            return "timeout"
        return "error"


def _alarm_handler(signum, frame):  # pragma: no cover - exercised in workers
    raise JobTimeout()


def _execute(job: Job, index: int) -> JobResult:
    """Run one job, wrapped in an observability capture when tracing.

    The capture isolates everything the job emits (counters, spans) in
    fresh buffers that ship back inside the :class:`JobResult`; the
    parent merges them in submission order, which is what makes merged
    metrics identical for serial and parallel runs.
    """
    if not obs.enabled():
        return _execute_plain(job, index)
    with obs.capture() as cap:
        with cap.tracer.span("engine.job", key=job.key) as span:
            result = _execute_plain(job, index)
            span.set(outcome=result.outcome)
        cap.registry.counter("engine.jobs", outcome=result.outcome).inc()
    result.metrics = cap.metrics
    result.trace = cap.records
    return result


def _execute_plain(job: Job, index: int) -> JobResult:
    """Run one job in the current process, capturing failure as data."""
    start = time.perf_counter()
    use_alarm = (job.timeout is not None and job.timeout > 0
                 and hasattr(signal, "SIGALRM"))
    previous_handler = None
    if use_alarm:
        previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, job.timeout)
    try:
        value = job.fn(*job.args, **job.kwargs)
        return JobResult(key=job.key, index=index, value=value,
                         seconds=time.perf_counter() - start)
    except JobTimeout:
        return JobResult(
            key=job.key, index=index,
            error=f"timed out after {job.timeout:.1f}s",
            seconds=time.perf_counter() - start)
    except Exception as exc:
        trace = traceback.format_exc(limit=4)
        return JobResult(
            key=job.key, index=index,
            error=f"{type(exc).__name__}: {exc}\n{trace}",
            seconds=time.perf_counter() - start)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)


def _worker_entry(job: Job, index: int) -> JobResult:
    """Top-level pool entry point (must be picklable by reference)."""
    return _execute(job, index)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker-count policy: explicit > ``REPRO_WORKERS`` > serial.

    ``0`` (or the env value ``auto``) means one worker per core.
    """
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip().lower()
        if not raw:
            return 1
        workers = 0 if raw == "auto" else int(raw)
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


class ExperimentEngine:
    """Runs job lists serially or across a process pool."""

    def __init__(self, workers: Optional[int] = None,
                 job_timeout: Optional[float] = None):
        self.workers = resolve_workers(workers)
        #: default per-job timeout applied when a job doesn't set one
        self.job_timeout = job_timeout
        self.jobs_run = 0
        self.failures = 0

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Execute every job; results are in submission order."""
        jobs = [self._with_default_timeout(job) for job in jobs]
        if not jobs:
            return []
        tracing = obs.enabled()
        run_span = (obs.span("engine.run", jobs=len(jobs),
                             workers=self.workers)
                    if tracing else contextlib.nullcontext())
        with run_span:
            if not self.parallel or len(jobs) == 1:
                results = [_execute(job, index)
                           for index, job in enumerate(jobs)]
            else:
                results = self._run_pool(jobs)
            if tracing:
                self._merge_observability(results)
        self.jobs_run += len(results)
        self.failures += sum(1 for r in results if not r.ok)
        return results

    def map(self, fn: Callable[..., Any], arg_tuples: Sequence[Tuple],
            key_prefix: str = "job",
            timeout: Optional[float] = None) -> List[JobResult]:
        """Convenience fan-out: one job per argument tuple."""
        jobs = [Job(key=f"{key_prefix}:{index}", fn=fn, args=tuple(args),
                    timeout=timeout)
                for index, args in enumerate(arg_tuples)]
        return self.run(jobs)

    # ------------------------------------------------------------------
    def _merge_observability(self, results: Sequence[JobResult]) -> None:
        """Fold per-job captures into the ambient registry and trace.

        Results arrive in submission order regardless of completion
        order, so the merged metrics and trace are the same for every
        worker count.  A job whose worker died hard has no capture; it
        is recorded as a lost job so the trace still accounts for it.
        """
        for result in results:
            if result.metrics is None and result.trace is None:
                obs.event("engine.job.lost", key=result.key)
                obs.get_registry().counter("engine.jobs",
                                           outcome="lost").inc()
                continue
            obs.merge_capture(result.metrics, result.trace)

    def _with_default_timeout(self, job: Job) -> Job:
        if job.timeout is None and self.job_timeout is not None:
            return Job(key=job.key, fn=job.fn, args=job.args,
                       kwargs=job.kwargs, timeout=self.job_timeout)
        return job

    def _run_pool(self, jobs: Sequence[Job]) -> List[JobResult]:
        results: List[Optional[JobResult]] = [None] * len(jobs)
        max_workers = min(self.workers, len(jobs))
        pending: Dict[Any, int] = {}
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            for index, job in enumerate(jobs):
                try:
                    future = pool.submit(_worker_entry, job, index)
                except (BrokenProcessPool, RuntimeError) as exc:
                    results[index] = JobResult(
                        key=job.key, index=index,
                        error=f"pool broken at submit: {exc}")
                    continue
                pending[future] = index
            while pending:
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool as exc:
                        # A worker died hard (e.g. os._exit/segfault): the
                        # job it held is lost, the sweep is not.
                        results[index] = JobResult(
                            key=jobs[index].key, index=index,
                            error=f"worker process died: {exc}")
                    except Exception as exc:
                        results[index] = JobResult(
                            key=jobs[index].key, index=index,
                            error=f"{type(exc).__name__}: {exc}")
        return [result for result in results if result is not None]


def collect(results: Sequence[JobResult]) -> List[Any]:
    """Values in order, or :class:`EngineError` describing every failure."""
    failures = [r for r in results if not r.ok]
    if failures:
        raise EngineError(failures)
    return [r.value for r in results]


# ----------------------------------------------------------------------
# Process-wide default engine
# ----------------------------------------------------------------------
_default_engine: Optional[ExperimentEngine] = None


def get_default_engine() -> ExperimentEngine:
    """The ambient engine drivers use when none is passed explicitly.

    Serial unless ``REPRO_WORKERS`` (or :func:`set_default_engine`) says
    otherwise, so library callers and tests pay no pool overhead.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = ExperimentEngine()
    return _default_engine


def set_default_engine(engine: Optional[ExperimentEngine]) -> None:
    global _default_engine
    _default_engine = engine
