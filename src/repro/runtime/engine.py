"""Fan-out experiment engine: a process-pool job runner.

Every experiment driver in :mod:`repro.analysis.experiments` decomposes
into independent jobs (per benchmark, per seed, per configuration).  The
engine runs a job list across cores with:

* **deterministic result ordering** — results come back in submission
  order regardless of completion order, so a parallel sweep is
  byte-identical to the serial one;
* **worker-crash isolation** — a job that raises (or times out, or whose
  worker process dies) produces a failed :class:`JobResult`; the rest of
  the sweep completes and reports normally;
* **per-job timeouts** — enforced inside the worker via ``SIGALRM`` on
  POSIX, so a runaway job cannot poison the pool;
* **self-healing** — with ``retries > 0``, failed jobs are retried with
  exponential backoff and a per-attempt timeout escalation; a job that
  exhausts every attempt has its key *quarantined* so later sweeps
  fail it fast instead of burning another timeout on a poisoned job;
* **zero-overhead serial mode** — with ``workers <= 1`` jobs execute
  inline in the calling process (no pickling, no subprocesses), which is
  both the default and the reference path for determinism tests.

Jobs must be picklable for the parallel path: top-level functions plus
plain-data arguments.  Worker processes share the on-disk artifact cache
(:mod:`repro.runtime.cache`), whose atomic writes make concurrent
population safe.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigError, ReproError, RunInterrupted
from ..faults import injection as faults
from ..obs import context as obs
from . import durable
from . import supervisor as supervision

try:                                            # not exported on Windows
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = RuntimeError            # type: ignore[misc]

ENV_WORKERS = "REPRO_WORKERS"
ENV_RETRIES = "REPRO_RETRIES"
ENV_BATCH = "REPRO_BATCH"

#: error prefix marking a job that was never executed this sweep
#: because its key was quarantined by an earlier exhausted retry cycle
QUARANTINED_PREFIX = "quarantined:"

#: error prefix marking a job skipped because its workload's circuit
#: breaker is open (see :class:`repro.runtime.supervisor.CircuitBreaker`)
SKIPPED_PREFIX = "skipped:circuit_open"


class EngineError(ReproError):
    """Raised by :func:`collect` when a sweep contains failed jobs."""

    def __init__(self, failures: List["JobResult"]):
        self.failures = failures
        detail = "; ".join(f"{r.key}: {r.error}" for r in failures[:5])
        more = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
        super().__init__(f"{len(failures)} job(s) failed: {detail}{more}")


class JobTimeout(Exception):
    """A job exceeded its per-job wall-clock budget."""


@dataclass(frozen=True)
class Job:
    """One unit of independent work.

    ``fn`` must be a module-level callable and the arguments plain data
    so the job can cross a process boundary.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: wall-clock seconds before the job is aborted (POSIX only)
    timeout: Optional[float] = None
    #: circuit-breaker grouping (benchmark name); defaults to the key
    workload: Optional[str] = None


@dataclass
class JobResult:
    """Outcome of one job: a value, or an error description — never both."""

    key: str
    index: int
    value: Any = None
    error: Optional[str] = None
    seconds: float = 0.0
    #: plain-data observability capture (metrics snapshot + trace
    #: records) taken around the job — present only when tracing is on
    metrics: Optional[Dict[str, Any]] = None
    trace: Optional[List[Dict[str, Any]]] = None
    #: how many times the job actually ran (0 = quarantined, never ran)
    attempts: int = 1
    #: True when the value was served from a resumed run's journal
    #: store instead of being executed
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def outcome(self) -> str:
        if self.error is None:
            return "resumed" if self.resumed else "ok"
        if self.error.startswith("timed out"):
            return "timeout"
        if self.error.startswith(QUARANTINED_PREFIX):
            return "quarantined"
        if self.error.startswith(SKIPPED_PREFIX):
            return "circuit_open"
        return "error"


def _alarm_handler(signum, frame):  # pragma: no cover - exercised in workers
    raise JobTimeout()


def _execute(job: Job, index: int, attempt: int = 0) -> JobResult:
    """Run one job, wrapped in an observability capture when tracing.

    The capture isolates everything the job emits (counters, spans) in
    fresh buffers that ship back inside the :class:`JobResult`; the
    parent merges them in submission order, which is what makes merged
    metrics identical for serial and parallel runs.
    """
    if not obs.enabled():
        return _execute_plain(job, index, attempt)
    with obs.capture() as cap:
        with cap.tracer.span("engine.job", key=job.key,
                             attempt=attempt) as span:
            result = _execute_plain(job, index, attempt)
            span.set(outcome=result.outcome)
        cap.registry.counter("engine.jobs", outcome=result.outcome).inc()
    result.metrics = cap.metrics
    result.trace = cap.records
    return result


def _execute_plain(job: Job, index: int, attempt: int = 0) -> JobResult:
    """Run one job in the current process, capturing failure as data."""
    faults.ensure_worker()
    injector = faults.get()
    delay_event = kill_event = None
    if injector is not None:
        # Keyed by (job.key, attempt) so the decision is identical no
        # matter which worker runs the job, and each retry gets a fresh
        # draw — a killed job is not killed forever.
        fault_key = f"{job.key}@{attempt}"
        delay_event = injector.fire("job.delay", key=fault_key)
        kill_event = injector.fire("job.kill", key=fault_key)
    start = time.perf_counter()
    use_alarm = (job.timeout is not None and job.timeout > 0
                 and hasattr(signal, "SIGALRM"))
    previous_handler = None
    if use_alarm:
        previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, job.timeout)
    try:
        if delay_event is not None:
            # Inside the alarm window so an injected stall can trip the
            # per-job timeout and exercise the escalation path.
            time.sleep(injector.rng_for(delay_event).uniform(0.01, 0.05))
        if kill_event is not None:
            faults.FaultInjector.raise_fault(kill_event)
        value = job.fn(*job.args, **job.kwargs)
        return JobResult(key=job.key, index=index, value=value,
                         seconds=time.perf_counter() - start)
    except JobTimeout:
        return JobResult(
            key=job.key, index=index,
            error=f"timed out after {job.timeout:.1f}s",
            seconds=time.perf_counter() - start)
    except Exception as exc:
        trace = traceback.format_exc(limit=4)
        return JobResult(
            key=job.key, index=index,
            error=f"{type(exc).__name__}: {exc}\n{trace}",
            seconds=time.perf_counter() - start)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)


def _worker_entry(job: Job, index: int, attempt: int = 0) -> JobResult:
    """Top-level pool entry point (must be picklable by reference)."""
    return _execute(job, index, attempt)


def _worker_group_entry(pairs: Sequence[Tuple[int, Job]],
                        attempt: int = 0) -> List[JobResult]:
    """Pool entry point for a batched job group.

    Runs each job through the exact same :func:`_execute` wrapper the
    unbatched path uses — one observability capture, one span, and one
    (deterministically keyed) fault draw per *job* — so per-job results
    are indistinguishable from one-future-per-job submission; only the
    process-spawn/IPC cost is amortized across the group.
    """
    return [_execute(job, index, attempt) for index, job in pairs]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker-count policy: explicit > ``REPRO_WORKERS`` > serial.

    ``0`` (or the env value ``auto``) means one worker per core.
    """
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip().lower()
        if not raw:
            return 1
        workers = 0 if raw == "auto" else int(raw)
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def resolve_retries(retries: Optional[int] = None) -> int:
    """Retry-count policy: explicit > ``REPRO_RETRIES`` > none."""
    if retries is None:
        raw = os.environ.get(ENV_RETRIES, "").strip()
        retries = int(raw) if raw else 0
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries}")
    return retries


def resolve_batch(batch: Optional[int] = None) -> int:
    """Batch-size policy: explicit > ``REPRO_BATCH`` > unbatched.

    ``0`` (or the env value ``auto``) means one group per worker, sized
    at sweep time; ``1`` disables batching (the legacy path).
    """
    if batch is None:
        raw = os.environ.get(ENV_BATCH, "").strip().lower()
        if not raw:
            return 1
        batch = 0 if raw == "auto" else int(raw)
    if batch < 0:
        raise ConfigError(f"batch must be >= 0, got {batch}")
    return batch


class ExperimentEngine:
    """Runs job lists serially or across a process pool.

    With ``retries > 0`` the engine self-heals: failed jobs are re-run
    up to ``retries`` more times with exponential ``backoff`` sleeps and
    a per-attempt ``timeout_escalation`` multiplier on the job timeout
    (so a job that merely stalled gets more headroom).  A job key that
    fails every attempt is added to :attr:`quarantine`; later sweeps
    through the same engine fail such jobs fast without executing them.
    ``retries=0`` (the default) is byte-identical to the legacy path.
    """

    def __init__(self, workers: Optional[int] = None,
                 job_timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 backoff: float = 0.05,
                 timeout_escalation: float = 2.0,
                 supervise: Optional[bool] = None,
                 batch: Optional[int] = None):
        self.workers = resolve_workers(workers)
        #: default per-job timeout applied when a job doesn't set one
        self.job_timeout = job_timeout
        self.retries = resolve_retries(retries)
        #: jobs per pool submission on the plain parallel path; 1 =
        #: one future per job, 0 = one group per worker (sized per sweep)
        self.batch = resolve_batch(batch)
        #: run the parallel path under a SupervisedPool (heartbeats,
        #: hung-worker kill-and-replace) instead of a bare process pool
        self.supervise = supervision.resolve_supervise(supervise)
        if backoff < 0:
            raise ConfigError(f"backoff must be >= 0, got {backoff}")
        if timeout_escalation < 1.0:
            raise ConfigError(
                f"timeout_escalation must be >= 1, got {timeout_escalation}")
        self.backoff = backoff
        self.timeout_escalation = timeout_escalation
        #: job keys that exhausted every retry — poisoned, skip them
        self.quarantine: Set[str] = set()
        self.jobs_run = 0
        self.failures = 0
        self.retries_performed = 0
        self.jobs_quarantined = 0
        self.supervisor_restarts = 0

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Execute every job; results are in submission order.

        When a run journal is active (``--journal`` / ``REPRO_JOURNAL``)
        every job is write-ahead journaled: ``job_enqueued`` before any
        scheduling decision, ``job_done``/``job_failed`` the moment the
        outcome is known (completion order), with successful values
        persisted to the run's artifact store.  A resumed run serves
        journal-completed jobs from that store without re-executing
        them.  Raises :class:`~repro.errors.RunInterrupted` if a SIGTERM
        drain left jobs unstarted.
        """
        jobs = [self._with_default_timeout(job) for job in jobs]
        if not jobs:
            return []
        faults.ensure_worker()      # arm an env-provided plan in-parent
        journal = durable.get_current_journal()
        resume = durable.get_resume_state()
        breaker = supervision.get_current_breaker()
        occurrences = [journal.next_occurrence(job.key) if journal else 0
                       for job in jobs]
        tracing = obs.enabled()
        run_span = (obs.span("engine.run", jobs=len(jobs),
                             workers=self.workers)
                    if tracing else contextlib.nullcontext())
        with run_span:
            slots: List[Optional[JobResult]] = [None] * len(jobs)
            pairs: List[Tuple[int, Job]] = []
            for index, job in enumerate(jobs):
                if journal is not None:
                    journal.append("job_enqueued", key=job.key,
                                   occurrence=occurrences[index],
                                   workload=self._workload(job))
                settled = self._pre_execute(job, index, occurrences[index],
                                            journal, resume, breaker,
                                            tracing)
                if settled is not None:
                    slots[index] = settled
                else:
                    pairs.append((index, job))
            on_result = self._journal_callback(jobs, occurrences, journal)
            for result in self._run_some(pairs, attempt=0,
                                         on_result=on_result):
                slots[result.index] = result
            results = [r for r in slots if r is not None]
            if durable.interrupt_requested() and len(results) < len(jobs):
                # SIGTERM drain: in-flight jobs finished and journaled,
                # the rest never started — report and bail out cleanly.
                if tracing:
                    self._merge_observability(results)
                self.jobs_run += len(results)
                self.failures += sum(1 for r in results if not r.ok)
                raise RunInterrupted(completed=len(results),
                                     remaining=len(jobs) - len(results))
            if self.retries > 0:
                self._heal(jobs, results, on_result)
            if breaker is not None and breaker.enabled:
                self._update_breaker(breaker, jobs, results, journal)
            if tracing:
                self._merge_observability(results)
        self.jobs_run += len(results)
        self.failures += sum(1 for r in results if not r.ok)
        return results

    @staticmethod
    def _workload(job: Job) -> str:
        return job.workload or job.key

    def _pre_execute(self, job: Job, index: int, occurrence: int,
                     journal, resume, breaker,
                     tracing: bool) -> Optional[JobResult]:
        """Settle a job without executing it, when policy says so.

        Order matters: an open circuit breaker beats quarantine beats
        resume — a poisoned workload must degrade to its typed skip even
        on a resumed run, and only genuinely runnable jobs consult the
        journal's completed map.
        """
        workload = self._workload(job)
        if breaker is not None and breaker.enabled \
                and not breaker.allow(workload):
            if journal is not None:
                journal.append("job_failed", key=job.key,
                               occurrence=occurrence, attempt=0,
                               error=SKIPPED_PREFIX)
            return JobResult(
                key=job.key, index=index, attempts=0,
                error=f"{SKIPPED_PREFIX}: workload {workload!r} has an "
                      f"open circuit breaker; reset with --force")
        if self.retries > 0 and job.key in self.quarantine:
            return JobResult(
                key=job.key, index=index, attempts=0,
                error=f"{QUARANTINED_PREFIX} key poisoned by an "
                      f"earlier sweep; not executed")
        if resume is not None and journal is not None \
                and resume.is_completed(job.key, occurrence):
            hit, value = resume.load(job.key, occurrence)
            if hit:
                journal.jobs_resumed += 1
                if tracing:
                    obs.get_registry().counter("engine.jobs.resumed").inc()
                # served from the store, so no journal record lands —
                # count it in the live status directly
                try:
                    journal.status.note_record("job_done", {})
                except Exception:
                    pass
                return JobResult(key=job.key, index=index, value=value,
                                 attempts=0, resumed=True)
            # journal says done but the artifact is missing/corrupt:
            # fall through and recompute — never trust a bad artifact
            journal.jobs_recomputed += 1
            if tracing:
                obs.get_registry().counter("engine.jobs.recomputed").inc()
                obs.event("engine.job.recomputed", key=job.key,
                          occurrence=occurrence)
        return None

    def _journal_callback(self, jobs: Sequence[Job],
                          occurrences: Sequence[int], journal):
        """Completion-order hook: make each outcome durable as it lands."""
        if journal is None:
            return None

        def on_result(result: JobResult, attempt: int) -> None:
            job = jobs[result.index]
            occurrence = occurrences[result.index]
            if result.ok:
                artifact_key = journal.store_result(job.key, occurrence,
                                                    result.value)
                journal.append("job_done", key=job.key,
                               occurrence=occurrence, attempt=attempt,
                               artifact_key=artifact_key,
                               seconds=round(result.seconds, 6))
            else:
                journal.append("job_failed", key=job.key,
                               occurrence=occurrence, attempt=attempt,
                               error=(result.error or
                                      "").splitlines()[0][:200])
            self._update_status_telemetry(journal)
            self._maybe_orchestrator_kill(journal, job, occurrence)

        return on_result

    @staticmethod
    def _update_status_telemetry(journal) -> None:
        """Fold cache hit rate + fault totals into the live status file."""
        try:
            from .cache import get_cache
            stats = get_cache().stats
            hits, misses = stats.hits, stats.misses
            injected = recovered = 0
            if obs.enabled():
                # the merged registry sees worker-side cache traffic and
                # fault counters; the parent's local stats would not
                from ..obs.metrics import parse_series
                hits = misses = 0
                for key, value in \
                        obs.get_registry().snapshot()["counters"].items():
                    name, labels = parse_series(key)
                    if name == "cache.events":
                        if labels.get("event") == "hits":
                            hits += value
                        elif labels.get("event") == "misses":
                            misses += value
                    elif name == "faults.injected":
                        injected += value
                    elif name == "faults.recovered":
                        recovered += value
            else:
                injector = faults.get()
                if injector is not None:
                    injected = len(injector.log)
            lookups = hits + misses
            journal.status.update(
                cache={"hits": int(hits), "misses": int(misses),
                       "hit_rate": round(hits / lookups, 4)
                       if lookups else 0.0},
                faults={"injected": int(injected),
                        "recovered": int(recovered)})
        except Exception:
            pass                           # telemetry must never abort

    def _maybe_orchestrator_kill(self, journal, job: Job,
                                 occurrence: int) -> None:
        """Chaos hook: SIGKILL this orchestrator right after an outcome
        is durable, so the harness can prove ``repro resume`` converges.
        Fires only when a journal is active — without one the kill
        would lose work with no way back."""
        injector = faults.get()
        if injector is None:
            return
        event = injector.fire("orchestrator.kill",
                              key=f"{job.key}@{occurrence}")
        if event is None:
            return
        # the fault itself is journaled first so the resumed process can
        # re-count it into the injected/recovered balance
        journal.append("fault_injected", site=event.site, kind=event.kind,
                       key=event.key, ordinal=event.ordinal)
        journal.close()
        os.kill(os.getpid(), signal.SIGKILL)

    def _update_breaker(self, breaker, jobs: Sequence[Job],
                        results: Sequence[JobResult], journal) -> None:
        """Fold terminal outcomes into the breaker, in submission order."""
        for result in results:
            if result.attempts == 0:     # resumed / skipped / quarantined
                continue
            workload = self._workload(jobs[result.index])
            if breaker.record(workload, ok=result.ok):
                faults.recovered("engine.run", "breaker_open")
        journal_breaker_transitions(breaker, journal)

    def map(self, fn: Callable[..., Any], arg_tuples: Sequence[Tuple],
            key_prefix: str = "job",
            timeout: Optional[float] = None) -> List[JobResult]:
        """Convenience fan-out: one job per argument tuple."""
        jobs = [Job(key=f"{key_prefix}:{index}", fn=fn, args=tuple(args),
                    timeout=timeout)
                for index, args in enumerate(arg_tuples)]
        return self.run(jobs)

    # ------------------------------------------------------------------
    def _merge_observability(self, results: Sequence[JobResult]) -> None:
        """Fold per-job captures into the ambient registry and trace.

        Results arrive in submission order regardless of completion
        order, so the merged metrics and trace are the same for every
        worker count.  A job whose worker died hard has no capture; it
        is recorded as a lost job so the trace still accounts for it.
        """
        for result in results:
            if result.resumed or \
                    (result.error is not None
                     and result.error.startswith(SKIPPED_PREFIX)):
                continue              # never executed — nothing to merge
            if result.metrics is None and result.trace is None:
                obs.event("engine.job.lost", key=result.key)
                obs.get_registry().counter("engine.jobs",
                                           outcome="lost").inc()
                continue
            obs.merge_capture(result.metrics, result.trace)

    def _with_default_timeout(self, job: Job) -> Job:
        if job.timeout is None and self.job_timeout is not None:
            return replace(job, timeout=self.job_timeout)
        return job

    # -- self-healing --------------------------------------------------
    def _heal(self, jobs: Sequence[Job], results: List[JobResult],
              on_result=None) -> None:
        """Retry failed jobs in place; quarantine keys that never heal."""
        for attempt in range(1, self.retries + 1):
            if durable.interrupt_requested():
                break
            failed = [r.index for r in results
                      if not r.ok
                      and not r.error.startswith(QUARANTINED_PREFIX)
                      and not r.error.startswith(SKIPPED_PREFIX)]
            if not failed:
                break
            delay = self.backoff * (2 ** (attempt - 1))
            if delay > 0:
                time.sleep(min(delay, 2.0))
            if obs.enabled():
                obs.event("engine.retry", attempt=attempt,
                          jobs=len(failed))
            retry_pairs = [(index, self._escalate(jobs[index], attempt))
                           for index in failed]
            for result in self._run_some(retry_pairs, attempt,
                                         on_result=on_result):
                result.attempts = attempt + 1
                results[result.index] = result
                self.retries_performed += 1
                if obs.enabled():
                    obs.get_registry().counter(
                        "engine.retries", outcome=result.outcome).inc()
        for result in results:
            if not result.ok and \
                    not result.error.startswith(QUARANTINED_PREFIX) and \
                    not result.error.startswith(SKIPPED_PREFIX):
                self.quarantine.add(result.key)
                self.jobs_quarantined += 1
                faults.recovered("engine.job", "quarantine")
                if obs.enabled():
                    obs.get_registry().counter("engine.quarantined").inc()

    def _escalate(self, job: Job, attempt: int) -> Job:
        """The same job with its timeout widened for retry ``attempt``."""
        if job.timeout is None:
            return job
        factor = self.timeout_escalation ** attempt
        return replace(job, timeout=job.timeout * factor)

    # -- execution -----------------------------------------------------
    def _run_some(self, pairs: Sequence[Tuple[int, Job]],
                  attempt: int, on_result=None) -> List[JobResult]:
        """Run (index, job) pairs; one result per pair, in pair order.

        May return *fewer* results than pairs when a SIGTERM drain stops
        the sweep mid-flight — ``run`` turns the gap into
        :class:`~repro.errors.RunInterrupted`.  ``on_result`` fires in
        completion order with each finished result.
        """
        if not pairs:
            return []
        journal = durable.get_current_journal()
        if not self.parallel or len(pairs) == 1:
            results = []
            for index, job in pairs:
                if durable.interrupt_requested():
                    break
                if journal is not None:
                    journal.append("job_started", key=job.key,
                                   attempt=attempt)
                result = _execute(job, index, attempt)
                if on_result is not None:
                    on_result(result, attempt)
                results.append(result)
            return results
        if journal is not None:
            for _index, job in pairs:
                journal.append("job_started", key=job.key, attempt=attempt)
        if self.supervise:
            # The supervised pool owns per-job heartbeats and hung-worker
            # replacement; grouping would blunt both, so it stays
            # one-job-per-dispatch regardless of ``batch``.
            pool = supervision.SupervisedPool(
                workers=min(self.workers, len(pairs)))
            done = pool.run(pairs, attempt, on_result=on_result,
                            should_stop=durable.interrupt_requested)
            self.supervisor_restarts += pool.restarts
            return [done[index] for index, _ in pairs if index in done]
        return self._run_pool(pairs, attempt, on_result)

    def _group_size(self, pair_count: int, max_workers: int) -> int:
        """Jobs per pool submission for this sweep.

        ``batch == 0`` (auto) hands each worker one contiguous group;
        anything larger than 1 is used as-is.  Grouping amortizes
        process-spawn and argument-pickling cost over many small jobs
        without changing any per-job outcome (see
        :func:`_worker_group_entry`).
        """
        if self.batch == 0:
            return -(-pair_count // max_workers)
        return self.batch

    def _run_pool(self, pairs: Sequence[Tuple[int, Job]],
                  attempt: int = 0, on_result=None) -> List[JobResult]:
        jobs_by_index = dict(pairs)
        by_index: Dict[int, JobResult] = {}
        max_workers = min(self.workers, len(pairs))
        #: future -> list of indices it will resolve (singleton when
        #: unbatched); kept as a list so a broken worker can fail every
        #: job it held, not just one
        pending: Dict[Any, List[int]] = {}
        group_size = self._group_size(len(pairs), max_workers)

        def settle(index: int, result: JobResult) -> None:
            by_index[index] = result
            if on_result is not None:
                on_result(result, attempt)

        def settle_error(indices: Sequence[int], message: str) -> None:
            for index in indices:
                settle(index, JobResult(
                    key=jobs_by_index[index].key, index=index,
                    error=message))

        groups: List[Sequence[Tuple[int, Job]]]
        if group_size > 1:
            groups = [pairs[pos:pos + group_size]
                      for pos in range(0, len(pairs), group_size)]
        else:
            groups = [(pair,) for pair in pairs]

        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            for group in groups:
                indices = [index for index, _ in group]
                try:
                    if len(group) == 1:
                        index, job = group[0]
                        future = pool.submit(_worker_entry, job, index,
                                             attempt)
                    else:
                        future = pool.submit(_worker_group_entry, group,
                                             attempt)
                except (BrokenProcessPool, RuntimeError) as exc:
                    settle_error(indices, f"pool broken at submit: {exc}")
                    continue
                pending[future] = indices
            while pending:
                if durable.interrupt_requested():
                    # drain in-flight work, drop what never started
                    for future in list(pending):
                        if future.cancel():
                            pending.pop(future)
                    if not pending:
                        break
                done, _ = wait(list(pending), timeout=0.5,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    indices = pending.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool as exc:
                        # A worker died hard (e.g. os._exit/segfault): the
                        # jobs it held are lost, the sweep is not.
                        settle_error(indices,
                                     f"worker process died: {exc}")
                        continue
                    except Exception as exc:
                        settle_error(indices,
                                     f"{type(exc).__name__}: {exc}")
                        continue
                    if isinstance(outcome, JobResult):
                        settle(outcome.index, outcome)
                    else:
                        for result in outcome:
                            settle(result.index, result)
        return [by_index[index] for index, _ in pairs if index in by_index]


def journal_breaker_transitions(breaker, journal) -> None:
    """Persist every queued breaker transition (open/half-open/reset).

    The breaker queues its own state changes as journal-ready records
    (see :meth:`~repro.runtime.supervisor.CircuitBreaker.drain_transitions`);
    the engine — and the serve layer, which shares breakers across
    requests — drains them at each settle point so transitions land in
    the write-ahead journal exactly once.
    """
    transitions = breaker.drain_transitions()
    if journal is None:
        return
    for record in transitions:
        payload = dict(record)
        journal.append(payload.pop("type"), **payload)


def collect(results: Sequence[JobResult]) -> List[Any]:
    """Values in order, or :class:`EngineError` describing every failure."""
    failures = [r for r in results if not r.ok]
    if failures:
        raise EngineError(failures)
    return [r.value for r in results]


# ----------------------------------------------------------------------
# Process-wide default engine
# ----------------------------------------------------------------------
_default_engine: Optional[ExperimentEngine] = None


def get_default_engine() -> ExperimentEngine:
    """The ambient engine drivers use when none is passed explicitly.

    Serial unless ``REPRO_WORKERS`` (or :func:`set_default_engine`) says
    otherwise, so library callers and tests pay no pool overhead.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = ExperimentEngine()
    return _default_engine


def set_default_engine(engine: Optional[ExperimentEngine]) -> None:
    global _default_engine
    _default_engine = engine
