"""Worker supervision and graceful degradation for the experiment engine.

Two mechanisms keep a long sweep making progress when its workers
misbehave:

* :class:`SupervisedPool` — a process pool where every worker runs a
  heartbeat thread writing to a *private* result pipe.  The parent's
  watchdog scan detects a *hung* worker (one that is busy but has not
  heartbeaten for ``hang_factor × timeout``), SIGKILLs it, records the
  job as failed, and spawns a replacement — the engine's normal
  retry/quarantine path then re-runs the job.  A worker that dies hard
  (segfault, ``os._exit``) is detected the same way through its exit
  code.  One pipe per worker rather than one shared queue is a
  correctness requirement, not a style choice: a worker killed (or
  dying) mid-write to a shared ``multiprocessing.Queue`` leaves the
  queue's cross-process write lock held forever, deadlocking every
  surviving worker — and killing mid-write is exactly what this pool
  does for a living.  The ``worker.hang`` chaos fault is decided *in
  the parent* at dispatch time (so the decision lands in the parent's
  deterministic fault log) and shipped to the worker as an instruction
  to stop heartbeating and stall.

* :class:`CircuitBreaker` — per-workload consecutive-terminal-failure
  counting.  After ``threshold`` terminal failures (a job that exhausted
  every retry) the workload's breaker opens: subsequent jobs for it
  degrade to a typed ``skipped:circuit_open`` result instead of burning
  a full retry budget every sweep.  Open breakers are recorded in the
  run journal and survive a crash; ``--force`` resets them.  With a
  ``cooldown`` configured the breaker self-heals: once an open breaker
  has cooled down, the next :meth:`~CircuitBreaker.allow` admits exactly
  one *probe* job (the half-open state) — a probe that succeeds closes
  the breaker, a probe that fails re-opens it and restarts the cooldown.
  Every state transition (open, half-open, reset) is queued on
  :attr:`~CircuitBreaker.transitions` for the caller to journal, so the
  breaker's history is auditable across a crash.

Both report through :mod:`repro.obs`: ``supervisor.restarts`` counts
kill-and-replace events, ``breaker.state`` gauges are 1 while open.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..faults import injection as faults
from ..obs import context as obs
from . import durable

#: default stall budget for jobs with no explicit timeout
DEFAULT_HANG_TIMEOUT = 30.0

ENV_SUPERVISE = "REPRO_SUPERVISE"
ENV_BREAKER_THRESHOLD = "REPRO_BREAKER_THRESHOLD"
ENV_BREAKER_COOLDOWN = "REPRO_BREAKER_COOLDOWN"
ENV_HANG_TIMEOUT = "REPRO_HANG_TIMEOUT"


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Per-workload consecutive-failure breaker (``threshold=0`` = off).

    The unit of tracking is the job's ``workload`` (falling back to its
    key), so a sweep that fans one benchmark into many jobs trips the
    breaker for all of them at once.  Only *terminal* failures count —
    a job that heals on retry resets its workload's streak.

    With ``cooldown`` set (seconds; ``None`` = legacy always-open) an
    open breaker moves to *half-open* once the cooldown elapses: the
    next :meth:`allow` admits a single probe job while every other job
    for the workload keeps degrading to the typed skip.  The probe's
    terminal outcome folded through :meth:`record` either closes the
    breaker (success) or re-opens it and restarts the cooldown
    (failure).  All transitions are appended to :attr:`transitions` as
    journal-ready dicts; callers that hold a run journal drain them via
    :meth:`drain_transitions` so open/half-open/reset survive a crash.
    """

    def __init__(self, threshold: int = 0,
                 cooldown: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        if threshold < 0:
            raise ConfigError(
                f"breaker threshold must be >= 0, got {threshold}")
        if cooldown is not None and cooldown < 0:
            raise ConfigError(
                f"breaker cooldown must be >= 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        #: workload -> current consecutive terminal failures
        self.consecutive: Dict[str, int] = {}
        #: workload -> failure count at the moment the breaker opened
        self.open_workloads: Dict[str, int] = {}
        #: workload -> clock reading when the breaker (re-)opened
        self.opened_at: Dict[str, float] = {}
        #: workloads with a half-open probe currently in flight
        self.probing: set = set()
        #: journal-ready transition records awaiting a drain
        self.transitions: List[Dict[str, Any]] = []
        self.opened = 0
        self.skipped = 0
        self.probes = 0

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def allow(self, workload: str) -> bool:
        """May a job for ``workload`` execute?  (Counts skips.)

        An open breaker whose cooldown has elapsed grants exactly one
        probe (the half-open state); everything else is skipped until
        the probe's outcome lands.
        """
        if workload not in self.open_workloads:
            return True
        if workload not in self.probing and self._probe_due(workload):
            self.probing.add(workload)
            self.probes += 1
            self._transition("breaker_half_open", workload,
                             failures=self.open_workloads[workload])
            if obs.enabled():
                obs.event("breaker.half_open", workload=workload)
            return True
        self.skipped += 1
        return False

    def _probe_due(self, workload: str) -> bool:
        if self.cooldown is None:
            return False
        opened_at = self.opened_at.get(workload)
        if opened_at is None:       # preloaded from a journal: probe now
            return True
        return self._clock() - opened_at >= self.cooldown

    def record(self, workload: str, ok: bool) -> bool:
        """Fold one terminal job outcome in; True when this opens it."""
        if not self.enabled:
            return False
        if workload in self.probing:
            return self._record_probe(workload, ok)
        if ok:
            self.consecutive.pop(workload, None)
            self._set_gauge(workload, 0)
            return False
        streak = self.consecutive.get(workload, 0) + 1
        self.consecutive[workload] = streak
        if streak >= self.threshold and workload not in self.open_workloads:
            self._open(workload, streak)
            return True
        return False

    def _record_probe(self, workload: str, ok: bool) -> bool:
        """The half-open decision: one probe closes or re-opens."""
        self.probing.discard(workload)
        if ok:
            self.open_workloads.pop(workload, None)
            self.consecutive.pop(workload, None)
            self.opened_at.pop(workload, None)
            self._set_gauge(workload, 0)
            self._transition("breaker_reset", workload, cause="probe")
            if obs.enabled():
                obs.event("breaker.close", workload=workload)
            return False
        streak = self.consecutive.get(workload, 0) + 1
        self.consecutive[workload] = streak
        self.open_workloads.pop(workload, None)   # so _open re-records
        self._open(workload, streak, cause="probe")
        return True

    def _open(self, workload: str, streak: int, cause: str = "") -> None:
        self.open_workloads[workload] = streak
        self.opened_at[workload] = self._clock()
        self.opened += 1
        self._set_gauge(workload, 1)
        self._transition("breaker_open", workload, failures=streak,
                         **({"cause": cause} if cause else {}))
        if obs.enabled():
            obs.event("breaker.open", workload=workload, failures=streak)

    def preload(self, open_map: Dict[str, int]) -> None:
        """Adopt breakers a journal replay found open (crash survival)."""
        for workload, failures in open_map.items():
            if workload not in self.open_workloads:
                self.open_workloads[workload] = failures
                self._set_gauge(workload, 1)

    def reset(self, workload: Optional[str] = None) -> List[str]:
        """Close one breaker (or all); returns the workloads reset."""
        targets = ([workload] if workload is not None
                   else sorted(self.open_workloads))
        closed = []
        for name in targets:
            if name in self.open_workloads:
                del self.open_workloads[name]
                self.consecutive.pop(name, None)
                self.opened_at.pop(name, None)
                self.probing.discard(name)
                self._set_gauge(name, 0)
                closed.append(name)
        return closed

    def _transition(self, record_type: str, workload: str,
                    **extra: Any) -> None:
        record: Dict[str, Any] = {"type": record_type, "workload": workload}
        record.update(extra)
        self.transitions.append(record)

    def drain_transitions(self) -> List[Dict[str, Any]]:
        """Hand the queued transition records to whoever journals them."""
        drained, self.transitions = self.transitions, []
        return drained

    @staticmethod
    def _set_gauge(workload: str, value: int) -> None:
        if obs.enabled():
            obs.get_registry().gauge("breaker.state",
                                     workload=workload).set(value)

    def __repr__(self) -> str:
        return (f"<CircuitBreaker threshold={self.threshold} "
                f"open={sorted(self.open_workloads)}>")


def resolve_breaker_threshold(threshold: Optional[int] = None,
                              default: int = 0) -> int:
    """Threshold policy: explicit > ``REPRO_BREAKER_THRESHOLD`` > default."""
    if threshold is None:
        raw = os.environ.get(ENV_BREAKER_THRESHOLD, "").strip()
        threshold = int(raw) if raw else default
    if threshold < 0:
        raise ConfigError(
            f"breaker threshold must be >= 0, got {threshold}")
    return threshold


def resolve_breaker_cooldown(cooldown: Optional[float] = None,
                             default: Optional[float] = None,
                             ) -> Optional[float]:
    """Cooldown policy: explicit > ``REPRO_BREAKER_COOLDOWN`` > default.

    ``None`` means no half-open state (the legacy open-until-reset
    behavior); any value >= 0 arms the probe path.
    """
    if cooldown is None:
        raw = os.environ.get(ENV_BREAKER_COOLDOWN, "").strip()
        cooldown = float(raw) if raw else default
    if cooldown is not None and cooldown < 0:
        raise ConfigError(
            f"breaker cooldown must be >= 0, got {cooldown}")
    return cooldown


def resolve_supervise(supervise: Optional[bool] = None) -> bool:
    """Supervision policy: explicit > ``REPRO_SUPERVISE`` > off."""
    if supervise is not None:
        return supervise
    return os.environ.get(ENV_SUPERVISE, "").strip() in ("1", "true", "on")


def resolve_hang_timeout(timeout: Optional[float] = None,
                         default: float = DEFAULT_HANG_TIMEOUT) -> float:
    """Stall budget policy: explicit > ``REPRO_HANG_TIMEOUT`` > default."""
    if timeout is not None:
        return timeout
    raw = os.environ.get(ENV_HANG_TIMEOUT, "").strip()
    value = float(raw) if raw else default
    if value <= 0:
        raise ConfigError(f"hang timeout must be > 0, got {value}")
    return value


# -- the process-wide breaker the CLI arms ------------------------------
_current_breaker: Optional[CircuitBreaker] = None


def set_current_breaker(breaker: Optional[CircuitBreaker]) -> None:
    global _current_breaker
    _current_breaker = breaker


def get_current_breaker() -> Optional[CircuitBreaker]:
    return _current_breaker


# ----------------------------------------------------------------------
# Supervised worker pool
# ----------------------------------------------------------------------
def _supervised_worker(wid: int, tasks, conn,
                       heartbeat_interval: float) -> None:
    """Worker main: heartbeat thread + task loop (module-level for fork).

    Messages on ``conn`` (this worker's private pipe):
    ``("heartbeat", wid, ts)`` at a steady cadence while healthy,
    ``("result", wid, index, JobResult)`` per completed job.  The
    in-process ``send_lock`` serializes the two sending threads; unlike
    a shared queue's cross-process lock, it dies with the process, so a
    SIGKILL here can never wedge a sibling.  An injected hang
    (``hang_seconds > 0``) silences the heartbeat and stalls *before*
    running the job — the watchdog is expected to kill this process; if
    supervision is somehow off, the worker wakes up and runs the job
    anyway.
    """
    from .engine import _execute
    stop = threading.Event()
    hung = threading.Event()
    send_lock = threading.Lock()

    def send(message) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except Exception:                  # parent went away
            return False

    def beat() -> None:
        while not stop.is_set():
            if not hung.is_set():
                if not send(("heartbeat", wid, time.time())):
                    return
            stop.wait(heartbeat_interval)

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        while True:
            item = tasks.get()
            if item is None:
                break
            index, job, attempt, hang_seconds = item
            if hang_seconds > 0:
                hung.set()
                time.sleep(hang_seconds)
                hung.clear()
            if not send(("result", wid, index,
                         _execute(job, index, attempt))):
                break
    finally:
        stop.set()


class _WorkerState:
    """Parent-side view of one worker process."""

    def __init__(self, wid: int, process, tasks, conn):
        self.wid = wid
        self.process = process
        self.tasks = tasks
        self.conn = conn
        self.last_beat = time.time()
        #: the worker's pipe hit EOF (it exited or was killed mid-write)
        self.eof = False
        #: (index, job) currently dispatched, or None when idle
        self.current: Optional[Tuple[int, Any]] = None


class SupervisedPool:
    """A watched process pool: hung or dead workers are replaced live.

    Unlike :class:`~concurrent.futures.ProcessPoolExecutor`, every job's
    assignment to a worker is tracked exactly (one private task queue
    per worker), so a kill can name the job it lost with no races.
    """

    def __init__(self, workers: int, hang_factor: float = 4.0,
                 default_hang_timeout: Optional[float] = None,
                 heartbeat_interval: float = 0.05):
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if hang_factor <= 0:
            raise ConfigError(f"hang_factor must be > 0, got {hang_factor}")
        self.workers = workers
        self.hang_factor = hang_factor
        self.default_hang_timeout = resolve_hang_timeout(default_hang_timeout)
        self.heartbeat_interval = heartbeat_interval
        self.restarts = 0
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:                  # pragma: no cover - non-POSIX
            self._ctx = multiprocessing.get_context()
        self._next_wid = 0

    # ------------------------------------------------------------------
    def _spawn(self) -> _WorkerState:
        wid = self._next_wid
        self._next_wid += 1
        tasks = self._ctx.Queue()
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_supervised_worker,
            args=(wid, tasks, child_conn, self.heartbeat_interval),
            daemon=True)
        process.start()
        child_conn.close()                  # ours EOFs when the worker dies
        return _WorkerState(wid, process, tasks, parent_conn)

    def _hang_limit(self, job) -> float:
        timeout = job.timeout if job.timeout else self.default_hang_timeout
        return self.hang_factor * timeout

    def _replace(self, state: _WorkerState, states: Dict[int, "_WorkerState"],
                 reason: str) -> _WorkerState:
        """Kill one worker, account for it, and spawn its successor."""
        if state.process.is_alive():
            state.process.kill()
            state.process.join(timeout=2.0)
        state.tasks.close()
        state.tasks.cancel_join_thread()
        try:
            state.conn.close()
        except OSError:                     # pragma: no cover
            pass
        del states[state.wid]
        self.restarts += 1
        faults.recovered("engine.worker", "restart")
        if obs.enabled():
            obs.get_registry().counter("supervisor.restarts").inc()
            obs.event("supervisor.restart", wid=state.wid, reason=reason)
        replacement = self._spawn()
        states[replacement.wid] = replacement
        return replacement

    # ------------------------------------------------------------------
    def run(self, pairs: Sequence[Tuple[int, Any]], attempt: int = 0,
            on_result: Optional[Callable[[Any, int], None]] = None,
            should_stop: Optional[Callable[[], bool]] = None,
            ) -> Dict[int, Any]:
        """Run (index, job) pairs under supervision.

        Returns ``{index: JobResult}`` for every *dispatched* job —
        when ``should_stop`` trips mid-sweep, undispatched jobs are
        simply absent (the engine raises
        :class:`~repro.errors.RunInterrupted` from that).
        ``on_result`` fires in completion order, which is what lets the
        journal record ``job_done`` the moment it is true.
        """
        from .engine import JobResult
        states: Dict[int, _WorkerState] = {}
        for _ in range(min(self.workers, len(pairs))):
            state = self._spawn()
            states[state.wid] = state
        pending: List[Tuple[int, Any]] = list(pairs)
        done: Dict[int, Any] = {}
        stopping = False

        def settle(result, state: Optional[_WorkerState]) -> None:
            done[result.index] = result
            if state is not None:
                state.current = None
            if on_result is not None:
                on_result(result, attempt)

        try:
            while pending or any(s.current is not None
                                 for s in states.values()):
                if not stopping and should_stop is not None \
                        and should_stop():
                    stopping = True        # drain in-flight, dispatch none
                # -- dispatch to idle workers --------------------------
                if not stopping:
                    for state in list(states.values()):
                        if state.current is not None or not pending:
                            continue
                        index, job = pending.pop(0)
                        hang_seconds = 0.0
                        injector = faults.get()
                        if injector is not None:
                            event = injector.fire(
                                "worker.hang", key=f"{job.key}@{attempt}")
                            if event is not None:
                                hang_seconds = self._hang_limit(job) * 3 + 1
                                self._journal_fault(event)
                        state.tasks.put((index, job, attempt, hang_seconds))
                        state.current = (index, job)
                        state.last_beat = time.time()
                elif pending:
                    pending = []           # interrupted: drop the backlog
                # -- drain heartbeats and results ----------------------
                waitable = {s.conn: s for s in states.values() if not s.eof}
                if waitable:
                    ready = multiprocessing.connection.wait(
                        list(waitable), timeout=self.heartbeat_interval)
                else:                       # every pipe EOFed; watchdog only
                    ready = []
                    time.sleep(self.heartbeat_interval)
                for conn in ready:
                    state = waitable[conn]
                    try:
                        message = conn.recv()
                    except Exception:       # EOF or a kill-torn message
                        state.eof = True
                        continue
                    kind = message[0]
                    if kind == "heartbeat":
                        state.last_beat = message[2]
                    elif kind == "result":
                        settle(message[3], state)
                # -- watchdog scan -------------------------------------
                now = time.time()
                journal = durable.get_current_journal()
                if journal is not None:
                    # live telemetry for `repro top`; the writer
                    # throttles so this is one dict build per scan
                    try:
                        journal.status.update(workers={
                            str(s.wid): {
                                "age": round(now - s.last_beat, 3),
                                "job": s.current[1].key
                                if s.current else None}
                            for s in states.values()})
                    except Exception:
                        pass
                for state in list(states.values()):
                    if state.current is None:
                        continue
                    index, job = state.current
                    silent = now - state.last_beat
                    if silent > self._hang_limit(job):
                        settle(JobResult(
                            key=job.key, index=index,
                            error=f"worker hung (no heartbeat for "
                                  f"{silent:.1f}s); killed by supervisor"),
                            None)
                        self._replace(state, states, reason="hang")
                    elif not state.process.is_alive():
                        settle(JobResult(
                            key=job.key, index=index,
                            error=f"worker process died: exit "
                                  f"{state.process.exitcode}"), None)
                        self._replace(state, states, reason="died")
        finally:
            for state in states.values():
                try:
                    state.tasks.put(None)
                except Exception:          # pragma: no cover
                    pass
            for state in states.values():
                state.process.join(timeout=2.0)
                if state.process.is_alive():
                    state.process.kill()
                    state.process.join(timeout=1.0)
                state.tasks.close()
                state.tasks.cancel_join_thread()
                try:
                    state.conn.close()
                except OSError:             # pragma: no cover
                    pass
        return done

    @staticmethod
    def _journal_fault(event) -> None:
        """Persist an engine-level fault so it survives a later crash."""
        journal = durable.get_current_journal()
        if journal is not None:
            journal.append("fault_injected", site=event.site,
                           kind=event.kind, key=event.key,
                           ordinal=event.ordinal)
