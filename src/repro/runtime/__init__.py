"""Execution runtime: fan-out engine, artifact cache, profiling hooks.

Three layers (see DESIGN.md "Runtime engine"):

* :mod:`repro.runtime.engine` — process-pool job runner with
  deterministic result ordering, per-job timeouts, and worker-crash
  isolation;
* :mod:`repro.runtime.cache` — content-addressed on-disk memoization for
  compiled binaries, gadget-mining results, and measurement rows;
* :mod:`repro.runtime.profile` — per-phase wall-time records written as
  ``BENCH_*.json`` trajectory files by ``repro bench``.

:mod:`repro.runtime.artifacts` (imported explicitly, not re-exported
here) holds the cache-aware wrappers the experiment drivers call.

All three layers report through :mod:`repro.obs` when tracing is on:
the engine captures and merges per-job metrics/trace buffers, the cache
mirrors its hit/miss/eviction counters into the registry, and the
profiler's phases are spans (see DESIGN.md "Observability").
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    configure_cache,
    default_cache_dir,
    digest,
    get_cache,
)
from .durable import (
    JournalReplay,
    ResumeState,
    RunJournal,
    RunStatusWriter,
    list_runs,
    load_status,
    replay_journal,
    status_path,
    synthesize_status,
)
from .engine import (
    EngineError,
    ExperimentEngine,
    Job,
    JobResult,
    collect,
    get_default_engine,
    resolve_workers,
    set_default_engine,
)
from .profile import PhaseProfiler, PhaseRecord, write_bench_file
from .supervisor import CircuitBreaker, SupervisedPool

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "configure_cache",
    "default_cache_dir",
    "digest",
    "get_cache",
    "JournalReplay",
    "ResumeState",
    "RunJournal",
    "RunStatusWriter",
    "list_runs",
    "load_status",
    "replay_journal",
    "status_path",
    "synthesize_status",
    "EngineError",
    "ExperimentEngine",
    "Job",
    "JobResult",
    "collect",
    "get_default_engine",
    "resolve_workers",
    "set_default_engine",
    "PhaseProfiler",
    "PhaseRecord",
    "write_bench_file",
    "CircuitBreaker",
    "SupervisedPool",
]
