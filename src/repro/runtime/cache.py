"""Content-addressed on-disk artifact cache.

The expensive artifacts of the reproduction pipeline — compiled
:class:`~repro.compiler.fatbinary.FatBinary` images, Galileo gadget-mining
results, and measured-performance rows — are pure functions of their
inputs (source text, compiler tag, work parameter, config, seed).  This
module memoizes them on disk, keyed by a SHA-256 digest of a canonical
encoding of those inputs, so repeated ``repro experiment`` invocations
and the benchmark suite skip redundant work across *processes*, not just
within one.

Design points:

* **Content addressing** — :func:`digest` canonically encodes the key
  material (ints, floats, strings, bytes, tuples, dicts, dataclasses)
  with type tags before hashing, so the same logical key always produces
  the same digest in any process.  A schema version is folded in; bump
  :data:`CACHE_SCHEMA` when the pickled artifact formats change.
* **Atomic writes** — entries are written to a temp file and
  ``os.replace``-d into place, so concurrent writers (the fan-out
  engine's worker processes) can race safely: both write identical
  content and the last rename wins.
* **LRU size cap** — reads bump the entry's mtime; when the store
  exceeds ``max_bytes`` the oldest entries are evicted.
* **Corruption recovery** — every entry is framed with a SHA-256
  checksum of its pickled payload; a truncated, bit-flipped, or garbage
  entry fails verification (:class:`~repro.errors.CacheIntegrityError`
  internally), is *quarantined* under ``<root>/quarantine/`` for
  post-mortem, and is treated as a miss; the artifact is recomputed,
  never an exception.  The fault-injection subsystem
  (:mod:`repro.faults`) exercises exactly this path by flipping stored
  bytes at ``put`` time.
* **Escape hatches** — ``REPRO_NO_CACHE=1`` (or ``enabled=False``, or
  the CLI's ``--no-cache``) bypasses the store entirely;
  ``REPRO_CACHE_DIR`` relocates it (CI should point this at a scratch
  dir or disable it).
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import CacheIntegrityError
from ..faults import injection as _faults
from ..obs import context as _obs

#: bump when the on-disk pickle formats change incompatibly
#: (2: entries framed with a SHA-256 payload checksum)
CACHE_SCHEMA = 2

#: length of the checksum prefix framing every entry
_CHECKSUM_BYTES = 32

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"
ENV_CACHE_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"
ENV_QUARANTINE_MAX_BYTES = "REPRO_CACHE_QUARANTINE_MAX_BYTES"

DEFAULT_MAX_BYTES = 256 * 1024 * 1024
#: cap on the post-mortem quarantine area — under sustained
#: ``cache.flip_byte`` chaos it would otherwise grow without bound
DEFAULT_QUARANTINE_MAX_BYTES = 16 * 1024 * 1024


# ----------------------------------------------------------------------
# Canonical digests
# ----------------------------------------------------------------------
def _feed(hasher, obj: Any) -> None:
    """Feed one key component into the hash with an unambiguous encoding."""
    if obj is None:
        hasher.update(b"N;")
    elif obj is True or obj is False:
        hasher.update(b"b1;" if obj else b"b0;")
    elif isinstance(obj, int):
        encoded = str(obj).encode()
        hasher.update(b"i%d:%s;" % (len(encoded), encoded))
    elif isinstance(obj, float):
        encoded = repr(obj).encode()
        hasher.update(b"f%d:%s;" % (len(encoded), encoded))
    elif isinstance(obj, str):
        encoded = obj.encode("utf-8")
        hasher.update(b"s%d:" % len(encoded))
        hasher.update(encoded)
        hasher.update(b";")
    elif isinstance(obj, (bytes, bytearray)):
        hasher.update(b"y%d:" % len(obj))
        hasher.update(bytes(obj))
        hasher.update(b";")
    elif isinstance(obj, enum.Enum):
        _feed(hasher, (type(obj).__name__, obj.name))
    elif isinstance(obj, (tuple, list)):
        hasher.update(b"t%d[" % len(obj))
        for item in obj:
            _feed(hasher, item)
        hasher.update(b"];")
    elif isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        hasher.update(b"d%d{" % len(items))
        for key, value in items:
            _feed(hasher, key)
            _feed(hasher, value)
        hasher.update(b"};")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        hasher.update(b"D;")
        _feed(hasher, type(obj).__name__)
        _feed(hasher, dataclasses.asdict(obj))
    else:
        raise TypeError(
            f"cannot canonically digest {type(obj).__name__!r}; "
            f"pass plain data (or a dataclass of plain data) as key material")


def digest(*parts: Any) -> str:
    """SHA-256 hex digest of a canonical encoding of ``parts``.

    Stable across processes and Python invocations (no reliance on
    ``hash()``); includes the cache schema version.
    """
    hasher = hashlib.sha256()
    _feed(hasher, CACHE_SCHEMA)
    for part in parts:
        _feed(hasher, part)
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
class CacheStats:
    """Hit/miss/store/eviction counters, overall and per artifact kind."""

    _EVENTS = ("hits", "misses", "stores", "evictions", "corrupt",
               "bypasses", "quarantined")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0
        self.bypasses = 0
        self.quarantined = 0
        self.by_kind: Dict[str, Dict[str, int]] = {}

    def record(self, kind: str, event: str, count: int = 1) -> None:
        assert event in self._EVENTS, event
        setattr(self, event, getattr(self, event) + count)
        bucket = self.by_kind.setdefault(
            kind, {name: 0 for name in self._EVENTS})
        bucket[event] += count
        if _obs.enabled():
            # mirror into the observability registry: cache behaviour is
            # then part of every job capture and merges deterministically
            _obs.get_registry().counter("cache.events", kind=kind,
                                        event=event).inc(count)

    def export_to(self, registry) -> None:
        """Set gauges summarizing this stats object on ``registry``."""
        registry.gauge("cache.hit_rate").set(self.hit_rate)
        for name in self._EVENTS:
            registry.gauge(f"cache.total.{name}").set(getattr(self, name))

    def kind(self, kind: str) -> Dict[str, int]:
        return dict(self.by_kind.get(
            kind, {name: 0 for name in self._EVENTS}))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "bypasses": self.bypasses,
            "quarantined": self.quarantined,
            "hit_rate": round(self.hit_rate, 4),
            "by_kind": {kind: dict(events)
                        for kind, events in sorted(self.by_kind.items())},
        }

    def __repr__(self) -> str:
        return (f"<CacheStats hits={self.hits} misses={self.misses} "
                f"stores={self.stores} evictions={self.evictions}>")


_MISS = object()


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ArtifactCache:
    """On-disk pickle store addressed by content digest.

    Layout: ``<root>/<kind>/<digest>.pkl`` — one file per artifact, one
    directory per artifact kind (``binary``, ``gadgets``, ``measure``…).
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 max_bytes: Optional[int] = None,
                 enabled: Optional[bool] = None,
                 quarantine_max_bytes: Optional[int] = None):
        if root is None:
            root = os.environ.get(ENV_CACHE_DIR) or default_cache_dir()
        self.root = Path(root)
        if max_bytes is None:
            max_bytes = int(os.environ.get(ENV_CACHE_MAX_BYTES,
                                           DEFAULT_MAX_BYTES))
        self.max_bytes = max_bytes
        if quarantine_max_bytes is None:
            quarantine_max_bytes = int(
                os.environ.get(ENV_QUARANTINE_MAX_BYTES,
                               DEFAULT_QUARANTINE_MAX_BYTES))
        self.quarantine_max_bytes = quarantine_max_bytes
        if enabled is None:
            enabled = not os.environ.get(ENV_NO_CACHE)
        self.enabled = enabled
        self.stats = CacheStats()

    # -- paths ----------------------------------------------------------
    def path_for(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.pkl"

    def _entries(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return [path for path in self.root.glob("*/*.pkl")]

    def total_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def entry_count(self) -> int:
        return len(self._entries())

    # -- integrity ------------------------------------------------------
    @staticmethod
    def _frame(payload: bytes) -> bytes:
        """Prefix the pickled payload with its SHA-256 checksum."""
        return hashlib.sha256(payload).digest() + payload

    def _load_verified(self, path: Path) -> Any:
        """Read, checksum-verify, and unpickle one entry.

        Raises :class:`~repro.errors.CacheIntegrityError` on any damage
        — truncation, bit flips, stale formats — so the caller has one
        typed signal for "this entry cannot be trusted".
        """
        with open(path, "rb") as handle:
            raw = handle.read()
        if len(raw) <= _CHECKSUM_BYTES:
            raise CacheIntegrityError(path, "truncated below header")
        stored, payload = raw[:_CHECKSUM_BYTES], raw[_CHECKSUM_BYTES:]
        if hashlib.sha256(payload).digest() != stored:
            raise CacheIntegrityError(path, "checksum mismatch")
        try:
            return pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, TypeError,
                MemoryError) as exc:
            raise CacheIntegrityError(
                path, f"undecodable payload: {type(exc).__name__}") from exc

    def _quarantine(self, kind: str, path: Path) -> None:
        """Move a corrupt entry aside (post-mortem) instead of deleting.

        Quarantined entries use the ``.bad`` suffix so the ``*/*.pkl``
        entry glob — and therefore eviction and size accounting — never
        sees them again.  The quarantine area has its own LRU byte cap
        (``quarantine_max_bytes``), because sustained ``cache.flip_byte``
        chaos would otherwise grow it without bound.
        """
        target = self.root / "quarantine" / f"{kind}-{path.stem}.bad"
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            with contextlib.suppress(OSError):
                path.unlink()
        self.stats.record(kind, "quarantined")
        _faults.recovered("cache.put", "quarantine")
        self._evict_quarantine_to_fit(protect=target)
        if _obs.enabled():
            _obs.get_registry().gauge("cache.quarantine_bytes").set(
                float(self.quarantine_bytes()))

    def _quarantine_entries(self) -> List[Path]:
        quarantine_dir = self.root / "quarantine"
        if not quarantine_dir.is_dir():
            return []
        return list(quarantine_dir.glob("*.bad"))

    def quarantine_bytes(self) -> int:
        total = 0
        for path in self._quarantine_entries():
            with contextlib.suppress(OSError):
                total += path.stat().st_size
        return total

    def _evict_quarantine_to_fit(self, protect: Optional[Path] = None
                                 ) -> None:
        """Same mtime-LRU policy as live entries, over ``*.bad`` files."""
        if self.quarantine_max_bytes is None \
                or self.quarantine_max_bytes <= 0:
            return
        entries = []
        total = 0
        for path in self._quarantine_entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.quarantine_max_bytes:
            return
        entries.sort()                           # oldest mtime first
        for _mtime, size, path in entries:
            if total <= self.quarantine_max_bytes:
                break
            if protect is not None and path == protect:
                continue
            with contextlib.suppress(OSError):
                path.unlink()
                total -= size
                self.stats.record("quarantine", "evictions")

    def has_valid(self, kind: str, key: str) -> bool:
        """Journal↔cache cross-check: present *and* checksum-clean.

        Unlike :meth:`get` this never mutates the store (no quarantine,
        no recency bump, no stats) — it is the read-only verification
        ``repro resume`` runs over every ``job_done`` artifact key
        before trusting the journal's completed map.
        """
        path = self.path_for(kind, key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return False
        if len(raw) <= _CHECKSUM_BYTES:
            return False
        return hashlib.sha256(raw[_CHECKSUM_BYTES:]).digest() \
            == raw[:_CHECKSUM_BYTES]

    # -- core operations ------------------------------------------------
    def get(self, kind: str, key: str) -> Tuple[bool, Any]:
        """Look up one artifact; returns ``(hit, value)``."""
        if not self.enabled:
            self.stats.record(kind, "bypasses")
            return False, None
        path = self.path_for(kind, key)
        try:
            value = self._load_verified(path)
        except FileNotFoundError:
            self.stats.record(kind, "misses")
            return False, None
        except (OSError, CacheIntegrityError):
            # A damaged entry must fall back to recompute, never crash
            # the experiment; quarantine it for inspection.
            self.stats.record(kind, "corrupt")
            self.stats.record(kind, "misses")
            self._quarantine(kind, path)
            return False, None
        self.stats.record(kind, "hits")
        with contextlib.suppress(OSError):      # LRU recency bump
            os.utime(path)
        return True, value

    def put(self, kind: str, key: str, value: Any) -> None:
        """Store one artifact (atomic; a no-op when disabled)."""
        if not self.enabled:
            return
        path = self.path_for(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self._frame(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        fd, temp_name = tempfile.mkstemp(dir=str(path.parent),
                                         prefix=".tmp-", suffix=".pkl")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(temp_name)
            return                               # cache is best-effort
        self.stats.record(kind, "stores")
        self._maybe_inject_corruption(kind, key, path)
        self._evict_to_fit(protect=path)

    def _maybe_inject_corruption(self, kind: str, key: str,
                                 path: Path) -> None:
        """Chaos hook: flip one stored bit so the next read must recover."""
        injector = _faults.get()
        if injector is None:
            return
        event = injector.fire("cache.flip_byte", key=f"{kind}/{key[:16]}")
        if event is None:
            return
        rng = injector.rng_for(event)
        try:
            raw = bytearray(path.read_bytes())
            raw[rng.randrange(len(raw))] ^= 1 << rng.randrange(8)
            path.write_bytes(bytes(raw))
        except OSError:                          # pragma: no cover
            pass

    def get_or_compute(self, kind: str, key: str,
                       compute: Callable[[], Any]) -> Any:
        """The single code path callers use: hit, or compute-and-store."""
        hit, value = self.get(kind, key)
        if hit:
            return value
        value = compute()
        self.put(kind, key, value)
        return value

    # -- maintenance ----------------------------------------------------
    def _evict_to_fit(self, protect: Optional[Path] = None) -> None:
        if self.max_bytes is None or self.max_bytes <= 0:
            return
        entries = []
        total = 0
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        entries.sort()                           # oldest mtime first
        for _mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            if protect is not None and path == protect:
                continue                         # never evict the new entry
            with contextlib.suppress(OSError):
                path.unlink()
                total -= size
                self.stats.record(path.parent.name, "evictions")

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        return removed

    def export_to(self, registry) -> None:
        """Export stats gauges plus store-level sizes to ``registry``."""
        self.stats.export_to(registry)
        registry.gauge("cache.quarantine_bytes").set(
            float(self.quarantine_bytes()))

    @contextlib.contextmanager
    def bypass(self) -> Iterator[None]:
        """Temporarily disable the store (used for cold-path benchmarks).

        Also exports ``REPRO_NO_CACHE`` for the duration so engine worker
        processes forked inside the window inherit the bypass — otherwise
        a "cold" parallel sweep would quietly read the warm store.
        """
        previous = self.enabled
        previous_env = os.environ.get(ENV_NO_CACHE)
        self.enabled = False
        os.environ[ENV_NO_CACHE] = "1"
        try:
            yield
        finally:
            self.enabled = previous
            if previous_env is None:
                os.environ.pop(ENV_NO_CACHE, None)
            else:
                os.environ[ENV_NO_CACHE] = previous_env

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"<ArtifactCache {self.root} [{state}] {self.stats!r}>"


def default_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/repro-hipstr`` (or ``~/.cache/repro-hipstr``)."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro-hipstr"


# ----------------------------------------------------------------------
# Process-wide default instance
# ----------------------------------------------------------------------
_default_cache: Optional[ArtifactCache] = None


def get_cache() -> ArtifactCache:
    """The process-wide cache (created from the environment on first use)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = ArtifactCache()
    return _default_cache


def configure_cache(root: Optional[os.PathLike] = None,
                    max_bytes: Optional[int] = None,
                    enabled: Optional[bool] = None) -> ArtifactCache:
    """Replace the process-wide cache (CLI flags, test fixtures)."""
    global _default_cache
    _default_cache = ArtifactCache(root=root, max_bytes=max_bytes,
                                   enabled=enabled)
    return _default_cache
