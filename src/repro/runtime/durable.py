"""Crash-consistent durable runs: the write-ahead run journal.

A long sweep must survive the *orchestrator* dying, not just individual
jobs.  This module gives every ``repro`` invocation that opts in
(``--journal DIR`` / ``REPRO_JOURNAL``) a write-ahead journal: an
fsync'd JSONL file of schema-versioned records that the
:class:`~repro.runtime.engine.ExperimentEngine` appends to *before and
after* each job, plus a per-run artifact store holding the pickled
result of every completed job.  ``repro resume <run-id>`` replays the
journal, verifies the config digest and every completed job's artifact,
and re-runs the recorded command with the completed work served from
the store — a ``kill -9`` mid-sweep costs only the jobs that were in
flight, and the resumed results are byte-identical to an uninterrupted
run.

Record types (each carries ``seq``, ``type``, and the run's config
``digest``):

``run_started``      — header: schema, run id, argv, pid, created
``run_resumed``      — a resume attached to this journal
``job_enqueued``     — a job entered a sweep (``key``, ``occurrence``)
``job_started``      — a job began executing (``attempt``)
``job_done``         — a job finished ok (``artifact_key`` into the
                       run's result store)
``job_failed``       — one attempt failed (``error``, ``attempt``)
``breaker_open``     — a workload's circuit breaker opened
``breaker_half_open``— a cooled-down breaker admitted one probe job
``breaker_reset``    — a probe succeeded, or ``--force`` closed it
``fault_injected``   — an engine-level chaos fault fired (written
                       *before* ``orchestrator.kill`` pulls the trigger
                       so the kill is auditable across the crash)
``request_received`` — the serve layer admitted a request (``request_id``,
                       ``tenant``, ``spec_digest``)
``request_done``     — a request completed; its response body is in the
                       run's artifact store (``artifact_key``)
``request_failed``   — a request failed terminally with a typed error
``run_interrupted``  — SIGTERM drained the run cleanly
``run_finished``     — the command completed (``exit_code``)

**Torn-write recovery.**  The crash signature of ``kill -9`` is a
partial final line.  :func:`replay_journal` truncates a garbled *final*
record with a warning (counted in the ``journal.torn_records`` counter)
and carries on; a garbled record anywhere *else* is structural damage
and raises :class:`~repro.errors.JournalCorruptError`.

**Occurrences.**  One run may enqueue the same job key several times
(``repro bench`` sweeps the same jobs cold, populating, and warm), so
completion is tracked per ``(key, occurrence)`` where ``occurrence``
counts prior enqueues of that key within the run.  A resumed run
re-executes the same command deterministically, so occurrences line up
by construction.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import JournalCorruptError, ResumeMismatchError
from ..obs import context as obs
from .cache import ArtifactCache, digest

#: bump when the journal record layout changes incompatibly
JOURNAL_SCHEMA = 1

ENV_JOURNAL = "REPRO_JOURNAL"

#: artifact kind under which completed job values are stored
RESULT_KIND = "jobresult"

RECORD_TYPES = (
    "run_started", "run_resumed", "job_enqueued", "job_started",
    "job_done", "job_failed", "breaker_open", "breaker_half_open",
    "breaker_reset", "fault_injected", "request_received",
    "request_done", "request_failed", "run_interrupted", "run_finished",
)

#: artifact kind under which completed serve responses are stored
REQUEST_KIND = "requestresult"

_JOURNAL_SUFFIX = ".journal.jsonl"

#: bump when the live-status file layout changes incompatibly
STATUS_SCHEMA = 1

_STATUS_SUFFIX = ".status.json"


def config_digest(argv: List[str]) -> str:
    """Digest identifying one run configuration: the command line.

    A resumed run replays the journal's stored argv, so the digest
    recomputed at resume time must match the one every record carries —
    anything else means the journal was edited or the toolchain changed.
    """
    from .. import __version__
    return digest("run-config", __version__, list(argv))


def new_run_id() -> str:
    """Time-ordered unique id: ``YYYYmmdd-HHMMSS-xxxxxx``."""
    return (time.strftime("%Y%m%d-%H%M%S")
            + "-" + os.urandom(3).hex())


# ----------------------------------------------------------------------
# Live run status (`repro top`)
# ----------------------------------------------------------------------
def status_path(directory: os.PathLike, run_id: str) -> Path:
    return Path(directory) / f"{run_id}{_STATUS_SUFFIX}"


def load_status(directory: os.PathLike,
                run_id: str) -> Optional[Dict[str, Any]]:
    """Read a run's status file; ``None`` when absent or unreadable."""
    path = status_path(directory, run_id)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) \
            or payload.get("schema") != STATUS_SCHEMA:
        return None
    return payload


class RunStatusWriter:
    """Atomic, throttled status JSON alongside one run's journal.

    Pure telemetry: every file operation is best-effort (a full disk or
    permission error must never take down the run the status describes),
    writes go through tmp + ``os.replace`` so readers only ever see a
    complete document, and updates are merged immediately but written at
    most once per ``interval`` seconds unless forced.  Derived job
    counts (``running``/``pending``) are approximate across process
    boundaries — they're a health view, not the journal's ground truth.
    """

    def __init__(self, directory: os.PathLike, run_id: str,
                 interval: float = 0.5):
        self.path = status_path(directory, run_id)
        self.interval = interval
        self._lock = threading.Lock()
        self._last_write = 0.0
        self._state: Dict[str, Any] = {
            "schema": STATUS_SCHEMA,
            "run_id": run_id,
            "pid": os.getpid(),
            "state": "running",
            "argv": [],
            "started": time.time(),
            "updated": time.time(),
            "jobs": {"total": 0, "started": 0, "running": 0,
                     "pending": 0, "done": 0, "failed": 0},
            "workers": {},
            "breakers": {},
            "cache": {},
            "faults": {"injected": 0, "recovered": 0},
        }

    def update(self, force: bool = False, **fields: Any) -> None:
        """Merge ``fields`` now; write to disk when due (or forced)."""
        with self._lock:
            self._state.update(fields)
            now = time.time()
            if not force and now - self._last_write < self.interval:
                return
            self._state["updated"] = now
            self._last_write = now
            payload = json.dumps(self._state, sort_keys=True)
        tmp = self.path.parent / (self.path.name + ".tmp")
        try:
            tmp.write_text(payload + "\n")
            os.replace(tmp, self.path)
        except OSError:
            pass

    def note_record(self, record_type: str,
                    record: Dict[str, Any]) -> None:
        """Fold one journal record into the job/breaker/fault counts."""
        force = False
        with self._lock:
            jobs = self._state["jobs"]
            if record_type == "job_enqueued":
                jobs["total"] += 1
            elif record_type == "job_started":
                jobs["started"] += 1
            elif record_type == "job_done":
                jobs["done"] += 1
            elif record_type == "job_failed":
                jobs["failed"] += 1
            elif record_type == "breaker_open":
                self._state["breakers"][record.get("workload", "?")] = {
                    "state": "open",
                    "failures": int(record.get("failures", 0))}
            elif record_type == "breaker_half_open":
                self._state["breakers"][record.get("workload", "?")] = {
                    "state": "half-open",
                    "failures": int(record.get("failures", 0))}
            elif record_type == "breaker_reset":
                self._state["breakers"].pop(record.get("workload"), None)
            elif record_type in ("request_received", "request_done",
                                 "request_failed"):
                requests = self._state.setdefault(
                    "requests", {"received": 0, "done": 0, "failed": 0})
                slot = record_type[len("request_"):]
                requests[slot] = requests.get(slot, 0) + 1
            elif record_type == "fault_injected":
                self._state["faults"]["injected"] += 1
            elif record_type in ("run_started", "run_resumed"):
                self._state["argv"] = list(record.get("argv", [])) \
                    or self._state["argv"]
                self._state["pid"] = int(record.get("pid", os.getpid()))
                force = True
            elif record_type == "run_finished":
                self._state["state"] = "finished"
                force = True
            elif record_type == "run_interrupted":
                self._state["state"] = "interrupted"
                force = True
            settled = jobs["done"] + jobs["failed"]
            jobs["running"] = max(0, jobs["started"] - settled)
            jobs["pending"] = max(
                0, jobs["total"] - settled - jobs["running"])
        self.update(force=force)


def synthesize_status(replay: "JournalReplay") -> Dict[str, Any]:
    """Status-shaped view of a journal with no status file (old runs)."""
    head = replay.records[0] if replay.records else {}
    jobs = {"total": 0, "started": 0, "running": 0, "pending": 0,
            "done": 0, "failed": 0}
    faults = 0
    for record in replay.records:
        kind = record.get("type")
        if kind == "job_enqueued":
            jobs["total"] += 1
        elif kind == "job_started":
            jobs["started"] += 1
        elif kind == "job_done":
            jobs["done"] += 1
        elif kind == "job_failed":
            jobs["failed"] += 1
        elif kind == "fault_injected":
            faults += 1
    settled = jobs["done"] + jobs["failed"]
    jobs["running"] = max(0, jobs["started"] - settled)
    jobs["pending"] = max(0, jobs["total"] - settled - jobs["running"])
    return {
        "schema": STATUS_SCHEMA,
        "run_id": replay.run_id,
        "pid": int(head.get("pid", 0)),
        "state": replay.status(),
        "argv": list(replay.argv),
        "started": float(head.get("created", 0.0)),
        "updated": float(head.get("created", 0.0)),
        "jobs": jobs,
        "workers": {},
        "breakers": {workload: {"state": "open", "failures": failures}
                     for workload, failures
                     in sorted(replay.breaker_open.items())},
        "cache": {},
        "faults": {"injected": faults, "recovered": 0},
        "synthesized": True,
    }


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------
class RunJournal:
    """Append-only fsync'd JSONL journal plus the run's result store.

    Every :meth:`append` is durable before it returns: the record is
    written, flushed, and ``fsync``'d, so the journal never claims work
    that a crash can un-do.  Job values go to a *per-run*
    :class:`~repro.runtime.cache.ArtifactCache` under
    ``<dir>/<run_id>.artifacts/`` — deliberately separate from the
    global artifact cache so ``--no-cache`` sweeps stay resumable and a
    cache eviction cannot orphan a ``job_done`` record.
    """

    def __init__(self, directory: os.PathLike, run_id: str,
                 config: str, argv: Optional[List[str]] = None):
        self.directory = Path(directory)
        self.run_id = run_id
        self.config_digest = config
        self.argv = list(argv or [])
        self.path = self.directory / f"{run_id}{_JOURNAL_SUFFIX}"
        self.directory.mkdir(parents=True, exist_ok=True)
        self.store = ArtifactCache(
            root=self.directory / f"{run_id}.artifacts",
            max_bytes=0, enabled=True)
        self._handle = open(self.path, "ab")
        self._seq = 0
        self._occurrence: Dict[str, int] = {}
        self._lock = threading.Lock()
        #: live telemetry for `repro top` — best-effort, own lock
        self.status = RunStatusWriter(self.directory, run_id)
        self.status._state["argv"] = self.argv
        #: resume bookkeeping the CLI reports at the end of a run
        self.jobs_resumed = 0
        self.jobs_recomputed = 0
        self.records_written = 0
        self.closed = False

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, directory: os.PathLike, argv: List[str],
               run_id: Optional[str] = None) -> "RunJournal":
        run_id = run_id or new_run_id()
        journal = cls(directory, run_id, config_digest(argv), argv=argv)
        journal.append("run_started", schema=JOURNAL_SCHEMA,
                       run_id=run_id, argv=list(argv), pid=os.getpid(),
                       created=time.time())
        return journal

    @classmethod
    def resume(cls, directory: os.PathLike,
               replay: "JournalReplay") -> "RunJournal":
        """Reattach to an existing journal (already torn-line repaired)."""
        journal = cls(directory, replay.run_id, replay.config_digest,
                      argv=replay.argv)
        journal._seq = replay.next_seq
        journal.append("run_resumed", pid=os.getpid(),
                       created=time.time(),
                       completed=len(replay.completed),
                       torn_records=replay.torn_records)
        return journal

    # -- the write-ahead append ----------------------------------------
    def append(self, record_type: str, **payload: Any) -> Dict[str, Any]:
        assert record_type in RECORD_TYPES, record_type
        with self._lock:
            if self.closed:
                return {}
            record = {"seq": self._seq, "type": record_type,
                      "digest": self.config_digest}
            record.update(payload)
            self._seq += 1
            line = json.dumps(record, sort_keys=True) + "\n"
            self._handle.write(line.encode("utf-8"))
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self.records_written += 1
        if obs.enabled():
            obs.get_registry().counter("journal.records",
                                       type=record_type).inc()
        try:
            self.status.note_record(record_type, record)
        except Exception:
            pass                           # telemetry must never abort
        return record

    # -- job bookkeeping ------------------------------------------------
    def next_occurrence(self, key: str) -> int:
        """Per-run enqueue ordinal for ``key`` (see module docstring)."""
        with self._lock:
            ordinal = self._occurrence.get(key, 0)
            self._occurrence[key] = ordinal + 1
        return ordinal

    def artifact_key(self, key: str, occurrence: int) -> str:
        """Content address of one completed job's stored value."""
        return digest(RESULT_KIND, self.config_digest, key, occurrence)

    def store_result(self, key: str, occurrence: int, value: Any) -> str:
        """Persist a completed job's value; returns its artifact key.

        Best-effort on unpicklable values: the ``job_done`` record is
        still written, and resume simply recomputes that one job.
        """
        artifact_key = self.artifact_key(key, occurrence)
        try:
            self.store.put(RESULT_KIND, artifact_key, value)
        except Exception:                 # unpicklable value: recompute
            pass
        return artifact_key

    def finish(self, exit_code: int) -> None:
        self.append("run_finished", exit_code=int(exit_code))
        self.close()

    def close(self) -> None:
        with self._lock:
            if not self.closed:
                self.closed = True
                self._handle.close()

    def __repr__(self) -> str:
        return (f"<RunJournal {self.run_id} seq={self._seq} "
                f"at {self.path}>")


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass
class JournalReplay:
    """Everything a resume needs, recovered from one journal file."""

    path: Path
    run_id: str
    argv: List[str]
    config_digest: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: (key, occurrence) -> artifact_key for every completed job
    completed: Dict[Tuple[str, int], str] = field(default_factory=dict)
    #: workload -> consecutive terminal failures at breaker-open time
    breaker_open: Dict[str, int] = field(default_factory=dict)
    torn_records: int = 0
    finished: bool = False
    interrupted: bool = False
    next_seq: int = 0
    #: engine-level chaos faults recorded across crash boundaries
    fault_records: List[Dict[str, Any]] = field(default_factory=list)
    #: request_id -> final serve-layer record (``request_done`` or
    #: ``request_failed``) for every request that reached an outcome
    requests_settled: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: request_id -> ``request_received`` record for requests that were
    #: admitted but never settled (in flight at the crash)
    requests_pending: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def resumable(self) -> bool:
        return not self.finished

    def enqueued_count(self) -> int:
        return sum(1 for r in self.records if r["type"] == "job_enqueued")

    def status(self) -> str:
        if self.finished:
            return "finished"
        if self.interrupted:
            return "interrupted"
        return "crashed"


def journal_path(directory: os.PathLike, run_id: str) -> Path:
    return Path(directory) / f"{run_id}{_JOURNAL_SUFFIX}"


def replay_journal(path: os.PathLike, repair: bool = True) -> JournalReplay:
    """Read one journal back, repairing the crash signature.

    A partial/garbled *final* line is truncated (when ``repair``) and
    counted; anything structurally wrong elsewhere raises
    :class:`~repro.errors.JournalCorruptError`.  Records must share one
    config digest or :class:`~repro.errors.ResumeMismatchError` is
    raised — mixed digests mean the journal holds two different runs.
    """
    path = Path(path)
    raw = path.read_bytes()
    records: List[Dict[str, Any]] = []
    torn = 0
    good_bytes = 0
    offset = 0
    for chunk in raw.split(b"\n"):
        is_final = offset + len(chunk) >= len(raw)
        line = chunk.strip()
        if line:
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "type" not in record:
                    raise ValueError("not a record object")
            except ValueError as exc:
                if is_final:
                    torn += 1
                    break                      # crash signature: drop it
                raise JournalCorruptError(
                    path, f"garbled record at byte {offset}: {exc}"
                ) from None
            records.append(record)
        good_bytes = min(offset + len(chunk) + 1, len(raw))
        offset += len(chunk) + 1
    if torn and repair:
        with open(path, "r+b") as handle:
            handle.truncate(good_bytes)
    if torn and obs.enabled():
        obs.get_registry().counter("journal.torn_records").inc(torn)
        obs.event("journal.torn_record", path=str(path))

    if not records:
        raise JournalCorruptError(path, "no readable records")
    head = records[0]
    if head.get("type") != "run_started":
        raise JournalCorruptError(
            path, f"first record is {head.get('type')!r}, "
            f"expected 'run_started'")
    if head.get("schema") != JOURNAL_SCHEMA:
        raise JournalCorruptError(
            path, f"schema {head.get('schema')!r} not supported "
            f"(expected {JOURNAL_SCHEMA})")
    config = head.get("digest", "")
    for record in records:
        if record.get("type") not in RECORD_TYPES:
            raise JournalCorruptError(
                path, f"unknown record type {record.get('type')!r}")
        if record.get("digest") != config:
            raise ResumeMismatchError(
                f"journal {path} mixes config digests "
                f"({record.get('digest')!r} vs {config!r})")

    replay = JournalReplay(path=path, run_id=str(head.get("run_id", "")),
                           argv=list(head.get("argv", [])),
                           config_digest=config, records=records,
                           torn_records=torn,
                           next_seq=int(records[-1].get("seq", 0)) + 1)
    for record in records:
        kind = record["type"]
        if kind == "job_done":
            slot = (record["key"], int(record.get("occurrence", 0)))
            replay.completed[slot] = record.get("artifact_key", "")
        elif kind == "breaker_open":
            replay.breaker_open[record["workload"]] = \
                int(record.get("failures", 0))
        elif kind == "breaker_reset":
            replay.breaker_open.pop(record.get("workload"), None)
        elif kind == "fault_injected":
            replay.fault_records.append(record)
        elif kind == "request_received":
            replay.requests_pending[str(record.get("request_id", ""))] = \
                record
        elif kind in ("request_done", "request_failed"):
            request_id = str(record.get("request_id", ""))
            replay.requests_pending.pop(request_id, None)
            replay.requests_settled[request_id] = record
        elif kind == "run_finished":
            replay.finished = True
        elif kind == "run_interrupted":
            replay.interrupted = True
    return replay


def verify_resume_argv(replay: JournalReplay) -> None:
    """The journal↔command cross-check run before any replayed result
    is trusted: the stored argv must re-digest to the recorded digest."""
    recomputed = config_digest(replay.argv)
    if recomputed != replay.config_digest:
        raise ResumeMismatchError(
            f"journal {replay.path} records config digest "
            f"{replay.config_digest[:12]}… but its argv re-digests to "
            f"{recomputed[:12]}… — refusing to replay completed jobs")


# ----------------------------------------------------------------------
# Run listing
# ----------------------------------------------------------------------
@dataclass
class RunInfo:
    """One row of ``repro runs list``."""

    run_id: str
    status: str                 # finished | interrupted | crashed | corrupt
    jobs_done: int
    jobs_enqueued: int
    argv: List[str]
    created: float

    def render(self) -> str:
        command = " ".join(self.argv) if self.argv else "?"
        return (f"{self.run_id:<24} {self.status:<12} "
                f"{self.jobs_done}/{self.jobs_enqueued:<6} {command}")


def list_runs(directory: os.PathLike) -> List[RunInfo]:
    """Summaries of every journal under ``directory``, newest first."""
    directory = Path(directory)
    infos: List[RunInfo] = []
    if not directory.is_dir():
        return infos
    for path in sorted(directory.glob(f"*{_JOURNAL_SUFFIX}")):
        run_id = path.name[:-len(_JOURNAL_SUFFIX)]
        try:
            replay = replay_journal(path, repair=False)
        except (OSError, JournalCorruptError, ResumeMismatchError):
            infos.append(RunInfo(run_id=run_id, status="corrupt",
                                 jobs_done=0, jobs_enqueued=0, argv=[],
                                 created=0.0))
            continue
        head = replay.records[0]
        infos.append(RunInfo(
            run_id=replay.run_id or run_id, status=replay.status(),
            jobs_done=len(replay.completed),
            jobs_enqueued=replay.enqueued_count(),
            argv=replay.argv,
            created=float(head.get("created", 0.0))))
    infos.sort(key=lambda info: -info.created)
    return infos


def find_run(directory: os.PathLike, run_id: str) -> Path:
    """Resolve a run id (or unique prefix, or ``latest``) to its path."""
    directory = Path(directory)
    if run_id == "latest":
        runs = list_runs(directory)
        if not runs:
            raise FileNotFoundError(f"no runs under {directory}")
        return journal_path(directory, runs[0].run_id)
    exact = journal_path(directory, run_id)
    if exact.exists():
        return exact
    matches = [path for path in directory.glob(f"{run_id}*{_JOURNAL_SUFFIX}")]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise FileNotFoundError(
            f"no run {run_id!r} under {directory}")
    raise FileNotFoundError(
        f"run id {run_id!r} is ambiguous under {directory}: "
        f"{', '.join(sorted(p.name for p in matches))}")


# ----------------------------------------------------------------------
# Resume state (consumed by the engine)
# ----------------------------------------------------------------------
class ResumeState:
    """Completed-work map a resumed run serves jobs from.

    :meth:`load` is the journal↔cache cross-check: a ``job_done``
    record is only honoured when its artifact is present *and* passes
    the store's checksum verification; anything else falls back to
    recompute (counted in ``engine.jobs.recomputed``), never to a stale
    or corrupt value.
    """

    def __init__(self, replay: JournalReplay, store: ArtifactCache):
        self.replay = replay
        self.store = store
        #: set once the CLI has folded journaled fault_injected records
        #: back into the live metrics registry
        self.recounted = False

    def is_completed(self, key: str, occurrence: int) -> bool:
        return (key, occurrence) in self.replay.completed

    def load(self, key: str, occurrence: int) -> Tuple[bool, Any]:
        artifact_key = self.replay.completed.get((key, occurrence))
        if not artifact_key:
            return False, None
        return self.store.get(RESULT_KIND, artifact_key)


# ----------------------------------------------------------------------
# Process-wide current journal / resume state / interrupt flag
# ----------------------------------------------------------------------
_current_journal: Optional[RunJournal] = None
_resume_state: Optional[ResumeState] = None
_interrupted = False


def set_current_journal(journal: Optional[RunJournal]) -> None:
    global _current_journal
    _current_journal = journal


def get_current_journal() -> Optional[RunJournal]:
    return _current_journal


def set_resume_state(state: Optional[ResumeState]) -> None:
    global _resume_state
    _resume_state = state


def get_resume_state() -> Optional[ResumeState]:
    return _resume_state


def interrupt_requested() -> bool:
    return _interrupted


def request_interrupt() -> None:
    """Signal-safe: just flip the flag; the engine drains at the next
    job boundary (never mid-write)."""
    global _interrupted
    _interrupted = True


def clear_interrupt() -> None:
    global _interrupted
    _interrupted = False


def install_sigterm_handler() -> None:
    """Route SIGTERM into a graceful drain instead of dying mid-write."""
    if not hasattr(signal, "SIGTERM"):      # pragma: no cover
        return
    signal.signal(signal.SIGTERM, lambda signum, frame:
                  request_interrupt())
