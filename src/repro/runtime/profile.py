"""Per-phase profiling as a consumer of the observability span API.

The ``repro bench`` subcommand (and any test that wants a record) wraps
pipeline phases in a :class:`PhaseProfiler` and writes the result as a
``BENCH_<label>.json`` trajectory file: an ordered list of phases with
wall-clock seconds, arbitrary metadata (job counts, failure counts), and
the artifact-cache statistics observed over the run.

Timing comes from :class:`repro.obs.trace.Tracer` spans — the profiler
owns a private always-on tracer rather than a bespoke stopwatch, and
when global observability is enabled (``--trace``/``REPRO_TRACE``) each
phase is mirrored as a ``phase:<name>`` span into the ambient trace, so
a ``repro bench --trace`` run needs no second timing path.  The
``BENCH_*.json`` output schema is unchanged.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from ..obs import context as obs
from ..obs.trace import Tracer
from .cache import ArtifactCache


@dataclass
class PhaseRecord:
    """One timed phase of a benchmark run."""

    name: str
    seconds: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"name": self.name,
                                   "seconds": round(self.seconds, 6)}
        payload.update(self.meta)
        return payload


class PhaseProfiler:
    """Accumulates named phases; render with :meth:`as_dict`."""

    def __init__(self, label: str = "bench"):
        self.label = label
        self.phases: List[PhaseRecord] = []
        #: private span buffer — the single source of phase timing
        self.tracer = Tracer(enabled=True)

    @contextmanager
    def phase(self, name: str, **meta: Any) -> Iterator[PhaseRecord]:
        record = PhaseRecord(name=name, meta=dict(meta))
        mirror = obs.span(f"phase:{name}", **meta)   # no-op when off
        local = self.tracer.span(name, **meta)
        mirror.__enter__()
        span = local.__enter__()
        try:
            yield record
        finally:
            local.__exit__(None, None, None)
            mirror.__exit__(None, None, None)
            record.seconds = span.duration
            self.phases.append(record)

    def add(self, name: str, seconds: float, **meta: Any) -> PhaseRecord:
        record = PhaseRecord(name=name, seconds=seconds, meta=dict(meta))
        self.tracer.add_span(name, seconds, **meta)
        if obs.enabled():
            obs.get_tracer().add_span(f"phase:{name}", seconds, **meta)
        self.phases.append(record)
        return record

    def seconds_of(self, name: str) -> float:
        return sum(p.seconds for p in self.phases if p.name == name)

    def as_dict(self, cache: Optional[ArtifactCache] = None,
                **extra: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "label": self.label,
            "host": {"cpu_count": os.cpu_count() or 1},
            "phases": [record.as_dict() for record in self.phases],
            "total_seconds": round(sum(p.seconds for p in self.phases), 6),
        }
        if cache is not None:
            payload["cache"] = cache.stats.as_dict()
            payload["cache_dir"] = str(cache.root)
        payload.update(extra)
        return payload


def write_bench_file(payload: Dict[str, Any],
                     path: Optional[os.PathLike] = None,
                     directory: os.PathLike = ".") -> Path:
    """Write one ``BENCH_<label>.json`` trajectory file; returns its path."""
    if path is None:
        label = str(payload.get("label", "run")).replace(os.sep, "_")
        path = Path(directory) / f"BENCH_{label}.json"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
