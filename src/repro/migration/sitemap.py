"""Call-site index: native return addresses → IR call sites, per ISA.

The migration engine needs, for a native return address found in a
return-address slot: which function/block/call it belongs to, what is
live after the call (the values the frame must carry across migration),
and how wide the call's argument window is (to find the caller's frame
base).  This module precomputes that mapping from the extended symbol
table plus the IR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..compiler import ir
from ..compiler.liveness import live_after_each_instruction
from ..compiler.symtab import ExtendedSymbolTable
from ..errors import MigrationError


@dataclass(frozen=True)
class ResolvedSite:
    """One static call site, identified from a native return address."""

    function: str
    block: str
    #: index of this call among the block's calls, in source order
    ordinal: int
    #: position of the call instruction within the block
    instruction_index: int
    #: the IR call (ir.Call or ir.CallIndirect)
    call: ir.IRInstruction
    return_address: int


class CallSiteIndex:
    """Per-ISA maps from native return addresses to resolved call sites."""

    def __init__(self, symtab: ExtendedSymbolTable, program: ir.IRProgram):
        self.symtab = symtab
        self.program = program
        #: isa name -> return address -> ResolvedSite
        self._by_return: Dict[str, Dict[int, ResolvedSite]] = {}
        #: (function, block) -> cached live-after list
        self._live_cache: Dict[Tuple[str, str], List[frozenset]] = {}
        for info in symtab:
            fn = program.functions[info.name]
            calls_by_block = _ir_calls_by_block(fn)
            for isa_name, per_isa in info.per_isa.items():
                table = self._by_return.setdefault(isa_name, {})
                bounds = per_isa.block_bounds()
                per_block_sites: Dict[str, List] = {}
                for site in sorted(per_isa.call_sites,
                                   key=lambda s: s.address):
                    for label, start, end in bounds:
                        if start <= site.address < end:
                            per_block_sites.setdefault(label, []).append(site)
                            break
                for label, sites in per_block_sites.items():
                    ir_calls = calls_by_block.get(label, [])
                    if len(ir_calls) != len(sites):
                        raise MigrationError(
                            f"{info.name}/{label} on {isa_name}: "
                            f"{len(sites)} native call sites vs "
                            f"{len(ir_calls)} IR calls")
                    for ordinal, (site, (index, call)) in enumerate(
                            zip(sites, ir_calls)):
                        table[site.return_address] = ResolvedSite(
                            function=info.name,
                            block=label,
                            ordinal=ordinal,
                            instruction_index=index,
                            call=call,
                            return_address=site.return_address,
                        )

    def resolve(self, isa_name: str, return_address: int) -> Optional[ResolvedSite]:
        return self._by_return.get(isa_name, {}).get(return_address)

    def live_after_call(self, site: ResolvedSite) -> Tuple[str, ...]:
        """Values live immediately after the call (one-block look-ahead)."""
        key = (site.function, site.block)
        cached = self._live_cache.get(key)
        if cached is None:
            info = self.symtab.function(site.function)
            fn = self.program.functions[site.function]
            block = fn.block(site.block)
            cached = live_after_each_instruction(
                block, info.liveness[site.block].live_out)
            self._live_cache[key] = cached
        return tuple(sorted(cached[site.instruction_index]))

    def window_words(self, isa_name: str, site: ResolvedSite,
                     reloc_of: Callable) -> int:
        """Argument-window width of the call, in words.

        Direct calls use the callee's (ISA-invariant) randomized window;
        indirect calls use the canonical layout: one word per argument.
        """
        if isinstance(site.call, ir.Call):
            return reloc_of(site.call.function).arg_window_words
        return len(site.call.args)

    def sites_for(self, isa_name: str):
        return self._by_return.get(isa_name, {})


def _ir_calls_by_block(fn: ir.IRFunction) -> Dict[str, List[Tuple[int, ir.IRInstruction]]]:
    """(instruction index, call) pairs per block, in source order."""
    result: Dict[str, List[Tuple[int, ir.IRInstruction]]] = {}
    for block in fn.blocks:
        calls = [(index, instruction)
                 for index, instruction in enumerate(block.instructions)
                 if isinstance(instruction, (ir.Call, ir.CallIndirect))]
        if calls:
            result[block.label] = calls
    return result
