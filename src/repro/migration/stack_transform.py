"""PSR-aware cross-ISA stack transformation.

When HIPStR migrates a process, every frame on the stack was written by
code translated against the *source* ISA's relocation maps, and the code
that will run next was translated against the *target* ISA's maps.  This
module rewrites the machine state in place (Section 5.2: "we fetch the
object from its randomized location on one ISA and move it to its new
randomized location on the other ISA").

Two passes:

1. **Read/unwind (innermost → outermost).**  For each frame, read every
   live value at its source-ISA location.  Register-resident values of
   outer frames are recovered by unwinding: each frame's scattered
   callee-save slots hold its *caller's* register contents, so popping
   through the scatter reconstructs each frame's register view.
2. **Write/rebuild (outermost → innermost).**  Write stack-resident
   values at their target-ISA slots; maintain the register image inner
   frames will inherit, and materialise each frame's target-ISA scatter
   slots from its caller's register image — so that target-ISA epilogues
   gather exactly what the target-ISA callers expect.

Frame geometry (sizes, argument windows, fixed-local bases, return-slot
positions) is ISA-invariant by construction, so pointers into the stack
survive and the walk itself is ISA-agnostic.  All return addresses on the
stack are *source* addresses (the RAT discipline), which is what lets the
walk resolve each frame's suspended call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..compiler import ir
from ..compiler.symtab import ExtendedSymbolTable
from ..errors import MigrationError
from ..faults import injection as _faults
from ..isa.base import ISADescription, WORD_SIZE
from ..machine.cpu import CPUState
from ..machine.memory import Memory
from .sitemap import CallSiteIndex

#: safety bound on stack depth during the frame walk
MAX_FRAMES = 10_000


@dataclass
class FrameRecord:
    """One walked stack frame (innermost first)."""

    function: str
    base: int                        # absolute address of the frame base
    live_values: Tuple[str, ...]
    resume_address: int              # native address this frame resumes at


@dataclass
class TransformReport:
    """What one migration's state transformation did (cost-model input)."""

    frames: int = 0
    values_moved: int = 0
    registers_rebuilt: int = 0
    bytes_touched: int = 0


RelocProvider = Callable[[str], "RelocationMap"]  # noqa: F821 (doc only)


class StackTransformer:
    """Performs the in-place state transformation for one migration."""

    def __init__(self, symtab: ExtendedSymbolTable, program: ir.IRProgram,
                 site_index: CallSiteIndex):
        self.symtab = symtab
        self.program = program
        self.sites = site_index

    # ------------------------------------------------------------------
    # Frame walking
    # ------------------------------------------------------------------
    def walk_frames(self, isa_name: str, memory: Memory,
                    innermost: FrameRecord,
                    reloc_of: RelocProvider) -> List[FrameRecord]:
        """Walk from the innermost frame out to main's frame."""
        frames = [innermost]
        current = innermost
        for _ in range(MAX_FRAMES):
            reloc = reloc_of(current.function)
            ret_slot = current.base + reloc.total_data_size
            return_address = memory.read_word(ret_slot)
            site = self.sites.resolve(isa_name, return_address)
            if site is None:
                return frames         # returned into the crt0 stub: done
            window_words = self.sites.window_words(isa_name, site, reloc_of)
            caller_base = (ret_slot + WORD_SIZE
                           + WORD_SIZE * window_words)
            frames.append(FrameRecord(
                function=site.function,
                base=caller_base,
                live_values=self.sites.live_after_call(site),
                resume_address=return_address,
            ))
            current = frames[-1]
        raise MigrationError("frame walk did not terminate")

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def transform(self, source_cpu: CPUState, target_isa: ISADescription,
                  memory: Memory, frames: List[FrameRecord],
                  source_reloc_of: RelocProvider,
                  target_reloc_of: RelocProvider,
                  ) -> Tuple[CPUState, TransformReport]:
        """Rewrite every frame from source-ISA form to target-ISA form."""
        report = TransformReport()

        # ---- pass 1: read + unwind (innermost first) -------------------
        reg_state: Dict[int, int] = {
            index: source_cpu.get(index)
            for index in range(source_cpu.isa.num_registers)}
        frame_values: List[Dict[str, int]] = []
        for frame in frames:
            reloc = source_reloc_of(frame.function)
            values: Dict[str, int] = {}
            for name in frame.live_values:
                kind, where = reloc.location(name)
                if kind == "register":
                    values[name] = reg_state.get(where, 0)
                else:
                    values[name] = memory.read_word(frame.base + where)
                report.values_moved += 1
            frame_values.append(values)
            # Unwind: the frame's scatter slots hold its caller's registers.
            for register, slot in reloc.save_slots.items():
                reg_state[register] = memory.read_word(frame.base + slot)

        # ---- pass 2: write + rebuild (outermost first) ------------------
        # ``pending`` is the register image the next-inner frame inherits.
        injector = _faults.get()
        pending: Dict[int, int] = {}
        for frame, values in zip(reversed(frames), reversed(frame_values)):
            if injector is not None:
                # Chaos: die mid-rebuild, after some frames are already
                # rewritten in target-ISA form — the worst place to stop.
                # The migration engine's checkpoint must undo it all.
                event = injector.fire("transform.raise", key=frame.function)
                if event is not None:
                    injector.raise_fault(event)
            reloc = target_reloc_of(frame.function)
            # The frame's target-ISA scatter slots must hold its caller's
            # register image, which is exactly ``pending`` right now.
            for register, slot in reloc.save_slots.items():
                memory.write_word(frame.base + slot, pending.get(register, 0))
                report.bytes_touched += WORD_SIZE
            for name in frame.live_values:
                kind, where = reloc.location(name)
                if kind == "register":
                    pending[where] = values[name]
                else:
                    memory.write_word(frame.base + where, values[name])
                    report.bytes_touched += WORD_SIZE

        target_cpu = CPUState(target_isa)
        target_cpu.sp = source_cpu.sp
        target_cpu.cmp_value = source_cpu.cmp_value
        for register, value in pending.items():
            target_cpu.set(register, value)
        report.registers_rebuilt = len(pending)
        report.frames = len(frames)
        return target_cpu, report
