"""Migration-safety analysis — Figure 6 of the paper.

Prior work is migration-safe at only ~45% of basic blocks: a block is
*natively* safe when its live state maps cleanly between the two ISAs'
compiled forms without touching anything else — every live value occupies
the same storage class (register vs memory) on both ISAs, so the stack
needs no per-value rewriting.  With 8 allocatable registers on armlike
against 4 on x86like, class mismatches are common.

Section 5.2's *on-demand* migration transforms only the objects needed
until the next control transfer, raising safety to ~78%.  In this model a
block resists even on-demand migration when its needed set cannot be
bounded or localized before the transfer: it performs an indirect call
(unknown callee → unknown convention mid-flight), or it materialises a
pointer into the frame whose uses cannot be rewritten in flight
(address-of operations inside the block).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..compiler import ir
from ..compiler.fatbinary import FatBinary
from ..compiler.regalloc import allocate_registers
from ..isa import ARMLIKE, X86LIKE


@dataclass
class MigrationSafety:
    """Per-benchmark migration-safety percentages (Figure 6)."""

    benchmark: str
    total_blocks: int
    natively_safe: int
    ondemand_safe: int

    @property
    def native_fraction(self) -> float:
        return self.natively_safe / self.total_blocks if self.total_blocks else 0.0

    @property
    def ondemand_fraction(self) -> float:
        return self.ondemand_safe / self.total_blocks if self.total_blocks else 0.0


def classify_blocks(binary: FatBinary, benchmark: str = "") -> MigrationSafety:
    """Classify every block of the binary for migration safety."""
    total = 0
    native_safe = 0
    ondemand_safe = 0
    for info in binary.symtab:
        fn = binary.program.functions[info.name]
        x86_alloc = allocate_registers(fn, X86LIKE)
        arm_alloc = allocate_registers(fn, ARMLIKE)
        for block in fn.blocks:
            total += 1
            live_in = info.live_in(block.label)
            classes_match = all(
                (value in x86_alloc.registers)
                == (value in arm_alloc.registers)
                for value in live_in)
            if classes_match:
                native_safe += 1
            if _ondemand_transformable(block):
                ondemand_safe += 1
    return MigrationSafety(benchmark, total, native_safe, ondemand_safe)


def _ondemand_transformable(block: ir.IRBlock) -> bool:
    """True if the block's needed set is boundable until the transfer."""
    for instruction in block.instructions:
        if isinstance(instruction, ir.CallIndirect):
            return False
        if isinstance(instruction, ir.AddrOfLocal):
            return False
    return True


def directional_safety(binary: FatBinary,
                       benchmark: str = "") -> Dict[str, float]:
    """Per-direction safe fractions (x86→ARM and ARM→x86, Figure 6).

    The directions differ slightly: migrating *to* the register-rich ISA
    can always find room for register-resident values, while migrating to
    the register-poor one may need extra spill work on top of the
    on-demand transformation.  We model the to-x86 direction as also
    unsafe in blocks whose live set exceeds x86like's allocatable file.
    """
    safety = classify_blocks(binary, benchmark)
    to_arm = safety.ondemand_fraction
    penalized = 0
    total = 0
    for info in binary.symtab:
        fn = binary.program.functions[info.name]
        for block in fn.blocks:
            total += 1
            if not _ondemand_transformable(block):
                penalized += 1
                continue
            if len(info.live_in(block.label)) > len(X86LIKE.allocatable) * 3:
                penalized += 1
    to_x86 = (total - penalized) / total if total else 0.0
    return {"x86_to_arm": to_arm, "arm_to_x86": to_x86}
