"""The migration engine: one cross-ISA hand-off, end to end.

A migration happens at a *unit boundary* — a basic-block entry (for
performance-driven, phase-change migrations) or a call-return point (for
security-driven migrations on code-cache-missing returns).  The engine:

1. identifies the innermost frame from the migration kind and the native
   target address;
2. walks the stack through the source-address return slots;
3. runs the PSR-aware stack transformation (values, scatter slots,
   registers) from source-ISA form to target-ISA form;
4. rewrites every stacked return address from source-ISA text to the
   corresponding target-ISA call-return address;
5. produces the target CPU state, with the PC pointing at the target
   VM's translation of the resume point (translating on demand).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..compiler.fatbinary import FatBinary
from ..core.psr import PSRVirtualMachine
from ..errors import MigrationError, MigrationRollback
from ..faults import injection as _faults
from ..isa.base import Op, WORD_SIZE
from ..machine.cpu import CPUState
from ..machine.memory import Memory
from ..obs import SIZE_EDGES
from ..obs import context as obs
from .sitemap import CallSiteIndex, ResolvedSite
from .stack_transform import FrameRecord, StackTransformer, TransformReport

#: default bound on retained :class:`MigrationRecord`\ s — long
#: rerandomization runs migrate millions of times and must not
#: accumulate every record forever; running totals are kept separately
#: and are never dropped
DEFAULT_HISTORY_LIMIT = 4096


@dataclass
class MigrationRecord:
    """One completed migration (feeds statistics and the cost model)."""

    source_isa: str
    target_isa: str
    kind: str                       # "ret" | "block"
    native_target: int
    report: TransformReport


@dataclass
class _Checkpoint:
    """Pre-migration state: CPU image plus the mutable stack window.

    Every write a migration performs lands in ``[lo, lo + len(data))`` —
    scatter slots, value slots, and return-address slots all sit between
    the current stack pointer and the outermost frame's return slot — so
    restoring this window plus the CPU registers is an *exact* rollback.
    """

    cpu: CPUState
    lo: int
    data: bytes


class MigrationEngine:
    """Performs migrations between the two PSR virtual machines."""

    def __init__(self, binary: FatBinary,
                 vms: Dict[str, PSRVirtualMachine],
                 history_limit: Optional[int] = DEFAULT_HISTORY_LIMIT,
                 verify: bool = False):
        self.binary = binary
        self.vms = vms
        #: defensive mode: statically verify the binary before the
        #: first migration (CFG + cross-ISA consistency + symbolic
        #: equivalence + frame safety), refusing to move state over
        #: inconsistent maps or divergent text sections
        self.verify = verify
        self._verified = False
        self.sites = CallSiteIndex(binary.symtab, binary.program)
        self.transformer = StackTransformer(binary.symtab, binary.program,
                                            self.sites)
        #: bounded window of recent migrations (``history_limit=None``
        #: keeps everything — tests and short runs only)
        self.history: Deque[MigrationRecord] = deque(maxlen=history_limit)
        self._total_migrations = 0
        #: migrations that failed mid-transform and were rolled back
        self.rollback_count = 0
        self._direction_counts: Dict[Tuple[str, str], int] = {}
        #: per-ISA return address of the crt0 stub's call to main
        self._stub_returns = {
            isa_name: self._find_stub_return(isa_name)
            for isa_name in binary.sections}

    def _find_stub_return(self, isa_name: str) -> int:
        unit = self.binary.sections[isa_name]
        start = unit.address_of("_start")
        main = self.binary.symtab.function("main").entry(isa_name)
        for address, instruction in zip(unit.addresses, unit.instructions):
            if start <= address < main and instruction.op is Op.CALL:
                isa = unit.isa
                return address + len(isa.encode(instruction, address))
        raise MigrationError(f"no crt0 call to main found on {isa_name}")

    # ------------------------------------------------------------------
    def assert_verified(self) -> None:
        """Statically verify what a migration navigates by and moves.

        Runs the verifier's ``cfg`` and ``consistency`` passes (the
        metadata a stack walk reads) plus ``symequiv`` and
        ``framesafety`` (proof that the two ISA views really compute
        the same state at every equivalence point and that SP/frame
        invariants hold on every path) once, cached for the engine's
        lifetime, and raises :class:`~repro.errors.MigrationError` if
        they report any error: migrating over a broken stack map — or
        between semantically divergent text sections — silently
        corrupts the relocated state, so the hand-off must abort
        *before* any bytes move.
        """
        if self._verified:
            return
        from ..errors import VerificationError
        from ..staticcheck import verify_binary
        try:
            verify_binary(self.binary, passes=("cfg", "consistency",
                                               "symequiv", "framesafety"))
        except VerificationError as exc:
            raise MigrationError(
                f"refusing to migrate over an unverifiable binary: {exc}"
            ) from exc
        self._verified = True

    def migrate(self, source_isa: str, target_isa: str, cpu: CPUState,
                memory: Memory, native_target: int,
                kind: str) -> CPUState:
        """Transform state and return the ready-to-run target CPU."""
        if self.verify:
            self.assert_verified()
        with obs.span("migration", source=source_isa, target=target_isa,
                      kind=kind) as span:
            source_vm = self.vms[source_isa]
            target_vm = self.vms[target_isa]

            # Per-stage latency breakdown (walk / relocate / transform /
            # resume).  Measured unconditionally — four perf_counter
            # pairs per migration are noise next to the work — but only
            # emitted when observability is on.
            stage_seconds: Dict[str, float] = {}
            walk_start = time.perf_counter()
            innermost, target_resume = self._innermost_frame(
                source_isa, target_isa, cpu, native_target, kind)
            frames = self.transformer.walk_frames(
                source_isa, memory, innermost, source_vm.reloc_for)
            stage_seconds["walk"] = time.perf_counter() - walk_start

            # Everything up to here only *read* state.  From the first
            # return-address rewrite on, the stack is being mutated in
            # place — checkpoint the mutable window so any failure can
            # restore the pre-migration state exactly.
            checkpoint = self._checkpoint(cpu, memory, frames, source_vm)
            try:
                self._maybe_corrupt_stack(memory, checkpoint)
                relocate_start = time.perf_counter()
                self._rewrite_return_addresses(frames, memory, source_isa,
                                               target_isa, source_vm)
                stage_seconds["relocate"] = \
                    time.perf_counter() - relocate_start

                transform_start = time.perf_counter()
                target_cpu, report = self.transformer.transform(
                    cpu, target_vm.isa, memory, frames,
                    source_vm.reloc_for, target_vm.reloc_for)
                stage_seconds["transform"] = \
                    time.perf_counter() - transform_start
                if kind == "ret":
                    # The callee's return value is in flight in the source
                    # ISA's return register; hand it to the target ISA's.
                    target_cpu.set(target_vm.isa.return_reg,
                                   cpu.get(source_vm.isa.return_reg))

                resume_start = time.perf_counter()
                translated = target_vm.cache.peek(target_resume)
                if translated is None:
                    translated = target_vm.install_unit(target_resume)
                if translated is None:
                    raise MigrationError(
                        f"no translation for resume point {target_resume:#x}")
                target_cpu.pc = translated
                stage_seconds["resume"] = \
                    time.perf_counter() - resume_start
            except Exception as exc:
                self._rollback(checkpoint, cpu, memory)
                self.rollback_count += 1
                _faults.recovered("migration.transform", "rollback")
                if obs.enabled():
                    obs.get_registry().counter(
                        "migration.rollbacks", kind=kind).inc()
                if span is not None:
                    span.set(outcome="rollback")
                raise MigrationRollback(
                    f"migration {source_isa}->{target_isa} at "
                    f"{native_target:#x} rolled back: {exc}",
                    cause=type(exc).__name__, kind=kind) from exc

            record = MigrationRecord(source_isa, target_isa, kind,
                                     native_target, report)
            self._record(record, stage_seconds, span)
        return target_cpu

    # ------------------------------------------------------------------
    # Checkpoint / rollback
    # ------------------------------------------------------------------
    def _checkpoint(self, cpu: CPUState, memory: Memory,
                    frames: List[FrameRecord],
                    source_vm: PSRVirtualMachine) -> _Checkpoint:
        """Snapshot the CPU and the stack window a migration may write."""
        outermost = frames[-1]
        reloc = source_vm.reloc_for(outermost.function)
        hi = outermost.base + reloc.total_data_size + WORD_SIZE
        lo = cpu.sp
        size = max(hi - lo, 0)
        return _Checkpoint(cpu=cpu.copy(), lo=lo,
                           data=memory.read_bytes(lo, size) if size else b"")

    @staticmethod
    def _rollback(checkpoint: _Checkpoint, cpu: CPUState,
                  memory: Memory) -> None:
        """Restore the pre-migration CPU and stack window exactly."""
        if checkpoint.data:
            memory.write_bytes(checkpoint.lo, checkpoint.data)
        cpu.regs[:] = checkpoint.cpu.regs
        cpu.pc = checkpoint.cpu.pc
        cpu.cmp_value = checkpoint.cpu.cmp_value
        cpu.halted = checkpoint.cpu.halted

    def _maybe_corrupt_stack(self, memory: Memory,
                             checkpoint: _Checkpoint) -> None:
        """Chaos hook: rot one stack word mid-relocation, then fail.

        Models a detected corruption (e.g. a parity fault) during the
        hand-off: the word is genuinely scribbled, and the raised
        :class:`~repro.errors.FaultInjected` forces the rollback path to
        prove it restores the scribbled word along with everything else.
        """
        injector = _faults.get()
        if injector is None or len(checkpoint.data) < WORD_SIZE:
            return
        event = injector.fire("stack.corrupt_word")
        if event is None:
            return
        rng = injector.rng_for(event)
        words = len(checkpoint.data) // WORD_SIZE
        address = checkpoint.lo + WORD_SIZE * rng.randrange(words)
        memory.write_word(address, memory.read_word(address)
                          ^ (rng.getrandbits(31) | 1))
        injector.raise_fault(event)

    def _record(self, record: MigrationRecord,
                stage_seconds: Dict[str, float], span) -> None:
        """Retain the record (bounded) and bump the running statistics."""
        self.history.append(record)
        self._total_migrations += 1
        direction = (record.source_isa, record.target_isa)
        self._direction_counts[direction] = \
            self._direction_counts.get(direction, 0) + 1
        if not obs.enabled():
            return
        report = record.report
        if span is not None:
            span.set(frames=report.frames, values_moved=report.values_moved,
                     registers_rebuilt=report.registers_rebuilt,
                     bytes_copied=report.bytes_touched)
        registry = obs.get_registry()
        registry.counter("migrations", source=record.source_isa,
                         target=record.target_isa, kind=record.kind).inc()
        registry.histogram("migration.bytes_copied",
                           edges=SIZE_EDGES).observe(report.bytes_touched)
        registry.histogram("migration.frames",
                           edges=SIZE_EDGES).observe(report.frames)
        registry.histogram("migration.transform_seconds").observe(
            stage_seconds.get("transform", 0.0))
        tracer = obs.get_tracer()
        for stage in ("walk", "relocate", "transform", "resume"):
            seconds = stage_seconds.get(stage)
            if seconds is None:
                continue
            registry.histogram("migration.stage_seconds",
                               stage=stage).observe(seconds)
            # pre-measured child spans of the open migration span: the
            # latency breakdown flamegraphs and --critical-path read
            tracer.add_span(f"migration.{stage}", seconds)

    # ------------------------------------------------------------------
    def _innermost_frame(self, source_isa: str, target_isa: str,
                         cpu: CPUState, native_target: int,
                         kind: str) -> Tuple[FrameRecord, int]:
        """The innermost frame record plus the target-ISA resume address."""
        symtab = self.binary.symtab
        if kind == "ret":
            site = self.sites.resolve(source_isa, native_target)
            if site is None:
                raise MigrationError(
                    f"{native_target:#x} is not a call-return point")
            window = self.sites.window_words(
                source_isa, site, self.vms[source_isa].reloc_for)
            base = cpu.sp + WORD_SIZE * window
            counterpart = self._counterpart_return(site, target_isa)
            frame = FrameRecord(
                function=site.function,
                base=base,
                live_values=self.sites.live_after_call(site),
                resume_address=native_target,
            )
            return frame, counterpart
        if kind == "block":
            located = symtab.block_at(source_isa, native_target)
            if located is None:
                raise MigrationError(
                    f"{native_target:#x} is not a block entry")
            function, label = located
            info = symtab.function(function)
            if info.per_isa[source_isa].block_addresses[label] != native_target:
                raise MigrationError(
                    f"{native_target:#x} is mid-block; not migration-safe")
            frame = FrameRecord(
                function=function,
                base=cpu.sp,            # at block boundaries sp == base
                live_values=tuple(sorted(info.live_in(label))),
                resume_address=native_target,
            )
            return frame, info.per_isa[target_isa].block_addresses[label]
        raise MigrationError(f"unsupported migration kind {kind!r}")

    def _counterpart_return(self, site: ResolvedSite,
                            target_isa: str) -> int:
        """The same call site's return address in the target ISA's text."""
        target_site = self._site_by_identity(target_isa, site)
        return target_site.return_address

    def _site_by_identity(self, isa_name: str,
                          site: ResolvedSite) -> ResolvedSite:
        for candidate in self.sites.sites_for(isa_name).values():
            if (candidate.function == site.function
                    and candidate.block == site.block
                    and candidate.ordinal == site.ordinal):
                return candidate
        raise MigrationError(
            f"no {isa_name} counterpart for call site in "
            f"{site.function}/{site.block}#{site.ordinal}")

    def _rewrite_return_addresses(self, frames: List[FrameRecord],
                                  memory: Memory, source_isa: str,
                                  target_isa: str,
                                  source_vm: PSRVirtualMachine) -> None:
        """Point every stacked return address at the target ISA's text."""
        for frame in frames:
            reloc = source_vm.reloc_for(frame.function)
            slot = frame.base + reloc.total_data_size
            stored = memory.read_word(slot)
            site = self.sites.resolve(source_isa, stored)
            if site is not None:
                counterpart = self._site_by_identity(target_isa, site)
                memory.write_word(slot, counterpart.return_address)
            else:
                # the crt0 stub return of the outermost frame
                memory.write_word(slot, self._stub_returns[target_isa])

    # ------------------------------------------------------------------
    @property
    def migration_count(self) -> int:
        """Running total — unaffected by the bounded history window."""
        return self._total_migrations

    def count_by_direction(self) -> Dict[Tuple[str, str], int]:
        """Running per-direction totals (kept outside the history cap;
        the same counts surface as ``migrations{source,target,kind}``
        series in the metrics registry when tracing is on)."""
        return dict(self._direction_counts)
