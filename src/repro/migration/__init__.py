"""Cross-ISA execution migration: stack transformation and the engine."""

from .engine import MigrationEngine, MigrationRecord
from .sitemap import CallSiteIndex, ResolvedSite
from .stack_transform import FrameRecord, StackTransformer, TransformReport

__all__ = [
    "CallSiteIndex",
    "FrameRecord",
    "MigrationEngine",
    "MigrationRecord",
    "ResolvedSite",
    "StackTransformer",
    "TransformReport",
]
