"""Three-address intermediate representation for the multi-ISA compiler.

The IR is deliberately simple: functions made of basic blocks; each block
is a straight-line list of instructions ending in exactly one terminator
(``Jump``, ``Branch``, or ``Ret``).  Values are named virtual registers
(strings): parameters and locals keep their source names, temporaries are
``%tN``.  Every IR instruction exposes ``uses()``/``defs()`` so dataflow
analyses (liveness, the PSR look-ahead analysis) are generic.

Memory is byte-addressed like the machine; ``Load``/``Store`` move words,
``LoadByte``/``StoreByte`` move bytes.  Aggregates live either in the
frame (local arrays, via ``AddrOfLocal``) or in the data section (globals,
via ``AddrOfGlobal``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CompileError

#: IR binary operators (C semantics on 32-bit ints)
BINARY_OPERATORS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>")
#: IR comparison operators
COMPARE_OPERATORS = ("==", "!=", "<", "<=", ">", ">=")


class IRInstruction:
    """Base class for all IR instructions."""

    def uses(self) -> Tuple[str, ...]:
        return ()

    def defs(self) -> Tuple[str, ...]:
        return ()

    def is_terminator(self) -> bool:
        return False


@dataclass
class Const(IRInstruction):
    """dst = constant"""

    dst: str
    value: int

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = {self.value}"


@dataclass
class Move(IRInstruction):
    """dst = src"""

    dst: str
    src: str

    def uses(self):
        return (self.src,)

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = {self.src}"


@dataclass
class BinOp(IRInstruction):
    """dst = a <operator> b"""

    operator: str
    dst: str
    a: str
    b: str

    def __post_init__(self):
        if self.operator not in BINARY_OPERATORS:
            raise CompileError(f"bad binary operator {self.operator!r}")

    def uses(self):
        return (self.a, self.b)

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = {self.a} {self.operator} {self.b}"


@dataclass
class UnOp(IRInstruction):
    """dst = <operator> a   (operator in {'-', '~'})"""

    operator: str
    dst: str
    a: str

    def uses(self):
        return (self.a,)

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = {self.operator}{self.a}"


@dataclass
class Compare(IRInstruction):
    """dst = (a <relop> b) ? 1 : 0"""

    operator: str
    dst: str
    a: str
    b: str

    def __post_init__(self):
        if self.operator not in COMPARE_OPERATORS:
            raise CompileError(f"bad comparison operator {self.operator!r}")

    def uses(self):
        return (self.a, self.b)

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = {self.a} {self.operator} {self.b}"


@dataclass
class Load(IRInstruction):
    """dst = word at [address + offset]"""

    dst: str
    address: str
    offset: int = 0

    def uses(self):
        return (self.address,)

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = load [{self.address}+{self.offset}]"


@dataclass
class Store(IRInstruction):
    """word at [address + offset] = src"""

    address: str
    src: str
    offset: int = 0

    def uses(self):
        return (self.address, self.src)

    def __repr__(self):
        return f"store [{self.address}+{self.offset}] = {self.src}"


@dataclass
class LoadByte(IRInstruction):
    """dst = zero-extended byte at [address + offset]"""

    dst: str
    address: str
    offset: int = 0

    def uses(self):
        return (self.address,)

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = loadb [{self.address}+{self.offset}]"


@dataclass
class StoreByte(IRInstruction):
    """byte at [address + offset] = low byte of src"""

    address: str
    src: str
    offset: int = 0

    def uses(self):
        return (self.address, self.src)

    def __repr__(self):
        return f"storeb [{self.address}+{self.offset}] = {self.src}"


@dataclass
class AddrOfLocal(IRInstruction):
    """dst = address of a local array/variable in the current frame"""

    dst: str
    local: str

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = &{self.local}"


@dataclass
class AddrOfGlobal(IRInstruction):
    """dst = address of a data-section symbol"""

    dst: str
    symbol: str

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = &@{self.symbol}"


@dataclass
class AddrOfFunction(IRInstruction):
    """dst = entry address of a function (function pointer creation)"""

    dst: str
    function: str

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = &{self.function}()"


@dataclass
class Call(IRInstruction):
    """dst = function(args...)   (dst may be None for void use)"""

    function: str
    args: Tuple[str, ...]
    dst: Optional[str] = None

    def uses(self):
        return tuple(self.args)

    def defs(self):
        return (self.dst,) if self.dst else ()

    def __repr__(self):
        ret = f"{self.dst} = " if self.dst else ""
        return f"{ret}call {self.function}({', '.join(self.args)})"


@dataclass
class CallIndirect(IRInstruction):
    """dst = (*target)(args...) — call through a function pointer"""

    target: str
    args: Tuple[str, ...]
    dst: Optional[str] = None

    def uses(self):
        return (self.target,) + tuple(self.args)

    def defs(self):
        return (self.dst,) if self.dst else ()

    def __repr__(self):
        ret = f"{self.dst} = " if self.dst else ""
        return f"{ret}icall (*{self.target})({', '.join(self.args)})"


@dataclass
class SysCall(IRInstruction):
    """dst = syscall(number, args...) — at most 3 args"""

    number: str
    args: Tuple[str, ...]
    dst: Optional[str] = None

    def uses(self):
        return (self.number,) + tuple(self.args)

    def defs(self):
        return (self.dst,) if self.dst else ()

    def __repr__(self):
        ret = f"{self.dst} = " if self.dst else ""
        return f"{ret}syscall({self.number}; {', '.join(self.args)})"


@dataclass
class Jump(IRInstruction):
    """Unconditional transfer to another block."""

    target: str

    def is_terminator(self):
        return True

    def __repr__(self):
        return f"jump {self.target}"


@dataclass
class Branch(IRInstruction):
    """if (a <relop> b) goto then_target else goto else_target"""

    operator: str
    a: str
    b: str
    then_target: str
    else_target: str

    def __post_init__(self):
        if self.operator not in COMPARE_OPERATORS:
            raise CompileError(f"bad branch operator {self.operator!r}")

    def uses(self):
        return (self.a, self.b)

    def is_terminator(self):
        return True

    def __repr__(self):
        return (f"br {self.a} {self.operator} {self.b} ? "
                f"{self.then_target} : {self.else_target}")


@dataclass
class Ret(IRInstruction):
    """Return, optionally with a value."""

    src: Optional[str] = None

    def uses(self):
        return (self.src,) if self.src else ()

    def is_terminator(self):
        return True

    def __repr__(self):
        return f"ret {self.src or ''}".strip()


@dataclass
class IRBlock:
    """One basic block: label + instructions; last one is the terminator."""

    label: str
    instructions: List[IRInstruction] = field(default_factory=list)

    @property
    def terminator(self) -> IRInstruction:
        if not self.instructions or not self.instructions[-1].is_terminator():
            raise CompileError(f"block {self.label} lacks a terminator")
        return self.instructions[-1]

    def successors(self) -> Tuple[str, ...]:
        term = self.terminator
        if isinstance(term, Jump):
            return (term.target,)
        if isinstance(term, Branch):
            return (term.then_target, term.else_target)
        return ()

    def __repr__(self):
        return f"<IRBlock {self.label}: {len(self.instructions)} ins>"


@dataclass
class LocalVar:
    """A frame-allocated variable: scalar (4 bytes) or array."""

    name: str
    size: int = 4           # bytes
    is_array: bool = False


@dataclass
class IRFunction:
    """A compiled function: parameters, locals, and its blocks in layout order."""

    name: str
    params: List[str]
    blocks: List[IRBlock] = field(default_factory=list)
    locals: Dict[str, LocalVar] = field(default_factory=dict)

    def block(self, label: str) -> IRBlock:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(label)

    @property
    def entry(self) -> IRBlock:
        return self.blocks[0]

    def validate(self) -> None:
        """Check structural invariants; raises CompileError on violation."""
        labels = [blk.label for blk in self.blocks]
        if len(set(labels)) != len(labels):
            raise CompileError(f"{self.name}: duplicate block labels")
        label_set = set(labels)
        for blk in self.blocks:
            for i, ins in enumerate(blk.instructions):
                is_last = i == len(blk.instructions) - 1
                if ins.is_terminator() != is_last:
                    raise CompileError(
                        f"{self.name}/{blk.label}: terminator misplaced")
            for succ in blk.successors():
                if succ not in label_set:
                    raise CompileError(
                        f"{self.name}/{blk.label}: unknown successor {succ}")

    def all_values(self) -> List[str]:
        """Every value name referenced anywhere in the function."""
        seen: Dict[str, None] = {}
        for name in self.params:
            seen.setdefault(name)
        for blk in self.blocks:
            for ins in blk.instructions:
                for name in ins.defs():
                    seen.setdefault(name)
                for name in ins.uses():
                    seen.setdefault(name)
        return list(seen)

    def dump(self) -> str:
        lines = [f"function {self.name}({', '.join(self.params)})"]
        for local in self.locals.values():
            kind = f"[{local.size}]" if local.is_array else ""
            lines.append(f"  local {local.name}{kind}")
        for blk in self.blocks:
            lines.append(f"{blk.label}:")
            lines.extend(f"  {ins!r}" for ins in blk.instructions)
        return "\n".join(lines)


@dataclass
class GlobalVar:
    """A data-section symbol with optional initial bytes."""

    name: str
    size: int
    init: bytes = b""
    elem_size: int = 4       # 1 for char arrays, 4 for int data


@dataclass
class IRProgram:
    """A whole program: functions plus global data."""

    functions: Dict[str, IRFunction] = field(default_factory=dict)
    globals: Dict[str, GlobalVar] = field(default_factory=dict)
    entry: str = "main"

    def add_function(self, function: IRFunction) -> IRFunction:
        if function.name in self.functions:
            raise CompileError(f"duplicate function {function.name}")
        self.functions[function.name] = function
        return function

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise CompileError(f"duplicate global {var.name}")
        self.globals[var.name] = var
        return var

    def validate(self) -> None:
        for function in self.functions.values():
            function.validate()
            for blk in function.blocks:
                for ins in blk.instructions:
                    if isinstance(ins, Call) and ins.function not in self.functions:
                        raise CompileError(
                            f"{function.name}: call to unknown {ins.function}")
                    if (isinstance(ins, AddrOfFunction)
                            and ins.function not in self.functions):
                        raise CompileError(
                            f"{function.name}: address of unknown {ins.function}")
                    if (isinstance(ins, AddrOfGlobal)
                            and ins.symbol not in self.globals):
                        raise CompileError(
                            f"{function.name}: unknown global {ins.symbol}")
        if self.entry not in self.functions:
            raise CompileError(f"missing entry function {self.entry!r}")
