"""Lowering: mini-C AST → three-address IR.

Design notes:

* Scalars that are never address-taken become IR *values* (candidates for
  registers).  Arrays and address-taken scalars become *memory locals*
  pinned in the frame — exactly the split PSR's relocation map makes
  between relocatable slots and fixed slots (Figure 2 of the paper).
* Conditions lower to ``Branch`` directly when the expression is a
  comparison; otherwise the value is compared against zero.
* ``&&``/``||`` are evaluated without short-circuit (documented language
  deviation): both sides are normalised to 0/1 and combined bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..errors import CompileError
from . import minic as ast
from .ir import (
    AddrOfFunction,
    AddrOfGlobal,
    AddrOfLocal,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Compare,
    Const,
    GlobalVar,
    IRBlock,
    IRFunction,
    IRProgram,
    Jump,
    Load,
    LoadByte,
    LocalVar,
    Move,
    Ret,
    Store,
    StoreByte,
    SysCall,
    UnOp,
)

#: names treated as intrinsics rather than user function calls
INTRINSICS = {"syscall", "load", "store", "load8", "store8"}

_COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")
_NEGATED = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def lower_program(program: ast.Program, entry: str = "main") -> IRProgram:
    """Lower a parsed program to validated IR."""
    ir_program = IRProgram(entry=entry)
    function_names = {f.name for f in program.functions}

    for decl in program.globals:
        ir_program.add_global(_lower_global(decl))

    for function in program.functions:
        lowering = _FunctionLowering(function, function_names, ir_program)
        ir_program.add_function(lowering.lower())

    ir_program.validate()
    return ir_program


def compile_source(source: str, entry: str = "main") -> IRProgram:
    """Front-end convenience: parse and lower mini-C source."""
    return lower_program(ast.parse(source), entry)


def _lower_global(decl: ast.GlobalDecl) -> GlobalVar:
    length = decl.array_length if decl.array_length is not None else 1
    size = max(length * decl.elem_size, 1)
    init = b""
    if decl.init_string is not None:
        init = decl.init_string
        size = max(size, len(init))
    elif decl.init_values is not None:
        chunks = []
        for value in decl.init_values:
            value &= 0xFFFFFFFF
            if decl.elem_size == 1:
                chunks.append(bytes([value & 0xFF]))
            else:
                chunks.append(value.to_bytes(4, "little"))
        init = b"".join(chunks)
        size = max(size, len(init))
    # Round globals up to word size so word loads at the tail are in-bounds.
    size = (size + 3) // 4 * 4
    return GlobalVar(decl.name, size, init, elem_size=decl.elem_size)


@dataclass
class _LoopContext:
    break_label: str
    continue_label: str


class _FunctionLowering:
    def __init__(self, decl: ast.FunctionDecl, function_names: Set[str],
                 program: IRProgram):
        self.decl = decl
        self.function_names = function_names
        self.program = program
        self.fn = IRFunction(decl.name, list(decl.params))
        self.temp_counter = 0
        self.block_counter = 0
        self.current: Optional[IRBlock] = None
        self.loops: List[_LoopContext] = []
        #: locals that must live in memory (arrays + address-taken scalars)
        self.memory_locals: Set[str] = set()
        #: element size for indexable names (arrays)
        self.elem_sizes: Dict[str, int] = {}
        self.scalar_locals: Set[str] = set()

    # -- plumbing --------------------------------------------------------
    def new_temp(self) -> str:
        name = f"%t{self.temp_counter}"
        self.temp_counter += 1
        return name

    def new_block(self, hint: str) -> IRBlock:
        label = f"{self.decl.name}.{hint}{self.block_counter}"
        self.block_counter += 1
        block = IRBlock(label)
        self.fn.blocks.append(block)
        return block

    def emit(self, instruction) -> None:
        self.current.instructions.append(instruction)

    def const(self, value: int) -> str:
        temp = self.new_temp()
        self.emit(Const(temp, value))
        return temp

    @property
    def terminated(self) -> bool:
        ins = self.current.instructions
        return bool(ins) and ins[-1].is_terminator()

    # -- entry -----------------------------------------------------------
    def lower(self) -> IRFunction:
        self._scan_address_taken(self.decl.body)
        self.current = self.new_block("entry")
        for statement in self.decl.body:
            self._statement(statement)
            if self.terminated:
                # Anything after return/break in this block is dead; keep
                # lowering into a fresh unreachable block for simplicity.
                self.current = self.new_block("dead")
        if not self.terminated:
            self.emit(Ret())
        self._prune_unreachable()
        return self.fn

    def _scan_address_taken(self, statements: List[ast.Stmt]) -> None:
        """Pre-pass marking scalars whose address is taken."""
        def walk_expr(expr) -> None:
            if isinstance(expr, ast.AddrOf):
                if expr.name not in self.function_names:
                    self.memory_locals.add(expr.name)
            elif isinstance(expr, ast.Unary):
                walk_expr(expr.operand)
            elif isinstance(expr, ast.Binary):
                walk_expr(expr.left)
                walk_expr(expr.right)
            elif isinstance(expr, ast.Index):
                walk_expr(expr.index)
            elif isinstance(expr, ast.CallExpr):
                for arg in expr.args:
                    walk_expr(arg)

        def walk(stmts) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.DeclStmt) and stmt.init is not None:
                    walk_expr(stmt.init)
                elif isinstance(stmt, ast.AssignStmt):
                    walk_expr(stmt.value)
                elif isinstance(stmt, ast.IndexAssignStmt):
                    walk_expr(stmt.index)
                    walk_expr(stmt.value)
                elif isinstance(stmt, ast.IfStmt):
                    walk_expr(stmt.cond)
                    walk(stmt.then_body)
                    walk(stmt.else_body)
                elif isinstance(stmt, ast.WhileStmt):
                    walk_expr(stmt.cond)
                    walk(stmt.body)
                elif isinstance(stmt, ast.ReturnStmt) and stmt.value is not None:
                    walk_expr(stmt.value)
                elif isinstance(stmt, ast.ExprStmt):
                    walk_expr(stmt.expr)

        walk(statements)

    def _prune_unreachable(self) -> None:
        """Drop blocks no edge reaches (dead blocks created after returns)."""
        reachable: Set[str] = set()
        worklist = [self.fn.blocks[0].label]
        by_label = {blk.label: blk for blk in self.fn.blocks}
        while worklist:
            label = worklist.pop()
            if label in reachable:
                continue
            reachable.add(label)
            block = by_label[label]
            if not block.instructions or not block.instructions[-1].is_terminator():
                block.instructions.append(Ret())
            worklist.extend(block.successors())
        self.fn.blocks = [blk for blk in self.fn.blocks
                          if blk.label in reachable]

    # -- statements --------------------------------------------------------
    def _statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            self._declaration(stmt)
        elif isinstance(stmt, ast.AssignStmt):
            self._assignment(stmt)
        elif isinstance(stmt, ast.IndexAssignStmt):
            self._index_assignment(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._while(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                self.emit(Ret())
            else:
                self.emit(Ret(self._expression(stmt.value)))
        elif isinstance(stmt, ast.BreakStmt):
            if not self.loops:
                raise CompileError(f"{self.decl.name}: break outside loop")
            self.emit(Jump(self.loops[-1].break_label))
        elif isinstance(stmt, ast.ContinueStmt):
            if not self.loops:
                raise CompileError(f"{self.decl.name}: continue outside loop")
            self.emit(Jump(self.loops[-1].continue_label))
        elif isinstance(stmt, ast.ExprStmt):
            self._expression(stmt.expr, want_value=False)
        else:  # pragma: no cover
            raise CompileError(f"unhandled statement {stmt!r}")

    def _declaration(self, stmt: ast.DeclStmt) -> None:
        name = stmt.name
        if stmt.array_length is not None:
            size = stmt.array_length * stmt.elem_size
            self.fn.locals[name] = LocalVar(name, (size + 3) // 4 * 4, True)
            self.memory_locals.add(name)
            self.elem_sizes[name] = stmt.elem_size
            if stmt.init is not None:
                raise CompileError(f"{self.decl.name}: array initialisers "
                                   "are not supported for locals")
            return
        if name in self.memory_locals:     # address-taken scalar
            self.fn.locals[name] = LocalVar(name, 4, True)
            self.elem_sizes.setdefault(name, 4)
        else:
            self.scalar_locals.add(name)
        if stmt.init is not None:
            value = self._expression(stmt.init)
            self._write_scalar(name, value)
        elif name in self.memory_locals:
            self._write_scalar(name, self.const(0))

    def _write_scalar(self, name: str, value: str) -> None:
        if name in self.memory_locals:
            address = self.new_temp()
            self.emit(AddrOfLocal(address, name))
            self.emit(Store(address, value))
        else:
            self.emit(Move(name, value))

    def _read_scalar(self, name: str) -> str:
        if name in self.memory_locals:
            address = self.new_temp()
            self.emit(AddrOfLocal(address, name))
            result = self.new_temp()
            self.emit(Load(result, address))
            return result
        return name

    def _assignment(self, stmt: ast.AssignStmt) -> None:
        if (stmt.name in self.program.globals
                and stmt.name not in self.scalar_locals
                and stmt.name not in self.fn.locals
                and stmt.name not in self.fn.params):
            value = self._expression(stmt.value)
            address = self.new_temp()
            self.emit(AddrOfGlobal(address, stmt.name))
            self.emit(Store(address, value))
            return
        value = self._expression(stmt.value)
        self._write_scalar(stmt.name, value)

    def _index_assignment(self, stmt: ast.IndexAssignStmt) -> None:
        base, elem_size = self._indexable_base(stmt.name)
        index = self._expression(stmt.index)
        value = self._expression(stmt.value)
        address = self._scaled_address(base, index, elem_size)
        if elem_size == 1:
            self.emit(StoreByte(address, value))
        else:
            self.emit(Store(address, value))

    def _if(self, stmt: ast.IfStmt) -> None:
        then_block = self.new_block("then")
        else_block = self.new_block("else") if stmt.else_body else None
        join_block = self.new_block("join")
        self._condition(stmt.cond, then_block.label,
                        (else_block or join_block).label)
        self.current = then_block
        for inner in stmt.then_body:
            self._statement(inner)
            if self.terminated:
                break
        if not self.terminated:
            self.emit(Jump(join_block.label))
        if else_block is not None:
            self.current = else_block
            for inner in stmt.else_body:
                self._statement(inner)
                if self.terminated:
                    break
            if not self.terminated:
                self.emit(Jump(join_block.label))
        self.current = join_block

    def _while(self, stmt: ast.WhileStmt) -> None:
        head = self.new_block("loop")
        body = self.new_block("body")
        exit_block = self.new_block("exit")
        self.emit(Jump(head.label))
        self.current = head
        self._condition(stmt.cond, body.label, exit_block.label)
        self.current = body
        self.loops.append(_LoopContext(exit_block.label, head.label))
        for inner in stmt.body:
            self._statement(inner)
            if self.terminated:
                break
        self.loops.pop()
        if not self.terminated:
            self.emit(Jump(head.label))
        self.current = exit_block

    # -- conditions --------------------------------------------------------
    def _condition(self, expr: ast.Expr, then_label: str,
                   else_label: str) -> None:
        if isinstance(expr, ast.Binary) and expr.operator in _COMPARE_OPS:
            a = self._expression(expr.left)
            b = self._expression(expr.right)
            self.emit(Branch(expr.operator, a, b, then_label, else_label))
            return
        if isinstance(expr, ast.Unary) and expr.operator == "!":
            self._condition(expr.operand, else_label, then_label)
            return
        value = self._expression(expr)
        zero = self.const(0)
        self.emit(Branch("!=", value, zero, then_label, else_label))

    # -- expressions ---------------------------------------------------
    def _expression(self, expr: ast.Expr, want_value: bool = True) -> str:
        if isinstance(expr, ast.Num):
            return self.const(expr.value)
        if isinstance(expr, ast.Var):
            return self._variable(expr.name)
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Index):
            return self._index(expr)
        if isinstance(expr, ast.CallExpr):
            return self._call(expr, want_value)
        if isinstance(expr, ast.AddrOf):
            return self._address_of(expr)
        raise CompileError(f"unhandled expression {expr!r}")  # pragma: no cover

    def _variable(self, name: str) -> str:
        if (name in self.scalar_locals or name in self.fn.params
                or name in self.memory_locals):
            return self._read_scalar(name)
        if name in self.program.globals:
            address = self.new_temp()
            self.emit(AddrOfGlobal(address, name))
            result = self.new_temp()
            self.emit(Load(result, address))
            return result
        # An undeclared name: treat as a fresh scalar (C-ish laxness would
        # be a bug farm — make it a hard error instead).
        raise CompileError(f"{self.decl.name}: undeclared variable {name!r}")

    def _unary(self, expr: ast.Unary) -> str:
        if expr.operator == "!":
            value = self._expression(expr.operand)
            zero = self.const(0)
            result = self.new_temp()
            self.emit(Compare("==", result, value, zero))
            return result
        value = self._expression(expr.operand)
        result = self.new_temp()
        self.emit(UnOp("-" if expr.operator == "-" else "~", result, value))
        return result

    def _binary(self, expr: ast.Binary) -> str:
        if expr.operator in _COMPARE_OPS:
            a = self._expression(expr.left)
            b = self._expression(expr.right)
            result = self.new_temp()
            self.emit(Compare(expr.operator, result, a, b))
            return result
        if expr.operator in ("&&", "||"):
            a = self._normalize_bool(self._expression(expr.left))
            b = self._normalize_bool(self._expression(expr.right))
            result = self.new_temp()
            self.emit(BinOp("&" if expr.operator == "&&" else "|",
                            result, a, b))
            return result
        a = self._expression(expr.left)
        b = self._expression(expr.right)
        result = self.new_temp()
        self.emit(BinOp(expr.operator, result, a, b))
        return result

    def _normalize_bool(self, value: str) -> str:
        zero = self.const(0)
        result = self.new_temp()
        self.emit(Compare("!=", result, value, zero))
        return result

    def _indexable_base(self, name: str):
        """Resolve a name used with subscript → (base address value, elem size)."""
        if name in self.fn.locals and self.fn.locals[name].is_array:
            address = self.new_temp()
            self.emit(AddrOfLocal(address, name))
            return address, self.elem_sizes.get(name, 4)
        if (name in self.program.globals
                and name not in self.scalar_locals
                and name not in self.fn.params):
            address = self.new_temp()
            self.emit(AddrOfGlobal(address, name))
            return address, self.program.globals[name].elem_size
        # a pointer-valued scalar
        return self._read_scalar(name) if name in self.memory_locals \
            else self._variable_as_pointer(name), 4

    def _variable_as_pointer(self, name: str) -> str:
        if name in self.scalar_locals or name in self.fn.params:
            return name
        raise CompileError(f"{self.decl.name}: cannot index {name!r}")

    def _scaled_address(self, base: str, index: str, elem_size: int) -> str:
        if elem_size == 1:
            scaled = index
        else:
            four = self.const(elem_size)
            scaled = self.new_temp()
            self.emit(BinOp("*", scaled, index, four))
        address = self.new_temp()
        self.emit(BinOp("+", address, base, scaled))
        return address

    def _index(self, expr: ast.Index) -> str:
        base, elem_size = self._indexable_base(expr.name)
        index = self._expression(expr.index)
        address = self._scaled_address(base, index, elem_size)
        result = self.new_temp()
        if elem_size == 1:
            self.emit(LoadByte(result, address))
        else:
            self.emit(Load(result, address))
        return result

    def _call(self, expr: ast.CallExpr, want_value: bool) -> str:
        name = expr.name
        if name in INTRINSICS:
            return self._intrinsic(expr, want_value)
        args = tuple(self._expression(arg) for arg in expr.args)
        dst = self.new_temp() if want_value else None
        if name in self.function_names:
            self.emit(Call(name, args, dst))
        else:
            # calling through a variable holding a function pointer
            target = self._variable(name)
            self.emit(CallIndirect(target, args, dst))
        return dst or ""

    def _intrinsic(self, expr: ast.CallExpr, want_value: bool) -> str:
        name = expr.name
        args = [self._expression(arg) for arg in expr.args]
        if name == "syscall":
            if not 1 <= len(args) <= 4:
                raise CompileError("syscall takes 1..4 arguments")
            dst = self.new_temp() if want_value else None
            self.emit(SysCall(args[0], tuple(args[1:]), dst))
            return dst or ""
        if name == "load":
            result = self.new_temp()
            self.emit(Load(result, args[0]))
            return result
        if name == "load8":
            result = self.new_temp()
            self.emit(LoadByte(result, args[0]))
            return result
        if name == "store":
            self.emit(Store(args[0], args[1]))
            return ""
        if name == "store8":
            self.emit(StoreByte(args[0], args[1]))
            return ""
        raise CompileError(f"unknown intrinsic {name}")  # pragma: no cover

    def _address_of(self, expr: ast.AddrOf) -> str:
        name = expr.name
        result = self.new_temp()
        if name in self.function_names:
            self.emit(AddrOfFunction(result, name))
        elif name in self.fn.locals:
            self.emit(AddrOfLocal(result, name))
        elif name in self.program.globals:
            self.emit(AddrOfGlobal(result, name))
        else:
            raise CompileError(f"{self.decl.name}: cannot take address of "
                               f"{name!r}")
        return result


