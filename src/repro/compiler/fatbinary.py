"""Fat binary: compile an IR program for both ISAs and link the result.

The fat binary is "symmetrical" in the paper's sense (Section 3.2): one
code section per ISA, a single ISA-agnostic data section, a common stack
frame organization, and an extended symbol table describing the program
state at every basic block.  Both text sections are produced from the same
IR with the same frame layout, so a stack frame built by x86like code is
navigable by the armlike metadata and vice versa — which is what makes
cross-ISA program-state relocation possible at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa.armlike import ARMLIKE
from ..isa.assembler import AssembledUnit, Assembler
from ..isa.base import Imm, Instruction, ISADescription, Label, Op, Reg
from ..isa.x86like import X86LIKE
from ..machine.process import Layout, ProcessImage
from ..machine.syscalls import Sys
from .codegen import make_codegen
from .frames import build_frame_layout
from .ir import IRProgram
from .liveness import compute_liveness
from .lowering import compile_source
from .regalloc import allocate_registers
from .symtab import CallSite, ExtendedSymbolTable, FunctionInfo, ISAFunctionInfo

START_SYMBOL = "_start"


@dataclass
class FatBinary:
    """The linked multi-ISA program."""

    program: IRProgram
    sections: Dict[str, AssembledUnit]
    data: bytes
    global_addresses: Dict[str, int]
    symtab: ExtendedSymbolTable

    @property
    def isa_names(self) -> List[str]:
        return list(self.sections)

    def text(self, isa_name: str) -> bytes:
        return self.sections[isa_name].data

    def entry(self, isa_name: str) -> int:
        return self.sections[isa_name].address_of(START_SYMBOL)

    def address_of(self, isa_name: str, symbol: str) -> int:
        return self.sections[isa_name].address_of(symbol)

    def to_process_image(self) -> ProcessImage:
        return ProcessImage(
            code_sections={name: unit.data
                           for name, unit in self.sections.items()},
            data=self.data,
            entry_points={name: self.entry(name) for name in self.sections},
        )


def link_data_section(program: IRProgram,
                      base: int = Layout.DATA_BASE) -> Tuple[bytes, Dict[str, int]]:
    """Lay out globals in the common data section."""
    addresses: Dict[str, int] = {}
    chunks: List[bytes] = []
    cursor = base
    for var in program.globals.values():
        addresses[var.name] = cursor
        payload = var.init[:var.size].ljust(var.size, b"\x00")
        chunks.append(payload)
        cursor += var.size
    return b"".join(chunks), addresses


def _emit_start(asm: Assembler, isa: ISADescription) -> None:
    """The crt0 stub: call main, then exit(main's return value)."""
    asm.label(START_SYMBOL)
    asm.emit(Instruction(Op.CALL, (Label("main"),)))
    if isa.syscall_arg_regs[0] != isa.return_reg:
        asm.emit(Instruction(
            Op.MOV, (Reg(isa.syscall_arg_regs[0]), Reg(isa.return_reg))))
    asm.emit(Instruction(Op.MOV,
                         (Reg(isa.syscall_number_reg), Imm(int(Sys.EXIT)))))
    asm.emit(Instruction(Op.SYSCALL))
    asm.emit(Instruction(Op.HLT))


def compile_program(program: IRProgram,
                    isas: Optional[List[ISADescription]] = None,
                    verify: bool = False) -> FatBinary:
    """Compile IR for every ISA and link the fat binary.

    With ``verify=True`` the linked binary is handed to the static
    verifier (:mod:`repro.staticcheck`) and rejected — by raising
    :class:`~repro.errors.VerificationError` — if any ERROR-severity
    finding is produced.
    """
    if isas is None:
        isas = [X86LIKE, ARMLIKE]
    program.validate()
    data, global_addresses = link_data_section(program)

    # Per-function, cross-ISA decisions first: the union of spilled values
    # determines the shared frame layout.
    allocations = {isa.name: {} for isa in isas}
    layouts = {}
    for fn in program.functions.values():
        per_isa_alloc = {isa.name: allocate_registers(fn, isa) for isa in isas}
        spill_union: List[str] = []
        seen = set()
        for value in fn.all_values():
            for isa in isas:
                if value in per_isa_alloc[isa.name].spilled and value not in seen:
                    spill_union.append(value)
                    seen.add(value)
        layouts[fn.name] = build_frame_layout(fn, spill_union)
        for isa in isas:
            allocations[isa.name][fn.name] = per_isa_alloc[isa.name]

    liveness = {fn.name: compute_liveness(fn)
                for fn in program.functions.values()}

    sections: Dict[str, AssembledUnit] = {}
    generated: Dict[str, Dict[str, object]] = {}
    for isa in isas:
        asm = Assembler(isa)
        _emit_start(asm, isa)
        per_fn = {}
        for fn in program.functions.values():
            codegen = make_codegen(
                isa, fn, program, allocations[isa.name][fn.name],
                layouts[fn.name], global_addresses, asm)
            per_fn[fn.name] = codegen.generate()
        base = Layout.CODE_BASES[isa.name]
        sections[isa.name] = asm.assemble(base)
        generated[isa.name] = per_fn

    symtab = _build_symtab(program, isas, sections, generated,
                           allocations, layouts, liveness)
    binary = FatBinary(program, sections, data, global_addresses, symtab)
    if verify:
        from ..staticcheck import verify_binary
        verify_binary(binary)
    return binary


def compile_minic(source: str, entry: str = "main",
                  isas: Optional[List[ISADescription]] = None,
                  verify: bool = False) -> FatBinary:
    """One-call pipeline: mini-C source → fat binary."""
    return compile_program(compile_source(source, entry), isas, verify=verify)


def _build_symtab(program, isas, sections, generated, allocations, layouts,
                  liveness) -> ExtendedSymbolTable:
    symtab = ExtendedSymbolTable()
    function_names = list(program.functions)
    for fn in program.functions.values():
        info = FunctionInfo(
            name=fn.name,
            params=list(fn.params),
            layout=layouts[fn.name],
            liveness=liveness[fn.name],
            block_order=[blk.label for blk in fn.blocks],
        )
        for isa in isas:
            unit = sections[isa.name]
            entry = unit.address_of(fn.name)
            end = _function_end(unit, fn.name, function_names)
            block_addresses = {
                blk.label: unit.address_of(blk.label) for blk in fn.blocks}
            per_isa = ISAFunctionInfo(
                isa_name=isa.name,
                entry=entry,
                end=end,
                block_addresses=block_addresses,
                saved_registers=list(
                    generated[isa.name][fn.name].saved_registers),
                register_assignment=dict(
                    allocations[isa.name][fn.name].registers),
            )
            per_isa.call_sites = _scan_call_sites(unit, entry, end)
            info.per_isa[isa.name] = per_isa
        symtab.add(info)
    return symtab


def _function_end(unit: AssembledUnit, name: str,
                  function_names: List[str]) -> int:
    """End address = start of the next function symbol, or section end."""
    start = unit.address_of(name)
    candidates = [unit.address_of(other) for other in function_names
                  if unit.address_of(other) > start]
    return min(candidates) if candidates else unit.end_address


def _scan_call_sites(unit: AssembledUnit, start: int, end: int) -> List[CallSite]:
    sites: List[CallSite] = []
    isa = unit.isa
    for address, instruction in zip(unit.addresses, unit.instructions):
        if not start <= address < end:
            continue
        if instruction.op in (Op.CALL, Op.ICALL):
            size = len(isa.encode(instruction, address))
            target = None
            if instruction.op is Op.CALL:
                operand = instruction.operands[0]
                if isinstance(operand, Imm):
                    target = operand.value
            sites.append(CallSite(
                address=address,
                return_address=address + size,
                kind="call" if instruction.op is Op.CALL else "icall",
                target=target,
            ))
    return sites
