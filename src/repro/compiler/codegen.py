"""Code generation: IR → target instructions for both ISAs.

One :class:`CodeGenerator` subclass per ISA.  Both follow the common
multi-ISA ABI (see :mod:`repro.compiler.frames`): arguments on the stack,
callee-saved register discipline (prologue pushes / epilogue pops — the
classic source of ``pop r; ret`` ROP gadget material the paper's attack
analysis feeds on), and identical frame-data layout across ISAs.

Scratch registers (``isa.scratch``) are strictly instruction-local: no
value lives in a scratch register across IR instructions, which is what
keeps every block boundary an equivalence point for migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import CompileError
from ..isa.armlike import ARMLIKE, fits_imm16
from ..isa.assembler import Assembler
from ..isa.base import (
    Cond,
    Imm,
    Instruction,
    ISADescription,
    Label,
    Mem,
    Op,
    Reg,
    to_signed,
)
from ..isa.x86like import EAX, ECX, EDX, X86LIKE
from . import ir
from .frames import FrameLayout
from .regalloc import Allocation

_RELOP_TO_COND = {
    "==": Cond.EQ, "!=": Cond.NE, "<": Cond.LT,
    "<=": Cond.LE, ">": Cond.GT, ">=": Cond.GE,
}

_BINOP_TO_OP = {
    "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.MOD,
    "&": Op.AND, "|": Op.OR, "^": Op.XOR, "<<": Op.SHL, ">>": Op.SAR,
}


@dataclass
class GeneratedFunction:
    """Codegen byproducts needed by the fat-binary linker/symbol table."""

    name: str
    saved_registers: List[int]          # prologue-pushed regs (not LR)
    block_labels: List[str]             # IR block labels, in emission order


class CodeGenerator:
    """Base generator; subclasses supply ISA-specific instruction selection."""

    isa: ISADescription

    def __init__(self, fn: ir.IRFunction, program: ir.IRProgram,
                 allocation: Allocation, layout: FrameLayout,
                 global_addresses: Dict[str, int], asm: Assembler):
        self.fn = fn
        self.program = program
        self.allocation = allocation
        self.layout = layout
        self.global_addresses = global_addresses
        self.asm = asm
        self._sp_adjust = 0
        self._label_counter = 0
        self.saved_registers = sorted(set(allocation.registers.values()))
        s = self.isa.scratch
        self.s0, self.s1, self.s2 = s[0], s[1], s[2]

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------
    def emit(self, op: Op, *operands, cond: Optional[Cond] = None) -> None:
        self.asm.emit(Instruction(op, tuple(operands), cond))

    def local_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{self.fn.name}.{hint}.{self._label_counter}"

    def slot(self, value: str) -> Mem:
        """Frame slot of a spilled value, adjusted for in-flight pushes."""
        return Mem(self.isa.sp, self.layout.slot_of(value) + self._sp_adjust)

    def loc(self, value: str):
        """Current location of a value: Reg or frame Mem."""
        reg = self.allocation.registers.get(value)
        if reg is not None:
            return Reg(reg)
        return self.slot(value)

    def fetch(self, value: str, scratch: int) -> Reg:
        """Get a value into a register without copying if already there."""
        location = self.loc(value)
        if isinstance(location, Reg):
            return location
        self.emit(Op.LOAD, Reg(scratch), location)
        return Reg(scratch)

    def fetch_copy(self, value: str, scratch: int) -> Reg:
        """Get a value into ``scratch`` as a modifiable copy."""
        location = self.loc(value)
        if isinstance(location, Reg):
            self.emit(Op.MOV, Reg(scratch), location)
        else:
            self.emit(Op.LOAD, Reg(scratch), location)
        return Reg(scratch)

    def store(self, value: str, src: Reg) -> None:
        location = self.loc(value)
        if isinstance(location, Reg):
            if location.index != src.index:
                self.emit(Op.MOV, location, src)
        else:
            self.emit(Op.STORE, location, src)

    def mov_imm(self, reg: Reg, value: int) -> None:
        raise NotImplementedError

    def mov_label(self, reg: Reg, label: str) -> None:
        raise NotImplementedError

    def add_sp(self, amount: int) -> None:
        if amount:
            self.emit(Op.ADD, Reg(self.isa.sp), Imm(amount))

    def sub_sp(self, amount: int) -> None:
        if amount:
            self.emit(Op.SUB, Reg(self.isa.sp), Imm(amount))

    # ------------------------------------------------------------------
    # Function skeleton
    # ------------------------------------------------------------------
    def generate(self) -> GeneratedFunction:
        self.asm.label(self.fn.name)
        self.prologue()
        block_labels = []
        for index, block in enumerate(self.fn.blocks):
            self.asm.label(block.label)
            block_labels.append(block.label)
            next_label = (self.fn.blocks[index + 1].label
                          if index + 1 < len(self.fn.blocks) else None)
            for instruction in block.instructions:
                self.emit_ir(instruction, next_label)
        return GeneratedFunction(self.fn.name, self.saved_registers,
                                 block_labels)

    def prologue(self) -> None:
        if self.isa.lr is not None:
            self.emit(Op.PUSH, Reg(self.isa.lr))
        for reg in self.saved_registers:
            self.emit(Op.PUSH, Reg(reg))
        self.sub_sp(self.layout.total_data_size)
        # Copy incoming arguments to their assigned storage.
        for index, param in enumerate(self.fn.params):
            offset = self.layout.arg_offset(index, self.prologue_saved_count())
            source = Mem(self.isa.sp, offset)
            reg = self.allocation.registers.get(param)
            if reg is not None:
                self.emit(Op.LOAD, Reg(reg), source)
            elif self.layout.has_slot(param):
                self.emit(Op.LOAD, Reg(self.s0), source)
                self.emit(Op.STORE, self.slot(param), Reg(self.s0))

    def prologue_saved_count(self) -> int:
        """Words between frame data and args (layout is authoritative)."""
        return self.layout.words_above(len(self.saved_registers))

    def epilogue(self) -> None:
        self.add_sp(self.layout.total_data_size)
        for reg in reversed(self.saved_registers):
            self.emit(Op.POP, Reg(reg))
        self.emit(Op.RET)

    # ------------------------------------------------------------------
    # Per-IR-instruction emission
    # ------------------------------------------------------------------
    def emit_ir(self, instruction: ir.IRInstruction,
                next_label: Optional[str]) -> None:
        if isinstance(instruction, ir.Const):
            self.gen_const(instruction)
        elif isinstance(instruction, ir.Move):
            self.gen_move(instruction)
        elif isinstance(instruction, ir.BinOp):
            self.gen_binop(instruction)
        elif isinstance(instruction, ir.UnOp):
            self.gen_unop(instruction)
        elif isinstance(instruction, ir.Compare):
            self.gen_compare(instruction)
        elif isinstance(instruction, (ir.Load, ir.LoadByte)):
            self.gen_load(instruction)
        elif isinstance(instruction, (ir.Store, ir.StoreByte)):
            self.gen_store(instruction)
        elif isinstance(instruction, ir.AddrOfLocal):
            self.gen_addr_local(instruction)
        elif isinstance(instruction, ir.AddrOfGlobal):
            self.gen_addr_global(instruction)
        elif isinstance(instruction, ir.AddrOfFunction):
            self.gen_addr_function(instruction)
        elif isinstance(instruction, ir.Call):
            self.gen_call(instruction)
        elif isinstance(instruction, ir.CallIndirect):
            self.gen_call_indirect(instruction)
        elif isinstance(instruction, ir.SysCall):
            self.gen_syscall(instruction)
        elif isinstance(instruction, ir.Jump):
            if instruction.target != next_label:
                self.emit(Op.JMP, Label(instruction.target))
        elif isinstance(instruction, ir.Branch):
            self.gen_branch(instruction, next_label)
        elif isinstance(instruction, ir.Ret):
            self.gen_ret(instruction)
        else:  # pragma: no cover
            raise CompileError(f"codegen: unhandled {instruction!r}")

    # -- data movement ---------------------------------------------------
    def gen_const(self, instruction: ir.Const) -> None:
        location = self.loc(instruction.dst)
        if isinstance(location, Reg):
            self.mov_imm(location, instruction.value)
        else:
            self.store_imm(location, instruction.value)

    def store_imm(self, location: Mem, value: int) -> None:
        self.mov_imm(Reg(self.s0), value)
        self.emit(Op.STORE, location, Reg(self.s0))

    def gen_move(self, instruction: ir.Move) -> None:
        src = self.fetch(instruction.src, self.s0)
        self.store(instruction.dst, src)

    # -- arithmetic --------------------------------------------------------
    def gen_binop(self, instruction: ir.BinOp) -> None:
        raise NotImplementedError

    def gen_unop(self, instruction: ir.UnOp) -> None:
        acc = self.fetch_copy(instruction.a, self.s0)
        self.emit(Op.NEG if instruction.operator == "-" else Op.NOT, acc)
        self.store(instruction.dst, acc)

    def gen_compare(self, instruction: ir.Compare) -> None:
        a = self.fetch(instruction.a, self.s0)
        b = self.fetch(instruction.b, self.s1)
        self.emit(Op.CMP, a, b)
        true_label = self.local_label("cc")
        end_label = self.local_label("ccend")
        self.emit(Op.JCC, Label(true_label),
                  cond=_RELOP_TO_COND[instruction.operator])
        self.mov_imm(Reg(self.s0), 0)
        self.emit(Op.JMP, Label(end_label))
        self.asm.label(true_label)
        self.mov_imm(Reg(self.s0), 1)
        self.asm.label(end_label)
        self.store(instruction.dst, Reg(self.s0))

    # -- memory --------------------------------------------------------
    def gen_load(self, instruction) -> None:
        base = self.fetch(instruction.address, self.s0)
        op = Op.LOADB if isinstance(instruction, ir.LoadByte) else Op.LOAD
        self.emit(op, Reg(self.s1), Mem(base.index, instruction.offset))
        self.store(instruction.dst, Reg(self.s1))

    def gen_store(self, instruction) -> None:
        base = self.fetch(instruction.address, self.s0)
        src = self.fetch(instruction.src, self.s1)
        op = Op.STOREB if isinstance(instruction, ir.StoreByte) else Op.STORE
        self.emit(op, Mem(base.index, instruction.offset), src)

    def gen_addr_local(self, instruction: ir.AddrOfLocal) -> None:
        offset = self.layout.local_offsets[instruction.local] + self._sp_adjust
        self.emit(Op.LEA, Reg(self.s0), Mem(self.isa.sp, offset))
        self.store(instruction.dst, Reg(self.s0))

    def gen_addr_global(self, instruction: ir.AddrOfGlobal) -> None:
        address = self.global_addresses[instruction.symbol]
        location = self.loc(instruction.dst)
        if isinstance(location, Reg):
            self.mov_imm(location, address)
        else:
            self.store_imm(location, address)

    def gen_addr_function(self, instruction: ir.AddrOfFunction) -> None:
        self.mov_label(Reg(self.s0), instruction.function)
        self.store(instruction.dst, Reg(self.s0))

    # -- calls --------------------------------------------------------
    def push_value(self, value: str) -> None:
        raise NotImplementedError

    def gen_call(self, instruction: ir.Call) -> None:
        for arg in reversed(instruction.args):
            self.push_value(arg)
            self._sp_adjust += 4
        self.emit(Op.CALL, Label(instruction.function))
        self._sp_adjust -= 4 * len(instruction.args)
        self.add_sp(4 * len(instruction.args))
        if instruction.dst:
            self.store(instruction.dst, Reg(self.isa.return_reg))

    def gen_call_indirect(self, instruction: ir.CallIndirect) -> None:
        for arg in reversed(instruction.args):
            self.push_value(arg)
            self._sp_adjust += 4
        target = self.indirect_call_target(instruction.target)
        self.emit(Op.ICALL, target)
        self._sp_adjust -= 4 * len(instruction.args)
        self.add_sp(4 * len(instruction.args))
        if instruction.dst:
            self.store(instruction.dst, Reg(self.isa.return_reg))

    def indirect_call_target(self, value: str):
        """Operand for ICALL; x86like can call through memory directly."""
        return self.fetch(value, self.s0)

    def gen_syscall(self, instruction: ir.SysCall) -> None:
        isa = self.isa
        values = [instruction.number] + list(instruction.args)
        # Stage every input on the stack first so that clobbering the
        # target registers cannot corrupt later fetches.
        for value in values:
            self.push_value(value)
            self._sp_adjust += 4
        target_regs = [isa.syscall_number_reg]
        target_regs += list(isa.syscall_arg_regs[:len(instruction.args)])
        to_save = [reg for reg in target_regs if reg in set(
            self.allocation.registers.values())]
        for reg in to_save:
            self.emit(Op.PUSH, Reg(reg))
            self._sp_adjust += 4
        depth = len(to_save)
        count = len(values)
        for index, reg in enumerate(target_regs):
            offset = 4 * (depth + (count - 1 - index))
            self.emit(Op.LOAD, Reg(reg), Mem(isa.sp, offset))
        self.emit(Op.SYSCALL)
        for reg in reversed(to_save):
            self.emit(Op.POP, Reg(reg))
            self._sp_adjust -= 4
        self.add_sp(4 * count)
        self._sp_adjust -= 4 * count
        if instruction.dst:
            self.store(instruction.dst, Reg(isa.return_reg))

    # -- control --------------------------------------------------------
    def gen_branch(self, instruction: ir.Branch,
                   next_label: Optional[str]) -> None:
        a = self.fetch(instruction.a, self.s0)
        b = self.fetch(instruction.b, self.s1)
        self.emit(Op.CMP, a, b)
        cond = _RELOP_TO_COND[instruction.operator]
        if instruction.else_target == next_label:
            self.emit(Op.JCC, Label(instruction.then_target), cond=cond)
        elif instruction.then_target == next_label:
            self.emit(Op.JCC, Label(instruction.else_target),
                      cond=cond.negate())
        else:
            self.emit(Op.JCC, Label(instruction.then_target), cond=cond)
            self.emit(Op.JMP, Label(instruction.else_target))

    def gen_ret(self, instruction: ir.Ret) -> None:
        if instruction.src:
            src = self.fetch(instruction.src, self.s0)
            if src.index != self.isa.return_reg:
                self.emit(Op.MOV, Reg(self.isa.return_reg), src)
        self.epilogue()


class X86LikeCodegen(CodeGenerator):
    """Instruction selection for the CISC target.

    Exploits memory operands (load-op / op-store / push-mem forms) the way
    a real x86 compiler does, which also seeds the binary with the dense
    gadget population the paper's security evaluation measures.
    """

    isa = X86LIKE

    def mov_imm(self, reg: Reg, value: int) -> None:
        self.emit(Op.MOV, reg, Imm(value))

    def mov_label(self, reg: Reg, label: str) -> None:
        self.emit(Op.MOV, reg, Label(label))

    def store_imm(self, location: Mem, value: int) -> None:
        self.emit(Op.STORE, location, Imm(value))

    def push_value(self, value: str) -> None:
        self.emit(Op.PUSH, self.loc(value))

    def indirect_call_target(self, value: str):
        return self.loc(value)     # call *reg or call *(mem)

    def gen_binop(self, instruction: ir.BinOp) -> None:
        operator = instruction.operator
        if operator == "/":
            self._divide(instruction, Op.DIV, EAX)
            return
        if operator == "%":
            self._divide(instruction, Op.MOD, EDX)
            return
        if operator in ("<<", ">>"):
            self._shift(instruction)
            return
        acc = self.fetch_copy(instruction.a, self.s0)
        self.emit(_BINOP_TO_OP[operator], acc, self.loc(instruction.b))
        self.store(instruction.dst, acc)

    def _divide(self, instruction: ir.BinOp, op: Op, result_reg: int) -> None:
        # Real-x86 flavour: dividend pinned to eax (quotient) / edx (rem).
        location = self.loc(instruction.a)
        if isinstance(location, Reg):
            self.emit(Op.MOV, Reg(result_reg), location)
        else:
            self.emit(Op.LOAD, Reg(result_reg), location)
        divisor = self.fetch(instruction.b, ECX)
        self.emit(op, Reg(result_reg), divisor)
        self.store(instruction.dst, Reg(result_reg))

    def _shift(self, instruction: ir.BinOp) -> None:
        # Variable shift counts must be in ecx, like real x86.
        count_loc = self.loc(instruction.b)
        if isinstance(count_loc, Reg):
            self.emit(Op.MOV, Reg(ECX), count_loc)
        else:
            self.emit(Op.LOAD, Reg(ECX), count_loc)
        acc = self.fetch_copy(instruction.a, EAX)
        op = Op.SHL if instruction.operator == "<<" else Op.SAR
        self.emit(op, acc, Reg(ECX))
        self.store(instruction.dst, acc)


class ArmLikeCodegen(CodeGenerator):
    """Instruction selection for the RISC target: strict load/store."""

    isa = ARMLIKE

    def mov_imm(self, reg: Reg, value: int) -> None:
        signed = to_signed(value)
        if fits_imm16(signed):
            self.emit(Op.MOV, reg, Imm(signed))
            return
        low = value & 0xFFFF
        low_signed = low - 0x10000 if low & 0x8000 else low
        self.emit(Op.MOV, reg, Imm(low_signed))
        self.emit(Op.MOVT, reg, Imm((value >> 16) & 0xFFFF))

    def mov_label(self, reg: Reg, label: str) -> None:
        self.emit(Op.MOV, reg, Label(label, "lo16"))
        self.emit(Op.MOVT, reg, Label(label, "hi16"))

    def push_value(self, value: str) -> None:
        source = self.fetch(value, self.s0)
        self.emit(Op.PUSH, source)

    def gen_binop(self, instruction: ir.BinOp) -> None:
        acc = self.fetch_copy(instruction.a, self.s0)
        b = self.fetch(instruction.b, self.s1)
        self.emit(_BINOP_TO_OP[instruction.operator], acc, b)
        self.store(instruction.dst, acc)


def make_codegen(isa: ISADescription, *args, **kwargs) -> CodeGenerator:
    if isa.name == X86LIKE.name:
        return X86LikeCodegen(*args, **kwargs)
    if isa.name == ARMLIKE.name:
        return ArmLikeCodegen(*args, **kwargs)
    raise CompileError(f"no code generator for {isa.name}")
