"""Multi-ISA compiler: mini-C → IR → fat binary for both ISAs."""

from .fatbinary import FatBinary, compile_minic, compile_program
from .ir import IRProgram
from .lowering import compile_source, lower_program
from .minic import parse
from .symtab import ExtendedSymbolTable, FunctionInfo

__all__ = [
    "ExtendedSymbolTable",
    "FatBinary",
    "FunctionInfo",
    "IRProgram",
    "compile_minic",
    "compile_program",
    "compile_source",
    "lower_program",
    "parse",
]
