"""The extended symbol table of the fat binary.

This is the static-analysis product Figure 2 of the paper shows feeding
the PSR randomizer: per function — live registers per basic block, callee
saves, argument slots, fixed stack slots, and relocatable slots — plus the
per-ISA address information (entry points, block addresses, call sites)
the translator and migration engine navigate by.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .frames import FrameLayout, SlotEntry
from .liveness import BlockLiveness


@dataclass(frozen=True)
class CallSite:
    """One static call instruction: where it is and where it returns to."""

    address: int
    return_address: int
    kind: str                  # "call" | "icall"
    target: Optional[int] = None   # resolved for direct calls


@dataclass
class ISAFunctionInfo:
    """Per-ISA view of one function."""

    isa_name: str
    entry: int
    end: int
    #: IR block label -> start address in this ISA's text section
    block_addresses: Dict[str, int]
    #: registers the prologue pushes (excluding the link register)
    saved_registers: List[int]
    #: value name -> architectural register (the stable allocation)
    register_assignment: Dict[str, int]
    call_sites: List[CallSite] = field(default_factory=list)

    def block_bounds(self) -> List[Tuple[str, int, int]]:
        """(label, start, end) for each block, in address order."""
        items = sorted(self.block_addresses.items(), key=lambda kv: kv[1])
        bounds = []
        for index, (label, start) in enumerate(items):
            end = items[index + 1][1] if index + 1 < len(items) else self.end
            bounds.append((label, start, end))
        return bounds

    def block_at(self, address: int) -> Optional[str]:
        for label, start, end in self.block_bounds():
            if start <= address < end:
                return label
        return None


@dataclass
class FunctionInfo:
    """Cross-ISA record for one function."""

    name: str
    params: List[str]
    layout: FrameLayout
    liveness: Dict[str, BlockLiveness]
    block_order: List[str]
    per_isa: Dict[str, ISAFunctionInfo] = field(default_factory=dict)

    def entry(self, isa_name: str) -> int:
        return self.per_isa[isa_name].entry

    def live_in(self, block_label: str) -> frozenset:
        return self.liveness[block_label].live_in

    def live_out(self, block_label: str) -> frozenset:
        return self.liveness[block_label].live_out

    def slot_entries(self) -> List[SlotEntry]:
        """The function's authoritative frame-data slot map.

        Delegates to :meth:`FrameLayout.slot_entries` — the one source of
        truth codegen, PSR relocation, and the static verifier share.
        """
        return self.layout.slot_entries()

    def words_above(self, isa_name: str) -> int:
        """Words between frame data and incoming args on one ISA."""
        return self.layout.words_above(
            len(self.per_isa[isa_name].saved_registers))


class ExtendedSymbolTable:
    """Whole-binary index: functions, blocks, and address lookups."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self._ranges: Dict[str, List[Tuple[int, int, str]]] = {}

    def add(self, info: FunctionInfo) -> None:
        self.functions[info.name] = info
        for isa_name, per_isa in info.per_isa.items():
            self._ranges.setdefault(isa_name, []).append(
                (per_isa.entry, per_isa.end, info.name))
            self._ranges[isa_name].sort()

    def function(self, name: str) -> FunctionInfo:
        return self.functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __iter__(self):
        return iter(self.functions.values())

    def function_at(self, isa_name: str, address: int) -> Optional[FunctionInfo]:
        """The function whose text contains ``address``, if any."""
        ranges = self._ranges.get(isa_name, [])
        index = bisect.bisect_right(ranges, (address, float("inf"), "")) - 1
        if index >= 0:
            start, end, name = ranges[index]
            if start <= address < end:
                return self.functions[name]
        return None

    def block_at(self, isa_name: str, address: int) -> Optional[Tuple[str, str]]:
        """(function name, block label) containing ``address``."""
        info = self.function_at(isa_name, address)
        if info is None:
            return None
        label = info.per_isa[isa_name].block_at(address)
        if label is None:
            return None
        return info.name, label

    def is_function_entry(self, isa_name: str, address: int) -> bool:
        info = self.function_at(isa_name, address)
        return info is not None and info.per_isa[isa_name].entry == address

    def is_block_entry(self, isa_name: str, address: int) -> bool:
        info = self.function_at(isa_name, address)
        if info is None:
            return False
        return address in info.per_isa[isa_name].block_addresses.values()

    def all_call_sites(self, isa_name: str) -> List[CallSite]:
        sites: List[CallSite] = []
        for info in self.functions.values():
            per_isa = info.per_isa.get(isa_name)
            if per_isa is not None:
                sites.extend(per_isa.call_sites)
        return sites
