"""Dataflow analyses over the IR: CFG edges, liveness, loop depth.

Liveness drives three consumers:

* the register allocator (interference-free assignment of hot values);
* the extended symbol table's per-block live sets — what Figure 2 of the
  paper calls "Live Regs" — which the PSR runtime and the migration
  engine's stack transformer read at run time;
* PSR's "single basic block look-ahead liveness analysis" used to compute
  caller/callee saves at call sites (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from .ir import IRBlock, IRFunction


@dataclass
class BlockLiveness:
    live_in: FrozenSet[str]
    live_out: FrozenSet[str]


def predecessors(fn: IRFunction) -> Dict[str, List[str]]:
    """Map each block label to the labels of its predecessors."""
    preds: Dict[str, List[str]] = {blk.label: [] for blk in fn.blocks}
    for blk in fn.blocks:
        for succ in blk.successors():
            preds[succ].append(blk.label)
    return preds


def compute_liveness(fn: IRFunction) -> Dict[str, BlockLiveness]:
    """Classic backward may-analysis to a fixpoint.

    Returns per-block live-in/live-out sets of IR value names.
    """
    use: Dict[str, Set[str]] = {}
    define: Dict[str, Set[str]] = {}
    for blk in fn.blocks:
        used: Set[str] = set()
        defined: Set[str] = set()
        for ins in blk.instructions:
            for name in ins.uses():
                if name not in defined:
                    used.add(name)
            for name in ins.defs():
                defined.add(name)
        use[blk.label] = used
        define[blk.label] = defined

    live_in: Dict[str, Set[str]] = {blk.label: set() for blk in fn.blocks}
    live_out: Dict[str, Set[str]] = {blk.label: set() for blk in fn.blocks}
    changed = True
    while changed:
        changed = False
        for blk in reversed(fn.blocks):
            out: Set[str] = set()
            for succ in blk.successors():
                out |= live_in[succ]
            new_in = use[blk.label] | (out - define[blk.label])
            if out != live_out[blk.label] or new_in != live_in[blk.label]:
                live_out[blk.label] = out
                live_in[blk.label] = new_in
                changed = True

    return {
        label: BlockLiveness(frozenset(live_in[label]),
                             frozenset(live_out[label]))
        for label in live_in
    }


def live_after_each_instruction(
        blk: IRBlock, block_live_out: FrozenSet[str]) -> List[FrozenSet[str]]:
    """Live sets *after* each instruction of one block (backward sweep).

    ``result[i]`` is the set of values live immediately after
    ``blk.instructions[i]``.  This is the one-block look-ahead analysis the
    PSR virtual machine performs when transforming procedure calls.
    """
    live: Set[str] = set(block_live_out)
    result: List[Set[str]] = [set()] * len(blk.instructions)
    for index in range(len(blk.instructions) - 1, -1, -1):
        ins = blk.instructions[index]
        result[index] = set(live)
        live -= set(ins.defs())
        live |= set(ins.uses())
    return [frozenset(s) for s in result]


def loop_depths(fn: IRFunction) -> Dict[str, int]:
    """Approximate loop nesting depth per block.

    A back edge is an edge to a block that appears earlier in layout order
    (the lowering emits natural loops that way).  Depth is the number of
    enclosing (header, tail) intervals a block falls inside — adequate for
    spill-cost weighting without a full dominator analysis.
    """
    order = {blk.label: i for i, blk in enumerate(fn.blocks)}
    intervals: List[Tuple[int, int]] = []
    for blk in fn.blocks:
        for succ in blk.successors():
            if order[succ] <= order[blk.label]:
                intervals.append((order[succ], order[blk.label]))
    depths: Dict[str, int] = {}
    for blk in fn.blocks:
        i = order[blk.label]
        depths[blk.label] = sum(1 for lo, hi in intervals if lo <= i <= hi)
    return depths


def use_counts(fn: IRFunction, weights: Dict[str, int]) -> Dict[str, float]:
    """Spill-cost estimate: uses+defs weighted by 10^loop_depth."""
    counts: Dict[str, float] = {}
    for blk in fn.blocks:
        weight = 10.0 ** min(weights.get(blk.label, 0), 4)
        for ins in blk.instructions:
            for name in list(ins.uses()) + list(ins.defs()):
                counts[name] = counts.get(name, 0.0) + weight
    return counts
