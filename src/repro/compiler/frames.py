"""Common multi-ISA stack-frame layout.

The multi-ISA compilation infrastructure of the paper's prior work keeps a
*common stack frame organization* across ISAs so that migration needs
minimal state transformation (Section 3.2).  We realise that as:

* all arguments passed on the stack (no register-argument ABI divergence);
* a *frame data* region — fixed locals (arrays, address-taken scalars)
  followed by one word-sized *home slot* per spilled value — whose
  sp-relative offsets are computed from the IR once and are therefore
  **identical on both ISAs**;
* a per-ISA callee-save push area between the frame data and the return
  address (its size differs per ISA; the extended symbol table records it).

Frame shape, growing downward (lower addresses at top)::

    sp + 0                         frame data: fixed locals
    sp + locals_size               frame data: home slots
    sp + frame_data_size           saved callee regs   (per-ISA count)
    sp + frame_data_size + 4*n     return address      (x86: pushed by CALL;
                                                         armlike: pushed LR)
    sp + ... + 4                   incoming arg 0, arg 1, ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..isa.base import WORD_SIZE
from .ir import IRFunction


@dataclass
class FrameLayout:
    """ISA-independent portion of one function's frame."""

    function: str
    #: fixed locals (arrays, address-taken scalars) -> sp-relative offset
    local_offsets: Dict[str, int]
    #: home slots for values not held in registers -> sp-relative offset
    home_offsets: Dict[str, int]
    #: size of the frame-data region (locals + home slots), word aligned
    frame_data_size: int
    #: extra randomization space inserted by PSR (0 for native code)
    randomization_space: int = 0

    @property
    def total_data_size(self) -> int:
        return self.frame_data_size + self.randomization_space

    def arg_offset(self, index: int, words_above: int) -> int:
        """sp-relative offset of incoming argument ``index``.

        ``words_above`` counts every word between the frame data and the
        first argument: the prologue-pushed callee saves plus the return
        address slot (pushed by CALL on x86like, the saved LR on armlike).
        """
        return (self.total_data_size + WORD_SIZE * words_above
                + WORD_SIZE * index)

    def return_address_offset(self, words_above: int) -> int:
        """The return-address slot sits immediately below the arguments."""
        return self.total_data_size + WORD_SIZE * (words_above - 1)

    def slot_of(self, value: str) -> int:
        """Offset of a value's memory slot (home slot or fixed local)."""
        if value in self.home_offsets:
            return self.home_offsets[value]
        return self.local_offsets[value]

    def has_slot(self, value: str) -> bool:
        return value in self.home_offsets or value in self.local_offsets


def build_frame_layout(fn: IRFunction, spilled: Sequence[str]) -> FrameLayout:
    """Lay out fixed locals then home slots, both word aligned."""
    local_offsets: Dict[str, int] = {}
    cursor = 0
    for local in fn.locals.values():
        local_offsets[local.name] = cursor
        cursor += (local.size + WORD_SIZE - 1) // WORD_SIZE * WORD_SIZE

    home_offsets: Dict[str, int] = {}
    for value in spilled:
        if value in local_offsets:
            continue            # memory locals already have fixed storage
        home_offsets[value] = cursor
        cursor += WORD_SIZE

    return FrameLayout(
        function=fn.name,
        local_offsets=local_offsets,
        home_offsets=home_offsets,
        frame_data_size=cursor,
    )
