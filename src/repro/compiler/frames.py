"""Common multi-ISA stack-frame layout.

The multi-ISA compilation infrastructure of the paper's prior work keeps a
*common stack frame organization* across ISAs so that migration needs
minimal state transformation (Section 3.2).  We realise that as:

* all arguments passed on the stack (no register-argument ABI divergence);
* a *frame data* region — fixed locals (arrays, address-taken scalars)
  followed by one word-sized *home slot* per spilled value — whose
  sp-relative offsets are computed from the IR once and are therefore
  **identical on both ISAs**;
* a per-ISA callee-save push area between the frame data and the return
  address (its size differs per ISA; the extended symbol table records it).

Frame shape, growing downward (lower addresses at top)::

    sp + 0                         frame data: fixed locals
    sp + locals_size               frame data: home slots
    sp + frame_data_size           saved callee regs   (per-ISA count)
    sp + frame_data_size + 4*n     return address      (x86: pushed by CALL;
                                                         armlike: pushed LR)
    sp + ... + 4                   incoming arg 0, arg 1, ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..isa.base import WORD_SIZE
from .ir import IRFunction


def _aligned(size: int) -> int:
    return (size + WORD_SIZE - 1) // WORD_SIZE * WORD_SIZE


@dataclass(frozen=True)
class SlotEntry:
    """One authoritative frame-data slot: where a value lives in memory."""

    name: str
    offset: int                # sp-relative, within the frame-data region
    size: int                  # bytes (word-aligned for layout purposes)
    kind: str                  # "local" (fixed storage) | "home" (spill)

    @property
    def end(self) -> int:
        return self.offset + _aligned(self.size)


@dataclass
class FrameLayout:
    """ISA-independent portion of one function's frame."""

    function: str
    #: fixed locals (arrays, address-taken scalars) -> sp-relative offset
    local_offsets: Dict[str, int]
    #: home slots for values not held in registers -> sp-relative offset
    home_offsets: Dict[str, int]
    #: size of the frame-data region (locals + home slots), word aligned
    frame_data_size: int
    #: extra randomization space inserted by PSR (0 for native code)
    randomization_space: int = 0
    #: byte size of each fixed local (arrays > one word); values absent
    #: here default to one word
    local_sizes: Dict[str, int] = field(default_factory=dict)

    @property
    def total_data_size(self) -> int:
        return self.frame_data_size + self.randomization_space

    # -- the single authoritative slot-layout accessor -----------------
    # Codegen, the PSR relocation builder, and the static verifier all
    # read the frame's memory map through these; nothing else re-derives
    # offsets or region sizes from the raw dicts.
    def slot_entries(self) -> List[SlotEntry]:
        """Every frame-data slot, sorted by offset: fixed locals first
        (with their true byte sizes), then one word-sized home slot per
        spilled value."""
        entries = [SlotEntry(name, offset,
                             self.local_sizes.get(name, WORD_SIZE), "local")
                   for name, offset in self.local_offsets.items()]
        entries += [SlotEntry(name, offset, WORD_SIZE, "home")
                    for name, offset in self.home_offsets.items()]
        entries.sort(key=lambda entry: (entry.offset, entry.name))
        return entries

    @property
    def locals_region_size(self) -> int:
        """Byte size of the fixed-local region (0 when there are none)."""
        return max((entry.end for entry in self.slot_entries()
                    if entry.kind == "local"), default=0)

    def words_above(self, saved_register_count: int) -> int:
        """Words between the frame data and the incoming arguments: the
        prologue-pushed callee saves plus the return-address slot."""
        return saved_register_count + 1

    def arg_offset(self, index: int, words_above: int) -> int:
        """sp-relative offset of incoming argument ``index``.

        ``words_above`` counts every word between the frame data and the
        first argument: the prologue-pushed callee saves plus the return
        address slot (pushed by CALL on x86like, the saved LR on armlike).
        """
        return (self.total_data_size + WORD_SIZE * words_above
                + WORD_SIZE * index)

    def return_address_offset(self, words_above: int) -> int:
        """The return-address slot sits immediately below the arguments."""
        return self.total_data_size + WORD_SIZE * (words_above - 1)

    def slot_at(self, offset: int) -> "SlotEntry | None":
        """Project an sp-relative byte offset back onto the slot covering
        it, or None when the offset falls outside every frame-data slot.

        The inverse of :meth:`slot_of`: the symbolic equivalence prover
        and the frame-safety pass use it to attach value-level provenance
        (*which* variable a divergent or out-of-bounds access touched) to
        raw offsets recovered from machine code.
        """
        for entry in self.slot_entries():
            if entry.offset <= offset < entry.end:
                return entry
        return None

    def slot_of(self, value: str) -> int:
        """Offset of a value's memory slot (home slot or fixed local)."""
        if value in self.home_offsets:
            return self.home_offsets[value]
        return self.local_offsets[value]

    def has_slot(self, value: str) -> bool:
        return value in self.home_offsets or value in self.local_offsets


def build_frame_layout(fn: IRFunction, spilled: Sequence[str]) -> FrameLayout:
    """Lay out fixed locals then home slots, both word aligned."""
    local_offsets: Dict[str, int] = {}
    local_sizes: Dict[str, int] = {}
    cursor = 0
    for local in fn.locals.values():
        local_offsets[local.name] = cursor
        local_sizes[local.name] = local.size
        cursor += _aligned(local.size)

    home_offsets: Dict[str, int] = {}
    for value in spilled:
        if value in local_offsets:
            continue            # memory locals already have fixed storage
        home_offsets[value] = cursor
        cursor += WORD_SIZE

    return FrameLayout(
        function=fn.name,
        local_offsets=local_offsets,
        home_offsets=home_offsets,
        frame_data_size=cursor,
        local_sizes=local_sizes,
    )
