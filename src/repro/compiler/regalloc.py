"""Register allocation: function-scoped stable assignment.

Each IR value gets exactly one storage location for the whole function —
either a callee-saved register or a home slot in the frame.  The stable
assignment is what makes every basic-block boundary a potential
*equivalence point*: given the extended symbol table, the full variable
state is reconstructible from machine state at any block entry, which the
cross-ISA migration engine depends on.

The allocator ranks values by loop-weighted use counts and hands the
ISA's allocatable (callee-saved) registers to the hottest ones; everything
else lives in its home slot.  Address-taken values and arrays are never
register candidates (their storage must stay addressable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..isa.base import ISADescription
from .ir import IRFunction
from .liveness import loop_depths, use_counts


@dataclass
class Allocation:
    """The result of register allocation for one function on one ISA."""

    isa_name: str
    #: value name -> architectural register index
    registers: Dict[str, int]
    #: values living in frame home slots, in layout order
    spilled: List[str]

    def location_kind(self, value: str) -> str:
        return "register" if value in self.registers else "memory"


def allocate_registers(fn: IRFunction, isa: ISADescription) -> Allocation:
    """Assign the hottest values to this ISA's allocatable registers."""
    depths = loop_depths(fn)
    costs = use_counts(fn, depths)

    memory_only = set(fn.locals)      # arrays + address-taken scalars
    candidates = [value for value in fn.all_values()
                  if value not in memory_only]
    candidates.sort(key=lambda v: (-costs.get(v, 0.0), v))

    registers: Dict[str, int] = {}
    available = list(isa.allocatable)
    for value in candidates:
        if not available:
            break
        registers[value] = available.pop(0)

    spilled = [value for value in fn.all_values()
               if value not in registers and value not in memory_only]
    return Allocation(isa.name, registers, spilled)
