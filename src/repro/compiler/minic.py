"""Mini-C: the small C-like source language the workloads are written in.

Supported constructs — enough to express realistic kernels (compression
loops, recursion over game trees, dynamic programming, pointer chasing,
string parsing):

* ``int`` scalars, ``int``/``char`` arrays (locals and globals, with
  initialisers; global char arrays accept string literals);
* functions with ``int`` parameters, recursion, and function pointers
  (``&name`` to take an address, calling through a variable);
* ``if``/``else``, ``while``, ``break``, ``continue``, ``return``;
* full C expression set on 32-bit ints (``&&``/``||`` evaluate without
  short-circuit, which is the documented deviation);
* intrinsics: ``syscall(n, ...)`` plus word/byte memory access
  ``load/store/load8/store8`` for pointer-style code.

The grammar is LL(1); the hand-written recursive-descent parser below
produces a plain AST that :mod:`repro.compiler.lowering` converts to IR.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..errors import CompileError

# ----------------------------------------------------------------------
# Tokens
# ----------------------------------------------------------------------
_TOKEN_SPEC = [
    ("comment", r"//[^\n]*|/\*.*?\*/"),
    ("number", r"0[xX][0-9a-fA-F]+|\d+"),
    ("char", r"'(\\.|[^\\'])'"),
    ("string", r'"(\\.|[^"\\])*"'),
    ("name", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("op", r"<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>=(){}\[\],;]"),
    ("ws", r"\s+"),
]
_TOKEN_RE = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC),
    re.DOTALL)

KEYWORDS = {"int", "char", "if", "else", "while", "return", "break",
            "continue", "void"}

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


@dataclass(frozen=True)
class Token:
    kind: str            # "number" | "name" | "keyword" | "op" | "string" | "eof"
    text: str
    line: int


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise CompileError(f"line {line}: unexpected character {source[pos]!r}")
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            line += text.count("\n")
        elif kind == "name" and text in KEYWORDS:
            tokens.append(Token("keyword", text, line))
        elif kind == "char":
            body = text[1:-1]
            value = _ESCAPES[body[1]] if body.startswith("\\") else ord(body)
            tokens.append(Token("number", str(value), line))
        else:
            tokens.append(Token(kind, text, line))
        pos = match.end()
    tokens.append(Token("eof", "", line))
    return tokens


def unescape_string(literal: str) -> bytes:
    """Convert a source string literal (with quotes) to raw bytes."""
    body = literal[1:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            out.append(_ESCAPES.get(body[i + 1], ord(body[i + 1])))
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass
class Num:
    value: int


@dataclass
class Var:
    name: str


@dataclass
class Unary:
    operator: str        # - ! ~
    operand: "Expr"


@dataclass
class Binary:
    operator: str
    left: "Expr"
    right: "Expr"


@dataclass
class Index:
    name: str
    index: "Expr"


@dataclass
class CallExpr:
    name: str
    args: List["Expr"]


@dataclass
class AddrOf:
    name: str


Expr = Union[Num, Var, Unary, Binary, Index, CallExpr, AddrOf]


@dataclass
class DeclStmt:
    name: str
    elem_size: int                      # 4 for int, 1 for char
    array_length: Optional[int] = None  # None = scalar
    init: Optional[Expr] = None


@dataclass
class AssignStmt:
    name: str
    value: Expr


@dataclass
class IndexAssignStmt:
    name: str
    index: Expr
    value: Expr


@dataclass
class IfStmt:
    cond: Expr
    then_body: List["Stmt"]
    else_body: List["Stmt"] = field(default_factory=list)


@dataclass
class WhileStmt:
    cond: Expr
    body: List["Stmt"]


@dataclass
class ReturnStmt:
    value: Optional[Expr] = None


@dataclass
class BreakStmt:
    pass


@dataclass
class ContinueStmt:
    pass


@dataclass
class ExprStmt:
    expr: Expr


Stmt = Union[DeclStmt, AssignStmt, IndexAssignStmt, IfStmt, WhileStmt,
             ReturnStmt, BreakStmt, ContinueStmt, ExprStmt]


@dataclass
class FunctionDecl:
    name: str
    params: List[str]
    body: List[Stmt]


@dataclass
class GlobalDecl:
    name: str
    elem_size: int
    array_length: Optional[int] = None
    init_values: Optional[List[int]] = None
    init_string: Optional[bytes] = None


@dataclass
class Program:
    functions: List[FunctionDecl] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
# Binary operator precedence, loosest first.
_PRECEDENCE: List[Tuple[str, ...]] = [
    ("||",), ("&&",), ("|",), ("^",), ("&",),
    ("==", "!="), ("<", "<=", ">", ">="),
    ("<<", ">>"), ("+", "-"), ("*", "/", "%"),
]


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            token = self.current
            want = text or kind
            raise CompileError(
                f"line {token.line}: expected {want!r}, found {token.text!r}")
        return self.advance()

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    # -- grammar -------------------------------------------------------
    def parse_program(self) -> Program:
        program = Program()
        while not self.check("eof"):
            type_token = self.expect("keyword")
            if type_token.text not in ("int", "char", "void"):
                raise CompileError(
                    f"line {type_token.line}: expected declaration")
            name = self.expect("name").text
            if self.check("op", "("):
                program.functions.append(self._function_rest(name))
            else:
                elem = 1 if type_token.text == "char" else 4
                program.globals.append(self._global_rest(name, elem))
        return program

    def _function_rest(self, name: str) -> FunctionDecl:
        self.expect("op", "(")
        params: List[str] = []
        if not self.check("op", ")"):
            while True:
                self.expect("keyword", "int")
                params.append(self.expect("name").text)
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self._block()
        return FunctionDecl(name, params, body)

    def _global_rest(self, name: str, elem_size: int) -> GlobalDecl:
        decl = GlobalDecl(name, elem_size)
        if self.accept("op", "["):
            decl.array_length = self._const_int()
            self.expect("op", "]")
        if self.accept("op", "="):
            if self.check("string"):
                decl.init_string = unescape_string(self.advance().text) + b"\x00"
            elif self.accept("op", "{"):
                values = [self._const_int()]
                while self.accept("op", ","):
                    values.append(self._const_int())
                self.expect("op", "}")
                decl.init_values = values
            else:
                decl.init_values = [self._const_int()]
        self.expect("op", ";")
        return decl

    def _const_int(self) -> int:
        negative = bool(self.accept("op", "-"))
        token = self.expect("number")
        value = int(token.text, 0)
        return -value if negative else value

    def _block(self) -> List[Stmt]:
        self.expect("op", "{")
        statements: List[Stmt] = []
        while not self.check("op", "}"):
            statements.append(self._statement())
        self.expect("op", "}")
        return statements

    def _statement(self) -> Stmt:
        if self.check("keyword", "int") or self.check("keyword", "char"):
            return self._declaration()
        if self.accept("keyword", "if"):
            return self._if_statement()
        if self.accept("keyword", "while"):
            self.expect("op", "(")
            cond = self._expression()
            self.expect("op", ")")
            return WhileStmt(cond, self._block())
        if self.accept("keyword", "return"):
            if self.accept("op", ";"):
                return ReturnStmt()
            value = self._expression()
            self.expect("op", ";")
            return ReturnStmt(value)
        if self.accept("keyword", "break"):
            self.expect("op", ";")
            return BreakStmt()
        if self.accept("keyword", "continue"):
            self.expect("op", ";")
            return ContinueStmt()
        # assignment vs expression statement
        if self.check("name"):
            if self.peek().kind == "op" and self.peek().text == "=":
                name = self.advance().text
                self.advance()   # '='
                value = self._expression()
                self.expect("op", ";")
                return AssignStmt(name, value)
            if self.peek().kind == "op" and self.peek().text == "[":
                saved = self.pos
                name = self.advance().text
                self.advance()   # '['
                index = self._expression()
                self.expect("op", "]")
                if self.accept("op", "="):
                    value = self._expression()
                    self.expect("op", ";")
                    return IndexAssignStmt(name, index, value)
                self.pos = saved   # it was an expression like a[i];
        expr = self._expression()
        self.expect("op", ";")
        return ExprStmt(expr)

    def _declaration(self) -> DeclStmt:
        type_token = self.advance()
        elem = 1 if type_token.text == "char" else 4
        name = self.expect("name").text
        decl = DeclStmt(name, elem)
        if self.accept("op", "["):
            decl.array_length = self._const_int()
            self.expect("op", "]")
        if self.accept("op", "="):
            decl.init = self._expression()
        self.expect("op", ";")
        return decl

    def _if_statement(self) -> IfStmt:
        self.expect("op", "(")
        cond = self._expression()
        self.expect("op", ")")
        then_body = self._block()
        else_body: List[Stmt] = []
        if self.accept("keyword", "else"):
            if self.accept("keyword", "if"):
                else_body = [self._if_statement()]
            else:
                else_body = self._block()
        return IfStmt(cond, then_body, else_body)

    # -- expressions ---------------------------------------------------
    def _expression(self) -> Expr:
        return self._binary(0)

    def _binary(self, level: int) -> Expr:
        if level >= len(_PRECEDENCE):
            return self._unary()
        left = self._binary(level + 1)
        operators = _PRECEDENCE[level]
        while self.current.kind == "op" and self.current.text in operators:
            operator = self.advance().text
            right = self._binary(level + 1)
            left = Binary(operator, left, right)
        return left

    def _unary(self) -> Expr:
        if self.current.kind == "op" and self.current.text in ("-", "!", "~"):
            operator = self.advance().text
            return Unary(operator, self._unary())
        if self.accept("op", "&"):
            name = self.expect("name").text
            return AddrOf(name)
        return self._primary()

    def _primary(self) -> Expr:
        if self.check("number"):
            return Num(int(self.advance().text, 0))
        if self.accept("op", "("):
            expr = self._expression()
            self.expect("op", ")")
            return expr
        token = self.expect("name")
        name = token.text
        if self.accept("op", "("):
            args: List[Expr] = []
            if not self.check("op", ")"):
                while True:
                    args.append(self._expression())
                    if not self.accept("op", ","):
                        break
            self.expect("op", ")")
            return CallExpr(name, args)
        if self.accept("op", "["):
            index = self._expression()
            self.expect("op", "]")
            return Index(name, index)
        return Var(name)


def parse(source: str) -> Program:
    """Parse mini-C source into an AST."""
    return Parser(tokenize(source)).parse_program()
