"""The PSR virtual machine: dynamic binary translation with randomization.

One :class:`PSRVirtualMachine` runs per ISA (per core).  It owns a code
cache and a hardware-RAT model, and plugs into the interpreter as its
:class:`~repro.machine.interpreter.ExecutionHooks`:

* every control transfer out of the cache resolves through the VM —
  translate-on-miss, one basic-block-sized unit at a time;
* call instructions save *source* return addresses (``on_call``) and
  prime the RAT; returns translate back through the RAT;
* an indirect control transfer (return, indirect jump/call) that misses
  the code cache is a *potential security breach* (Section 3.5): the VM
  reports it to its security handler, which — under HIPStR — migrates
  execution to the other ISA with some probability;
* software-fault isolation: an indirect transfer *into* the code cache
  terminates the process (Section 5.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..compiler.fatbinary import FatBinary
from ..compiler.ir import AddrOfFunction
from ..dbt.code_cache import CodeCache
from ..dbt.rat import ReturnAddressTable
from ..errors import SecurityViolation, TranslationError
from ..isa.assembler import Assembler
from ..isa.base import Instruction, ISADescription, Op
from ..isa.disassembler import linear_disassemble
from ..machine.cpu import CPUState
from ..machine.interpreter import ExecutionHooks
from ..machine.memory import Memory
from ..machine.process import Layout
from .psr_codegen import FunctionTranslation, PSRTranslator
from .relocation import PSRConfig, RelocationMap, build_relocation_map
from .transforms import AddressingModeRewriter


class MigrationRequested(Exception):
    """Raised out of the interpreter when the VM decides to switch ISAs.

    Carries the *source-space* target of the in-flight control transfer —
    a unit boundary valid on both ISAs, which is what makes the hand-off
    well-defined.
    """

    def __init__(self, native_target: int, kind: str):
        super().__init__(f"migrate at {native_target:#x} ({kind})")
        self.native_target = native_target
        self.kind = kind


@dataclass
class PSRStats:
    units_installed: int = 0
    fragments_installed: int = 0
    relocation_maps_built: int = 0
    direct_misses: int = 0
    #: indirect control transfers that missed the cache — security events
    security_events: int = 0
    security_events_by_kind: Dict[str, int] = field(default_factory=dict)
    sfi_violations: int = 0
    dispatches: int = 0
    returns_translated: int = 0

    def record_security_event(self, kind: str) -> None:
        self.security_events += 1
        self.security_events_by_kind[kind] = \
            self.security_events_by_kind.get(kind, 0) + 1


#: handler(kind, native_target) -> True to request migration
SecurityHandler = Callable[[str, int], bool]


class PSRVirtualMachine(ExecutionHooks):
    """Per-ISA PSR runtime (see module docstring)."""

    def __init__(self, binary: FatBinary, isa: ISADescription, memory: Memory,
                 config: Optional[PSRConfig] = None,
                 seed: int = 0,
                 cache_base: Optional[int] = None):
        self.binary = binary
        self.isa = isa
        self.memory = memory
        self.config = config or PSRConfig()
        self.seed = seed
        #: bumped by rerandomize(); feeds every per-function RNG
        self.epoch = 0
        self.stats = PSRStats()

        base = cache_base if cache_base is not None \
            else Layout.CACHE_BASES[isa.name]
        segment_name = f"cache.{isa.name}"
        if not memory.has_segment(segment_name):
            memory.map(segment_name, base, self.config.code_cache_size,
                       writable=True, executable=True)
        self.cache = CodeCache(base, self.config.code_cache_size)
        self.rat = ReturnAddressTable(self.config.rat_size)
        self.cache.flush_listeners.append(self._on_flush)

        self.reloc_maps: Dict[str, RelocationMap] = {}
        self.translations: Dict[str, FunctionTranslation] = {}
        #: cache address just after each installed CALL -> native return
        self.call_return_map: Dict[int, int] = {}
        #: source addresses reachable through *indirect* transfers — the
        #: VM's "internal structures" of Section 3.5.  Direct jumps chain
        #: inline in a real DBT, so an indirect transfer is only
        #: miss-free when its target appears here.
        self.indirect_targets: set = set()
        self.security_handler: Optional[SecurityHandler] = None
        #: set by HIPStR's phase policy: migrate at the next block entry
        self.migrate_on_next_block = False
        #: set after a rolled-back/dropped migration: skip exactly one
        #: security-migration decision so the re-executed transfer makes
        #: forward progress instead of immediately re-requesting
        self.suppress_migration_once = False
        #: sibling VM notified to pre-translate on compulsory misses (HIPStR)
        self.sibling: Optional["PSRVirtualMachine"] = None
        #: called after installs to invalidate interpreter decode caches
        self.invalidate_listener: Optional[Callable[[int, int], None]] = None

        section = binary.sections[isa.name]
        self._text_base = section.base_address
        self._text_end = section.end_address
        first_function = min(
            (info.per_isa[isa.name].entry for info in binary.symtab),
            default=self._text_end)
        #: the crt0 stub region executes natively (trusted loader code)
        self._start_region = (self._text_base, first_function)
        self._address_taken = self._find_address_taken_functions()

    # ------------------------------------------------------------------
    # Relocation maps and translations
    # ------------------------------------------------------------------
    def _find_address_taken_functions(self) -> Set[str]:
        taken: Set[str] = set()
        for fn in self.binary.program.functions.values():
            for blk in fn.blocks:
                for ins in blk.instructions:
                    if isinstance(ins, AddrOfFunction):
                        taken.add(ins.function)
        return taken

    def reloc_for(self, function: str) -> RelocationMap:
        """The function's relocation map, built on first entry (§3.4).

        Per-function RNGs are derived deterministically from (seed, epoch,
        ISA, function): the per-ISA stream randomizes registers and slots;
        the ISA-independent *convention* stream randomizes the argument
        window, keeping frame geometry common across ISAs for migration.
        """
        existing = self.reloc_maps.get(function)
        if existing is not None:
            return existing
        info = self.binary.symtab.function(function)
        fn = self.binary.program.functions[function]
        rng = random.Random(f"{self.seed}:{self.epoch}:{self.isa.name}:{function}")
        convention_rng = random.Random(f"{self.seed}:{self.epoch}:conv:{function}")
        reloc = build_relocation_map(info, fn, self.isa, self.config, rng,
                                     convention_rng)
        if function in self._address_taken:
            # Indirect callees keep the canonical argument layout: callers
            # translated against an unknown target could not honour a
            # randomized window.
            count = len(info.params)
            reloc.arg_positions = {i: i for i in range(count)}
            reloc.arg_window_words = count
        self.reloc_maps[function] = reloc
        self.stats.relocation_maps_built += 1
        return reloc

    def translation_for(self, function: str) -> FunctionTranslation:
        existing = self.translations.get(function)
        if existing is not None:
            return existing
        info = self.binary.symtab.function(function)
        translator = PSRTranslator(
            self.binary.program, info, self.isa, self.reloc_for(function),
            self.config, self.reloc_for,
            lambda name: self.binary.symtab.function(name).entry(self.isa.name),
            self.binary.global_addresses)
        translation = translator.translate()
        self.translations[function] = translation
        return translation

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install_unit(self, source_address: int) -> Optional[int]:
        """Translate-and-install the unit continuing at ``source_address``.

        Returns the cache address, or None if the address is not inside
        any known function (wild transfer — the caller lets it fault).
        """
        info = self.binary.symtab.function_at(self.isa.name, source_address)
        if info is None:
            return None
        translation = self.translation_for(info.name)
        unit = translation.unit_at(source_address)
        if unit is not None:
            return self._assemble_and_install(source_address, unit.items,
                                              unit.call_returns,
                                              unit.aliases)
        return self._install_fragment(info.name, source_address)

    def _assemble_and_install(self, source_address: int, items,
                              call_returns, aliases=()) -> int:
        asm = Assembler(self.isa)
        for item in items:
            if isinstance(item, str):
                asm.label(item)
            else:
                asm.emit(item)
        sized = asm.assemble(0)
        size = len(sized.data)
        cache_address = self.cache.reserve(size, self.isa.alignment)
        unit = asm.assemble(cache_address)
        self.memory.write_bytes(cache_address, unit.data)
        self.cache.install(source_address, cache_address, size)
        for alias in aliases:
            self.cache.alias(alias, cache_address)
        # Drop call-return entries of whatever previously occupied these
        # bytes; stale entries must never alias a new unit's call sites.
        # The exact start address is excluded: when units are adjacent, a
        # unit ending in CALL registers its return key at the *next*
        # unit's start address, and that entry must survive.  A stale key
        # at the start is harmless — it is either unreachable or about to
        # be re-registered by the unit that owns it.
        stale = [key for key in self.call_return_map
                 if cache_address < key < cache_address + size]
        for key in stale:
            del self.call_return_map[key]
        # Pair emitted calls with their native return addresses so on_call
        # can push source return addresses.
        ordinal = 0
        for address, instruction in zip(unit.addresses, unit.instructions):
            if instruction.op in (Op.CALL, Op.ICALL):
                encoded = len(self.isa.encode(instruction, address))
                if ordinal < len(call_returns):
                    self.call_return_map[address + encoded] = \
                        call_returns[ordinal]
                ordinal += 1
        self.stats.units_installed += 1
        if self.invalidate_listener is not None:
            self.invalidate_listener(cache_address, cache_address + size)
        if self.sibling is not None:
            self.sibling.pretranslate(source_address)
        return cache_address

    def pretranslate(self, sibling_source: int) -> None:
        """HIPStR: translate the equivalent unit for this ISA too (§3.5).

        ``sibling_source`` is a source address in the *other* ISA's text;
        map it to ours via (function, unit-id) correspondence.
        """
        other_isa = "armlike" if self.isa.name == "x86like" else "x86like"
        info = self.binary.symtab.function_at(other_isa, sibling_source)
        if info is None:
            return
        other_translation_key = None
        # Map by unit id: find the unit in the sibling's address space.
        sibling_vm_translation = None
        # Build (or reuse) our translation, then find the unit whose id
        # matches the sibling unit's id.
        try:
            ours = self.translation_for(info.name)
        except TranslationError:      # pragma: no cover - defensive
            return
        per_isa_other = info.per_isa[other_isa]
        per_isa_ours = info.per_isa[self.isa.name]
        our_source = None
        if sibling_source == per_isa_other.entry:
            our_source = per_isa_ours.entry
        else:
            for label, address in per_isa_other.block_addresses.items():
                if address == sibling_source:
                    our_source = per_isa_ours.block_addresses[label]
                    break
        if our_source is None:
            # call-return points: match by ordinal within the function
            other_returns = [s.return_address
                             for s in per_isa_other.call_sites]
            if sibling_source in other_returns:
                index = other_returns.index(sibling_source)
                ours_returns = [s.return_address
                                for s in per_isa_ours.call_sites]
                if index < len(ours_returns):
                    our_source = ours_returns[index]
        if our_source is None:
            return
        if self.cache.peek(our_source) is None:
            unit = ours.unit_at(our_source)
            if unit is not None:
                self._assemble_and_install(our_source, unit.items,
                                           unit.call_returns, unit.aliases)

    def _install_fragment(self, function: str, source_address: int) -> int:
        """Translate from an arbitrary in-function address (gadget entry).

        Disassembles native code from the address to the next control
        transfer and applies the addressing-mode transformation — the code
        path that obfuscates executed ROP gadgets.
        """
        info = self.binary.symtab.function(function)
        section = self.binary.sections[self.isa.name]
        decoded = linear_disassemble(
            self.isa, section.data, section.base_address,
            start=source_address, stop_at_control=True)
        if not decoded:
            raise SecurityViolation(
                "undecodable fragment entry", source_address)
        rewriter = AddressingModeRewriter(
            self.isa, self.reloc_for(function), info.layout,
            info.per_isa[self.isa.name])
        items: List[Instruction] = []
        for entry in decoded:
            items.extend(rewriter.rewrite(entry.instruction).instructions)
        self.stats.fragments_installed += 1
        return self._assemble_and_install(source_address, items, [])

    def _on_flush(self) -> None:
        self.rat.invalidate()
        # call_return_map survives the flush deliberately: a translated
        # CALL may be in flight (the flush happened while resolving its
        # target), and its on_call must still find the native return
        # address.  Entries are pruned as new units overwrite the bytes.
        if self.invalidate_listener is not None:
            self.invalidate_listener(self.cache.base, self.cache.end)

    # ------------------------------------------------------------------
    # ExecutionHooks
    # ------------------------------------------------------------------
    def _in_start_stub(self, address: int) -> bool:
        return self._start_region[0] <= address < self._start_region[1]

    def resolve_target(self, kind: str, cpu: CPUState, target: int) -> int:
        if self.cache.contains_address(target):
            if kind in ("ret", "ijmp", "icall"):
                # SFI: nothing legitimate ever transfers indirectly into
                # the cache (return addresses are source addresses).
                self.stats.sfi_violations += 1
                raise SecurityViolation(
                    f"indirect transfer into code cache via {kind}", target)
            return target
        if self._in_start_stub(target):
            return target

        if (self.migrate_on_next_block and kind in ("jmp", "jcc")
                and self.binary.symtab.is_block_entry(self.isa.name, target)):
            self.migrate_on_next_block = False
            raise MigrationRequested(target, "block")

        indirect = kind in ("ret", "ijmp", "icall")
        if kind == "ret":
            cached = self.rat.lookup(target)
            if cached is not None:
                self.stats.returns_translated += 1
                return cached
        cached = self.cache.lookup(target)
        # An indirect transfer is a *suspected breach* unless its target
        # is both translated and registered as an indirect target.
        if indirect and (cached is None
                         or target not in self.indirect_targets):
            self.stats.record_security_event(kind)
            if self.suppress_migration_once:
                self.suppress_migration_once = False
            elif (self.security_handler is not None
                    and self.security_handler(kind, target)):
                raise MigrationRequested(target, kind)
        elif cached is None:
            self.stats.direct_misses += 1
        if cached is None:
            cached = self.install_unit(target)
            if cached is None:
                return target        # wild transfer: let the fetch fault
        if indirect:
            self.indirect_targets.add(target)
        if kind == "ret":
            self.rat.insert(target, cached)
        self.stats.dispatches += 1
        return cached

    def on_call(self, cpu: CPUState, return_address: int) -> int:
        native_return = self.call_return_map.get(return_address)
        if native_return is None:
            return return_address      # native caller (crt0 stub)
        self.indirect_targets.add(native_return)
        continuation = self.cache.peek(native_return)
        if continuation is not None:
            self.rat.insert(native_return, continuation)
        return native_return

    def prewarm(self) -> None:
        """Translate every unit of every function up front.

        Steady-state equivalent of the paper's fast-forward methodology:
        after prewarming, the code cache holds the whole program and the
        VM's internal structures list every legitimate indirect target
        (function entries and call-return sites), so no compulsory miss
        — and therefore no security event — occurs during measurement.
        """
        for info in self.binary.symtab:
            translation = self.translation_for(info.name)
            for source, unit in list(translation.units.items()):
                if self.cache.peek(source) is None:
                    self._assemble_and_install(source, unit.items,
                                               unit.call_returns,
                                               unit.aliases)
            per_isa = info.per_isa[self.isa.name]
            self.indirect_targets.add(per_isa.entry)
            for site in per_isa.call_sites:
                self.indirect_targets.add(site.return_address)

    # ------------------------------------------------------------------
    # Introspection for the attack framework
    # ------------------------------------------------------------------
    def translated_source_addresses(self) -> Set[int]:
        return self.cache.translated_source_addresses()

    def cache_bytes(self) -> bytes:
        """Current contents of the code cache (the JIT-ROP read surface)."""
        return self.memory.read_bytes(self.cache.base, self.cache.used or 1)

    def rerandomize(self) -> None:
        """Crash/respawn path: rebuild every map and flush (Section 5.3)."""
        self.epoch += 1
        self.reloc_maps.clear()
        self.translations.clear()
        self.cache.flush()
