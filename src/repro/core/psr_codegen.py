"""PSR translation: randomized code generation into translation units.

The PSR virtual machine translates one basic block at a time, but plans
per function: when a function is first entered its relocation map is
built, and every block of the function is lowered to *translation units*
against that map.  Units are installed into the code cache lazily, on
first control transfer to their source address.

A unit corresponds to either a basic block entry or a call-return point
(blocks are split at calls so that every return address a caller pushes is
itself a unit boundary — this is what lets the return address table map
source return addresses to cache continuations).

Key properties of the emitted code (Section 5.1 of the paper):

* every operand is accessed at its *relocated* location — addressing-mode
  changes on x86like, extra load/store temporaries on armlike;
* callee saves are *scattered* to random slots in the prologue and
  *gathered* in the epilogue, replacing the classic ``pop r; ret`` tail;
* arguments travel in a randomized, padded argument window chosen by the
  callee's relocation map (randomized calling convention);
* control transfers name *source* addresses, never cache addresses, so
  nothing on the stack or in registers reveals the cache layout;
* with -O1, unconditional branches are inlined to form superblocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..compiler import ir
from ..compiler.codegen import ArmLikeCodegen, X86LikeCodegen, _RELOP_TO_COND
from ..compiler.symtab import FunctionInfo, ISAFunctionInfo
from ..errors import TranslationError
from ..isa.base import (
    Cond,
    Imm,
    Instruction,
    ISADescription,
    Label,
    Mem,
    Op,
    Reg,
)
from ..isa.x86like import X86LIKE
from .relocation import PSRConfig, RelocationMap

#: superblock formation stops after this many inlined blocks
SUPERBLOCK_LIMIT = 4

Item = Union[str, Instruction]       # a local label or an instruction


@dataclass
class TranslationUnit:
    """One lazily-installable chunk of randomized code."""

    source_address: int              # native address this unit continues
    unit_id: Tuple[str, int]         # (block label, call ordinal within block)
    items: List[Item] = field(default_factory=list)
    #: native return addresses, one per CALL/ICALL emitted, in order
    call_returns: List[int] = field(default_factory=list)
    is_function_entry: bool = False
    #: extra source addresses that should alias to this unit (superblocks)
    aliases: List[int] = field(default_factory=list)

    @property
    def instruction_count(self) -> int:
        return sum(1 for item in self.items if isinstance(item, Instruction))


@dataclass
class FunctionTranslation:
    """All units of one function under one relocation map."""

    function: str
    isa_name: str
    reloc: RelocationMap
    units: Dict[int, TranslationUnit] = field(default_factory=dict)

    def unit_at(self, source_address: int) -> Optional[TranslationUnit]:
        return self.units.get(source_address)


class _UnitRecorder:
    """Assembler-compatible sink that also supports unit splitting."""

    def __init__(self):
        self.units: List[TranslationUnit] = []
        self.current: Optional[TranslationUnit] = None

    def open(self, source_address: int, unit_id, is_entry=False) -> None:
        self.current = TranslationUnit(source_address, unit_id,
                                       is_function_entry=is_entry)
        self.units.append(self.current)

    def emit(self, instruction: Instruction) -> None:
        self.current.items.append(instruction)

    def label(self, name: str) -> None:
        self.current.items.append(name)


class _PSRMixin:
    """Shared PSR overrides for both ISA code generators.

    The mixin replaces the ABI-level behaviour of the native generator:
    locations come from the relocation map, frames are enlarged and
    scattered, and calls use randomized argument windows.
    """

    def init_psr(self, info: FunctionInfo, isa_info: ISAFunctionInfo,
                 reloc: RelocationMap, config: PSRConfig,
                 reloc_provider: Callable[[str], RelocationMap],
                 block_call_returns: Dict[str, List[int]],
                 recorder: _UnitRecorder) -> None:
        self.info = info
        self.isa_info = isa_info
        self.reloc = reloc
        self.config = config
        self.reloc_provider = reloc_provider
        self.block_call_returns = block_call_returns
        self.recorder = recorder
        self._call_ordinal: Dict[str, int] = {}
        self._current_block: Optional[str] = None

    # -- location overrides ------------------------------------------------
    def loc(self, value: str):
        kind, where = self.reloc.location(value)
        if kind == "register":
            return Reg(where)
        return Mem(self.isa.sp, where + self._sp_adjust)

    def slot(self, value: str) -> Mem:
        kind, where = self.reloc.location(value)
        if kind != "stack":
            raise TranslationError(f"{value} has no stack slot")
        return Mem(self.isa.sp, where + self._sp_adjust)

    def gen_addr_local(self, instruction: ir.AddrOfLocal) -> None:
        native = self.layout.local_offsets[instruction.local]
        offset = self.reloc.fixed_base + native + self._sp_adjust
        self.emit(Op.LEA, Reg(self.s0), Mem(self.isa.sp, offset))
        self.store(instruction.dst, Reg(self.s0))

    def gen_addr_function(self, instruction: ir.AddrOfFunction) -> None:
        # Function pointers always hold *source* entry addresses; the VM
        # redirects indirect calls through them at run time.
        self.mov_imm(Reg(self.s0), self._symtab_entry(instruction.function))
        self.store(instruction.dst, Reg(self.s0))

    # -- prologue / epilogue -------------------------------------------
    def prologue(self) -> None:
        reloc = self.reloc
        self.sub_sp(reloc.total_data_size)
        if self.isa.lr is not None:
            # Park the link register in the frame's return-address slot so
            # both ISAs expose identical frame geometry (and RET pops it).
            self.emit(Op.STORE,
                      Mem(self.isa.sp, reloc.return_address_offset),
                      Reg(self.isa.lr))
        # Scatter callee saves to their random slots.
        for register, slot in sorted(reloc.save_slots.items()):
            self.emit(Op.STORE, Mem(self.isa.sp, slot), Reg(register))
        # Fetch incoming arguments from the randomized argument window.
        for index, param in enumerate(self.info.params):
            source = Mem(self.isa.sp, reloc.arg_offset(index))
            kind, where = reloc.location(param)
            if kind == "register":
                self.emit(Op.LOAD, Reg(where), source)
            else:
                self.emit(Op.LOAD, Reg(self.s0), source)
                self.emit(Op.STORE, Mem(self.isa.sp, where), Reg(self.s0))

    def epilogue(self) -> None:
        reloc = self.reloc
        # Randomized gather of the scattered callee saves.
        for register, slot in sorted(reloc.save_slots.items()):
            self.emit(Op.LOAD, Reg(register), Mem(self.isa.sp, slot))
        self.add_sp(reloc.total_data_size)
        self.emit(Op.RET)

    # -- randomized calling convention -----------------------------------
    def _window_words(self, callee_reloc: Optional[RelocationMap],
                      arg_count: int) -> int:
        if callee_reloc is None:        # canonical layout (indirect calls)
            return arg_count
        return callee_reloc.arg_window_words

    def _arg_position(self, callee_reloc: Optional[RelocationMap],
                      index: int) -> int:
        if callee_reloc is None:
            return index
        return callee_reloc.arg_positions[index]

    def _emit_windowed_call(self, args: Sequence[str],
                            callee_reloc: Optional[RelocationMap],
                            do_call: Callable[[], None],
                            dst: Optional[str]) -> None:
        window_bytes = 4 * self._window_words(callee_reloc, len(args))
        # armlike reserves one extra word: the callee stores LR into it,
        # mirroring the slot x86like's CALL push occupies.  The callee's
        # RET consumes that word, so cleanup frees only the window.
        extra = 0 if self.isa.call_pushes_return else 4
        self.sub_sp(window_bytes + extra)
        self._sp_adjust += window_bytes + extra
        for index, arg in enumerate(args):
            value = self.fetch(arg, self.s0)
            position = self._arg_position(callee_reloc, index)
            self.emit(Op.STORE, Mem(self.isa.sp, extra + 4 * position), value)
        do_call()
        self._split_after_call()
        self._sp_adjust -= extra          # consumed by the callee's RET
        self.add_sp(window_bytes)
        self._sp_adjust -= window_bytes
        if dst:
            self.store(dst, Reg(self.isa.return_reg))

    def _split_after_call(self) -> None:
        block = self._current_block
        ordinal = self._call_ordinal.get(block, 0)
        self._call_ordinal[block] = ordinal + 1
        returns = self.block_call_returns.get(block, [])
        if ordinal >= len(returns):
            raise TranslationError(
                f"{self.info.name}/{block}: call ordinal {ordinal} has no "
                "native return address")
        native_return = returns[ordinal]
        self.recorder.current.call_returns.append(native_return)
        self.recorder.open(native_return, (block, ordinal + 1))

    def gen_call(self, instruction: ir.Call) -> None:
        callee_reloc = self.reloc_provider(instruction.function)
        target = self.isa_entry_of(instruction.function)

        def do_call():
            self.emit(Op.CALL, Imm(target))

        self._emit_windowed_call(instruction.args, callee_reloc, do_call,
                                 instruction.dst)

    def gen_call_indirect(self, instruction: ir.CallIndirect) -> None:
        def do_call():
            operand = self.indirect_call_target(instruction.target)
            self.emit(Op.ICALL, operand)

        # Indirect callees keep the canonical argument layout (their
        # identity is unknown at translation time); pass None.
        self._emit_windowed_call(instruction.args, None, do_call,
                                 instruction.dst)

    def isa_entry_of(self, function: str) -> int:
        return self._symtab_entry(function)

    # filled by the translator with a closure over the symbol table
    _symtab_entry: Callable[[str], int]

    # -- control transfers to source addresses ----------------------------
    def emit_source_jump(self, source_address: int) -> None:
        self.emit(Op.JMP, Imm(source_address))

    def emit_source_branch(self, cond: Cond, then_source: int,
                           else_source: int) -> None:
        self.emit(Op.JCC, Imm(then_source), cond=cond)
        self.emit_source_jump(else_source)

    def block_source(self, label: str) -> int:
        return self.isa_info.block_addresses[label]

    def gen_branch(self, instruction: ir.Branch, next_label) -> None:
        a = self.fetch(instruction.a, self.s0)
        b = self.fetch(instruction.b, self.s1)
        self.emit(Op.CMP, a, b)
        self.emit_source_branch(_RELOP_TO_COND[instruction.operator],
                                self.block_source(instruction.then_target),
                                self.block_source(instruction.else_target))


class PSRX86Codegen(_PSRMixin, X86LikeCodegen):
    """x86like PSR generator: direct rel32 jumps reach source code."""


class PSRArmCodegen(_PSRMixin, ArmLikeCodegen):
    """armlike PSR generator.

    Conditional branches have limited reach, so long conditional transfers
    go through a local trampoline: ``Bcc taken; B else; taken: B then``.
    Frame offsets beyond the 16-bit immediate range (large randomization
    spaces) are legalized through an address temporary — the paper's
    "emulate the addressing mode with additional instructions".
    """

    _LEGALIZE_LIMIT = 32000
    _ADDRESS_TEMP = 3          # r3: scratch, unused by s0/s1/s2

    def emit(self, op: Op, *operands, cond: Optional[Cond] = None) -> None:
        if op in (Op.LOAD, Op.STORE, Op.LOADB, Op.STOREB, Op.LEA):
            fixed = []
            for operand in operands:
                if (isinstance(operand, Mem)
                        and abs(operand.disp) > self._LEGALIZE_LIMIT):
                    temp = Reg(self._ADDRESS_TEMP)
                    self.mov_imm(temp, operand.disp)
                    super().emit(Op.ADD, temp, Reg(operand.base))
                    operand = Mem(temp.index, 0)
                fixed.append(operand)
            operands = tuple(fixed)
        elif (op in (Op.ADD, Op.SUB) and len(operands) == 2
                and isinstance(operands[1], Imm)
                and abs(operands[1].signed) > self._LEGALIZE_LIMIT):
            temp = Reg(self._ADDRESS_TEMP)
            self.mov_imm(temp, operands[1].value)
            operands = (operands[0], temp)
        super().emit(op, *operands, cond=cond)

    def emit_source_branch(self, cond: Cond, then_source: int,
                           else_source: int) -> None:
        taken = self.local_label("taken")
        self.emit(Op.JCC, Label(taken), cond=cond)
        self.emit(Op.JMP, Imm(else_source))
        self.asm.label(taken)
        self.emit(Op.JMP, Imm(then_source))


class PSRTranslator:
    """Generates all translation units of one function on one ISA."""

    def __init__(self, program: ir.IRProgram, info: FunctionInfo,
                 isa: ISADescription, reloc: RelocationMap,
                 config: PSRConfig,
                 reloc_provider: Callable[[str], Optional[RelocationMap]],
                 entry_of: Callable[[str], int],
                 global_addresses: Optional[Dict[str, int]] = None):
        self.program = program
        self.fn = program.functions[info.name]
        self.info = info
        self.isa = isa
        self.isa_info = info.per_isa[isa.name]
        self.reloc = reloc
        self.config = config
        self.reloc_provider = reloc_provider
        self.entry_of = entry_of
        self.global_addresses = global_addresses or {}

    def translate(self) -> FunctionTranslation:
        recorder = _UnitRecorder()
        generator_cls = (PSRX86Codegen if self.isa.name == X86LIKE.name
                         else PSRArmCodegen)
        # Reuse the native generator's constructor; allocation/layout are
        # superseded by the relocation map but keep metadata accessible.
        from ..compiler.regalloc import Allocation
        dummy_allocation = Allocation(self.isa.name, {}, [])
        generator = generator_cls(self.fn, self.program, dummy_allocation,
                                  self.info.layout, self.global_addresses,
                                  recorder)
        block_call_returns = self._native_call_returns_by_block()
        generator.init_psr(self.info, self.isa_info, self.reloc, self.config,
                           self.reloc_provider, block_call_returns, recorder)
        generator._symtab_entry = self.entry_of

        translation = FunctionTranslation(self.info.name, self.isa.name,
                                          self.reloc)
        blocks = {blk.label: blk for blk in self.fn.blocks}
        for index, block in enumerate(self.fn.blocks):
            source = self.isa_info.block_addresses[block.label]
            is_entry = index == 0
            unit_source = self.isa_info.entry if is_entry else source
            recorder.open(unit_source, (block.label, 0), is_entry=is_entry)
            if is_entry:
                generator.prologue()
                if unit_source != source:
                    recorder.current.aliases.append(source)
            self._emit_block(generator, recorder, blocks, block,
                             inlined=set())
        for unit in recorder.units:
            translation.units[unit.source_address] = unit
            for alias in unit.aliases:
                translation.units.setdefault(alias, unit)
        return translation

    def _emit_block(self, generator, recorder, blocks, block,
                    inlined: Set[str]) -> None:
        """Emit one block's body; -O1 inlines Jump chains into superblocks."""
        generator._current_block = block.label
        generator._call_ordinal[block.label] = 0
        body, terminator = block.instructions[:-1], block.instructions[-1]
        for instruction in body:
            generator.emit_ir(instruction, None)
        if isinstance(terminator, ir.Jump):
            target = terminator.target
            can_inline = (self.config.opt_level >= 1 and self.config.superblocks
                          and target not in inlined
                          and len(inlined) < SUPERBLOCK_LIMIT)
            if can_inline:
                inlined.add(block.label)
                self._emit_block(generator, recorder, blocks, blocks[target],
                                 inlined)
                return
            generator.emit_source_jump(generator.block_source(target))
        else:
            generator.emit_ir(terminator, None)

    def _native_call_returns_by_block(self) -> Dict[str, List[int]]:
        """Native return addresses of each block's calls, in source order."""
        result: Dict[str, List[int]] = {}
        bounds = self.isa_info.block_bounds()
        for site in self.isa_info.call_sites:
            for label, start, end in bounds:
                if start <= site.address < end:
                    result.setdefault(label, []).append(site.return_address)
                    break
        for sites in result.values():
            sites.sort()
        return result
