"""Convenience runners: execute a fat binary natively or under PSR."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..compiler.fatbinary import FatBinary
from ..isa import ISADescription, ISAS
from ..machine.interpreter import ExecutionResult
from ..machine.process import Process
from .psr import PSRVirtualMachine
from .relocation import PSRConfig


@dataclass
class PSRRun:
    """Outcome of a run under the PSR virtual machine."""

    process: Process
    vm: PSRVirtualMachine
    result: ExecutionResult

    @property
    def exit_code(self) -> Optional[int]:
        return self.process.os.exit_code


def create_psr_process(binary: FatBinary, isa: ISADescription,
                       config: Optional[PSRConfig] = None, seed: int = 0,
                       stdin: bytes = b"") -> Tuple[Process, PSRVirtualMachine]:
    """Build a process whose interpreter executes through a PSR VM."""
    process = Process(binary.to_process_image(), isa)
    process.os.reset(stdin=stdin)
    vm = PSRVirtualMachine(binary, isa, process.memory, config, seed)
    process.interpreter.hooks = vm
    vm.invalidate_listener = process.interpreter.invalidate_decode_cache
    return process, vm


def run_native(binary: FatBinary, isa_name: str, stdin: bytes = b"",
               max_instructions: int = 10_000_000) -> Process:
    """Execute the binary natively (no PSR) on the named ISA."""
    process = Process(binary.to_process_image(), ISAS[isa_name])
    process.os.reset(stdin=stdin)
    process.run(max_instructions)
    return process


def run_under_psr(binary: FatBinary, isa_name: str,
                  config: Optional[PSRConfig] = None, seed: int = 0,
                  stdin: bytes = b"",
                  max_instructions: int = 20_000_000) -> PSRRun:
    """Execute the binary under a PSR virtual machine on the named ISA."""
    process, vm = create_psr_process(binary, ISAS[isa_name], config, seed,
                                     stdin)
    result = process.run(max_instructions)
    return PSRRun(process, vm, result)
