"""Addressing-mode transformation: rewriting native instructions under PSR.

This is the direct instruction-rewriting path of Section 5.1: given a
decoded native instruction and the owning function's relocation map, emit
the equivalent instruction(s) accessing every operand at its *relocated*
location.  Most rewrites are a mere change of addressing mode; when the
ISA lacks the required mode (two memory operands on x86like, any memory
operand on armlike) the rewriter emulates it with scratch-register
temporaries — exactly the paper's fallback.

Two consumers:

* the PSR VM's *fragment translator*, which handles control transfers into
  the middle of a function (including ROP gadget addresses — this is the
  mechanism that obfuscates executed gadgets);
* the attack framework, which uses the same rewriting to decide whether a
  mined gadget survives PSR unmodified (Figures 3–5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..compiler.frames import FrameLayout
from ..compiler.symtab import ISAFunctionInfo
from ..isa.base import (
    ALU_OPS,
    Imm,
    Instruction,
    ISADescription,
    Mem,
    Op,
    Reg,
)
from .relocation import RelocationMap


@dataclass
class RewriteResult:
    """Rewritten instruction sequence plus what changed."""

    instructions: List[Instruction]
    #: True if any operand moved (the gadget no longer does what it did)
    modified: bool
    #: number of distinct randomized parameters touched (entropy input)
    randomized_parameters: int


class AddressingModeRewriter:
    """Rewrites instructions of one function under one relocation map."""

    def __init__(self, isa: ISADescription, reloc: RelocationMap,
                 layout: FrameLayout, isa_info: ISAFunctionInfo):
        self.isa = isa
        self.reloc = reloc
        self.layout = layout
        #: native register -> value it holds (inverse of the allocation)
        self.register_values: Dict[int, str] = {
            reg: value
            for value, reg in isa_info.register_assignment.items()}
        #: native home-slot offset -> value stored there
        self.slot_values: Dict[int, str] = {
            offset: value
            for value, offset in layout.home_offsets.items()}
        self.locals_end = 0
        for offset in layout.local_offsets.values():
            self.locals_end = max(self.locals_end, offset + 4)
        self.s0, self.s1 = isa.scratch[0], isa.scratch[1]

    # ------------------------------------------------------------------
    # Operand mapping
    # ------------------------------------------------------------------
    def map_operand(self, operand) -> Tuple[object, bool]:
        """(relocated operand, moved?) — operand may become Reg or Mem."""
        if isinstance(operand, Reg):
            value = self.register_values.get(operand.index)
            if value is None:
                # No program value lives here natively; PSR's register
                # reallocation still permutes the register identity.
                permuted = self.reloc.register_permutation.get(operand.index)
                if permuted is None:
                    return operand, False          # scratch / sp: untouched
                return Reg(permuted), permuted != operand.index
            kind, where = self.reloc.location(value)
            if kind == "register":
                return Reg(where), where != operand.index
            return Mem(self.isa.sp, where), True
        if isinstance(operand, Mem):
            if operand.base != self.isa.sp:
                return operand, False          # pointer-based: not stack state
            disp = operand.disp
            value = self.slot_values.get(disp)
            if value is not None:
                kind, where = self.reloc.location(value)
                if kind == "register":
                    return Reg(where), True
                return Mem(self.isa.sp, where), where != disp
            if 0 <= disp < max(self.locals_end, 1):
                shifted = self.reloc.fixed_base + disp
                return Mem(self.isa.sp, shifted), shifted != disp
            if disp >= self.layout.frame_data_size:
                shifted = (self.reloc.total_data_size
                           + (disp - self.layout.frame_data_size))
                return Mem(self.isa.sp, shifted), shifted != disp
            # a frame-data offset that is neither a known slot nor a local:
            # attacker-chosen displacement — relocate into the random space
            shifted = (disp * 7 + self.reloc.fixed_base) % \
                max(self.reloc.total_data_size, 4) // 4 * 4
            return Mem(self.isa.sp, shifted), True
        return operand, False

    # ------------------------------------------------------------------
    # Instruction rewriting
    # ------------------------------------------------------------------
    def rewrite(self, instruction: Instruction) -> RewriteResult:
        op = instruction.op
        if op in (Op.MOV, Op.LOAD):
            return self._rewrite_move(instruction)
        if op is Op.STORE:
            return self._rewrite_move(instruction, store=True)
        if op in (Op.LOADB, Op.STOREB):
            return self._rewrite_byte(instruction)
        if op in ALU_OPS:
            return self._rewrite_alu(instruction)
        if op in (Op.NEG, Op.NOT):
            return self._rewrite_unary(instruction)
        if op is Op.PUSH:
            return self._rewrite_push(instruction)
        if op is Op.POP:
            return self._rewrite_pop(instruction)
        if op is Op.LEA:
            return self._rewrite_lea(instruction)
        if op in (Op.IJMP, Op.ICALL):
            return self._rewrite_indirect(instruction)
        # control transfers, syscalls, nop/hlt/movt: unchanged
        return RewriteResult([instruction], False, 0)

    # -- helpers -----------------------------------------------------------
    def _count(self, *flags: bool) -> int:
        return sum(1 for flag in flags if flag)

    def _value_to_reg(self, operand, scratch: int,
                      out: List[Instruction]) -> Reg:
        """Materialize any operand into a register."""
        if isinstance(operand, Reg):
            return operand
        if isinstance(operand, Imm):
            out.append(Instruction(Op.MOV, (Reg(scratch), operand)))
            return Reg(scratch)
        out.append(Instruction(Op.LOAD, (Reg(scratch), operand)))
        return Reg(scratch)

    def _rewrite_move(self, instruction: Instruction,
                      store: bool = False) -> RewriteResult:
        if store:
            dst, moved_dst = self.map_operand(instruction.operands[0])
            src, moved_src = self.map_operand(instruction.operands[1])
        else:
            dst, moved_dst = self.map_operand(instruction.operands[0])
            src, moved_src = self.map_operand(instruction.operands[1])
        out: List[Instruction] = []
        if isinstance(dst, Reg):
            if isinstance(src, Reg):
                out.append(Instruction(Op.MOV, (dst, src)))
            elif isinstance(src, Imm):
                out.append(Instruction(Op.MOV, (dst, src)))
            else:
                out.append(Instruction(Op.LOAD, (dst, src)))
        else:
            source_reg = self._value_to_reg(src, self.s1, out) \
                if not isinstance(src, Imm) or not self.isa.memory_operands \
                else None
            if source_reg is None:
                out.append(Instruction(Op.STORE, (dst, src)))
            else:
                out.append(Instruction(Op.STORE, (dst, source_reg)))
        moved = moved_dst or moved_src
        return RewriteResult(out, moved, self._count(moved_dst, moved_src))

    def _rewrite_byte(self, instruction: Instruction) -> RewriteResult:
        # Byte accesses address real memory through a base register; only
        # the base register operand can be relocated.
        op = instruction.op
        if op is Op.LOADB:
            dst, moved_dst = self.map_operand(instruction.operands[0])
            mem = instruction.operands[1]
        else:
            mem = instruction.operands[0]
            dst, moved_dst = self.map_operand(instruction.operands[1])
        out: List[Instruction] = []
        base_mapped, base_moved = self.map_operand(Reg(mem.base))
        if isinstance(base_mapped, Mem):
            out.append(Instruction(Op.LOAD, (Reg(self.s0), base_mapped)))
            mem = Mem(self.s0, mem.disp)
            base_moved = True
        else:
            mem = Mem(base_mapped.index, mem.disp)
        if op is Op.LOADB:
            if isinstance(dst, Reg):
                out.append(Instruction(Op.LOADB, (dst, mem)))
            else:
                out.append(Instruction(Op.LOADB, (Reg(self.s1), mem)))
                out.append(Instruction(Op.STORE, (dst, Reg(self.s1))))
        else:
            source = self._value_to_reg(dst, self.s1, out)
            out.append(Instruction(Op.STOREB, (mem, source)))
        moved = moved_dst or base_moved
        return RewriteResult(out, moved, self._count(moved_dst, base_moved))

    def _rewrite_alu(self, instruction: Instruction) -> RewriteResult:
        dst, moved_dst = self.map_operand(instruction.operands[0])
        src, moved_src = self.map_operand(instruction.operands[1])
        out: List[Instruction] = []
        op = instruction.op
        if isinstance(dst, Reg):
            if isinstance(src, Mem) and not self.isa.memory_operands:
                src = self._value_to_reg(src, self.s1, out)
            out.append(Instruction(op, (dst, src)))
        else:
            if self.isa.memory_operands and op is not Op.MUL:
                if isinstance(src, (Mem, Imm)):
                    src = self._value_to_reg(src, self.s1, out)
                out.append(Instruction(op, (dst, src)))
            else:
                out.append(Instruction(Op.LOAD, (Reg(self.s0), dst)))
                if isinstance(src, Mem) and not self.isa.memory_operands:
                    src = self._value_to_reg(src, self.s1, out)
                out.append(Instruction(op, (Reg(self.s0), src)))
                if op is not Op.CMP:
                    out.append(Instruction(Op.STORE, (dst, Reg(self.s0))))
        moved = moved_dst or moved_src
        return RewriteResult(out, moved, self._count(moved_dst, moved_src))

    def _rewrite_unary(self, instruction: Instruction) -> RewriteResult:
        dst, moved = self.map_operand(instruction.operands[0])
        out: List[Instruction] = []
        if isinstance(dst, Reg):
            out.append(Instruction(instruction.op, (dst,)))
        else:
            out.append(Instruction(Op.LOAD, (Reg(self.s0), dst)))
            out.append(Instruction(instruction.op, (Reg(self.s0),)))
            out.append(Instruction(Op.STORE, (dst, Reg(self.s0))))
        return RewriteResult(out, moved, self._count(moved))

    def _rewrite_push(self, instruction: Instruction) -> RewriteResult:
        src, moved = self.map_operand(instruction.operands[0])
        out: List[Instruction] = []
        if isinstance(src, Mem) and not self.isa.memory_operands:
            src = self._value_to_reg(src, self.s0, out)
        out.append(Instruction(Op.PUSH, (src,)))
        return RewriteResult(out, moved, self._count(moved))

    def _rewrite_pop(self, instruction: Instruction) -> RewriteResult:
        dst, moved = self.map_operand(instruction.operands[0])
        out: List[Instruction] = []
        if isinstance(dst, Reg):
            out.append(Instruction(Op.POP, (dst,)))
        elif self.isa.memory_operands:
            out.append(Instruction(Op.POP, (dst,)))
        else:
            out.append(Instruction(Op.POP, (Reg(self.s0),)))
            out.append(Instruction(Op.STORE, (dst, Reg(self.s0))))
        return RewriteResult(out, moved, self._count(moved))

    def _rewrite_lea(self, instruction: Instruction) -> RewriteResult:
        dst, moved_dst = self.map_operand(instruction.operands[0])
        mem = instruction.operands[1]
        mapped_mem, moved_mem = self.map_operand(mem)
        out: List[Instruction] = []
        if not isinstance(mapped_mem, Mem):
            # the slot became a register: there is no address to take;
            # synthesize the old address shape against the random space
            mapped_mem = Mem(self.isa.sp, self.reloc.fixed_base)
            moved_mem = True
        if isinstance(dst, Reg):
            out.append(Instruction(Op.LEA, (dst, mapped_mem)))
        else:
            out.append(Instruction(Op.LEA, (Reg(self.s0), mapped_mem)))
            out.append(Instruction(Op.STORE, (dst, Reg(self.s0))))
        moved = moved_dst or moved_mem
        return RewriteResult(out, moved, self._count(moved_dst, moved_mem))

    def _rewrite_indirect(self, instruction: Instruction) -> RewriteResult:
        target, moved = self.map_operand(instruction.operands[0])
        out: List[Instruction] = []
        if isinstance(target, Mem) and not self.isa.memory_operands:
            target = self._value_to_reg(target, self.s0, out)
        out.append(Instruction(instruction.op, (target,)))
        return RewriteResult(out, moved, self._count(moved))
