"""HIPStR: Heterogeneous-ISA Program State Relocation — the full defense.

Composes one PSR virtual machine per ISA over a single process image and
connects them through the migration engine:

* **security migrations** — when an indirect control transfer (a return,
  in this execution model) misses the code cache, the active VM reports a
  potential breach; with probability ``migration_probability`` the system
  migrates to the other ISA at that very control transfer (Section 3.5);
* **performance migrations** — a phase-change policy periodically flags
  the active VM to migrate at the next basic-block boundary, preserving
  the heterogeneous-ISA CMP's performance/energy benefits (Section 5.2);
* **cross-ISA pre-translation** — compulsory misses translate the unit on
  both ISAs so the other core is ready (Section 3.5);
* **re-randomization** — on a crash/respawn, both VMs rebuild every
  relocation map (Section 5.3), which is what defeats Blind-ROP-style
  crash oracles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..compiler.fatbinary import FatBinary
from ..errors import ConfigError, MigrationRollback
from ..faults import injection as _faults
from ..isa import ISAS
from ..isa.base import WORD_SIZE
from ..machine.cpu import CPUState
from ..machine.interpreter import ExecutionResult, Interpreter
from ..machine.process import Process
from ..migration.engine import MigrationEngine, MigrationRecord
from .psr import MigrationRequested, PSRVirtualMachine
from .relocation import PSRConfig

ISA_NAMES = ("x86like", "armlike")


@dataclass
class HIPStRResult:
    """Outcome of a HIPStR-protected run."""

    result: ExecutionResult
    exit_code: Optional[int]
    migrations: List[MigrationRecord]
    final_isa: str
    steps_by_isa: Dict[str, int]
    #: migrations that failed mid-transform, were rolled back, and
    #: resumed on the source ISA
    rollbacks: int = 0
    #: migration requests dropped before any state moved (chaos only)
    dropped_migrations: int = 0

    @property
    def migration_count(self) -> int:
        return len(self.migrations)


class HIPStRSystem:
    """A process protected by heterogeneous-ISA program state relocation."""

    def __init__(self, binary: FatBinary,
                 config: Optional[PSRConfig] = None,
                 seed: int = 0,
                 migration_probability: float = 1.0,
                 start_isa: str = "x86like",
                 stdin: bytes = b"",
                 phase_interval: Optional[int] = None,
                 verify: bool = False):
        if start_isa not in ISA_NAMES:
            raise ConfigError(f"unknown ISA {start_isa!r}")
        self.binary = binary
        self.config = config or PSRConfig()
        self.seed = seed
        self.migration_probability = migration_probability
        self.phase_interval = phase_interval
        self._rng = random.Random(f"hipstr:{seed}")

        self.process = Process(binary.to_process_image(), ISAS[start_isa])
        self.process.os.reset(stdin=stdin)
        memory = self.process.memory

        self.vms: Dict[str, PSRVirtualMachine] = {}
        self.interpreters: Dict[str, Interpreter] = {}
        for isa_name in ISA_NAMES:
            vm = PSRVirtualMachine(binary, ISAS[isa_name], memory,
                                   self.config, seed)
            vm.security_handler = self._security_handler
            self.vms[isa_name] = vm
        self.vms["x86like"].sibling = self.vms["armlike"]
        self.vms["armlike"].sibling = self.vms["x86like"]

        for isa_name in ISA_NAMES:
            if isa_name == start_isa:
                interpreter = self.process.interpreter
                interpreter.hooks = self.vms[isa_name]
            else:
                cpu = CPUState(ISAS[isa_name])
                interpreter = Interpreter(cpu, memory, self.process.os,
                                          self.vms[isa_name])
            self.vms[isa_name].invalidate_listener = \
                interpreter.invalidate_decode_cache
            self.interpreters[isa_name] = interpreter

        self.engine = MigrationEngine(binary, self.vms, verify=verify)
        self.active_isa = start_isa
        self.steps_by_isa: Dict[str, int] = {name: 0 for name in ISA_NAMES}
        self.rollbacks = 0
        self.dropped_migrations = 0

    # ------------------------------------------------------------------
    @property
    def active_interpreter(self) -> Interpreter:
        return self.interpreters[self.active_isa]

    @property
    def active_vm(self) -> PSRVirtualMachine:
        return self.vms[self.active_isa]

    @property
    def other_isa(self) -> str:
        return "armlike" if self.active_isa == "x86like" else "x86like"

    def _security_handler(self, kind: str, native_target: int) -> bool:
        """Probabilistic migration decision on a suspected breach."""
        if kind != "ret":
            # The execution engine migrates at returns and block entries;
            # other indirect misses are still *counted* as security events
            # by the VM (the analytic models use those counts).
            return False
        return self._rng.random() < self.migration_probability

    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 20_000_000) -> HIPStRResult:
        """Execute to completion, migrating whenever a VM requests it."""
        remaining = max_instructions
        phase_budget = self.phase_interval
        while True:
            interpreter = self.active_interpreter
            chunk = remaining
            if phase_budget is not None:
                chunk = min(chunk, phase_budget)
            before = interpreter.steps_executed
            try:
                result = interpreter.run(chunk)
            except MigrationRequested as request:
                executed = interpreter.steps_executed - before
                remaining -= executed
                self.steps_by_isa[self.active_isa] += executed
                self._migrate(request)
                continue
            executed = interpreter.steps_executed - before
            remaining -= executed
            self.steps_by_isa[self.active_isa] += executed
            if phase_budget is not None:
                phase_budget -= executed
            if result.reason == "limit" and remaining > 0:
                if phase_budget is not None and phase_budget <= 0:
                    # phase change: migrate at the next block boundary
                    self.active_vm.migrate_on_next_block = True
                    phase_budget = self.phase_interval
                continue
            return HIPStRResult(
                result=result,
                exit_code=self.process.os.exit_code,
                migrations=list(self.engine.history),
                final_isa=self.active_isa,
                steps_by_isa=dict(self.steps_by_isa),
                rollbacks=self.rollbacks,
                dropped_migrations=self.dropped_migrations,
            )

    def _migrate(self, request: MigrationRequested) -> None:
        source = self.active_isa
        target = self.other_isa
        source_interpreter = self.interpreters[source]
        injector = _faults.get()
        if injector is not None:
            event = injector.fire("migration.drop", key=request.kind)
            if event is not None:
                # The request never reaches the engine: re-queue on the
                # source ISA as if the hand-off were refused.
                self._requeue(request, source_interpreter)
                self.dropped_migrations += 1
                _faults.recovered("migration.request", "requeue")
                return
        try:
            target_cpu = self.engine.migrate(
                source, target, source_interpreter.cpu, self.process.memory,
                request.native_target, request.kind)
        except MigrationRollback:
            # The engine already restored the pre-migration state; resume
            # on the source ISA and let policy re-trigger later.
            self._requeue(request, source_interpreter)
            self.rollbacks += 1
            return
        target_interpreter = self.interpreters[target]
        target_interpreter.cpu = target_cpu
        target_cpu.halted = False
        self.active_isa = target

    def _requeue(self, request: MigrationRequested,
                 interpreter: Interpreter) -> None:
        """Resume on the source ISA so the transfer re-executes cleanly.

        For a ``ret`` request the faulting RET already popped its return
        slot (the interpreter raises out of ``resolve_target`` after the
        pop, before the PC moves), so un-pop it: the word is still in
        memory below the checkpointed window's writes.  One security-
        migration decision is suppressed so the re-executed RET makes
        forward progress instead of immediately re-requesting.
        """
        if request.kind == "ret":
            interpreter.cpu.sp -= WORD_SIZE
            self.vms[self.active_isa].suppress_migration_once = True
        # "block" requests need no re-arm: the jmp/jcc re-executes as a
        # plain transfer (migrate_on_next_block was already consumed) and
        # the phase policy re-raises at a later block boundary.

    # ------------------------------------------------------------------
    def rerandomize(self) -> None:
        """Respawn path: re-randomize both VMs (Section 5.3)."""
        for vm in self.vms.values():
            vm.rerandomize()


def run_under_hipstr(binary: FatBinary, *, config: Optional[PSRConfig] = None,
                     seed: int = 0, migration_probability: float = 1.0,
                     start_isa: str = "x86like", stdin: bytes = b"",
                     phase_interval: Optional[int] = None,
                     max_instructions: int = 20_000_000,
                     verify: bool = False,
                     ) -> tuple:
    """One-call convenience: build a HIPStR system and run it."""
    system = HIPStRSystem(binary, config, seed, migration_probability,
                          start_isa, stdin, phase_interval, verify)
    result = system.run(max_instructions)
    return system, result
