"""Relocation maps: the per-function randomization plans of PSR.

Constructed by the PSR virtual machine the first time a function is
entered (Section 3.4).  A relocation map fixes, for one randomization
epoch, where every piece of the function's program state lives:

* **register reallocation** — which values sit in (randomly chosen)
  registers, per the optimization level's register-cache/bias policy;
* **stack slot coloring** — a random, collision-free slot inside the
  enlarged frame for every other value, for every scattered callee save,
  and a random base for the fixed-local region (arrays keep their internal
  layout but the whole region lands at a random base, which is what
  randomizes the buffer→return-address distance an overflow must guess);
* **randomized calling convention** — argument positions inside a padded
  argument window, chosen by the callee, honoured by every translated
  caller.

The frame is enlarged by 2–16 pages of randomization space (Section 5.1),
yielding the paper's 13–16 bits of entropy per relocated parameter.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..compiler.ir import IRFunction
from ..compiler.liveness import loop_depths, use_counts
from ..compiler.symtab import FunctionInfo
from ..errors import ConfigError, TranslationError
from ..isa.base import ISADescription, WORD_SIZE

PAGE_SIZE = 4096


@dataclass(frozen=True)
class PSRConfig:
    """Tunables of the PSR virtual machine (paper defaults)."""

    #: pages of stack randomization space added per frame (2..16)
    randomization_pages: int = 2
    #: optimization level 0..3 (Table 3 of the paper)
    opt_level: int = 3
    #: entries in the hardware return address table
    rat_size: int = 512
    #: code cache capacity in bytes
    code_cache_size: int = 1 << 20
    #: extra words of padding in each argument window
    arg_window_pad: int = 8
    #: inline unconditional branches into superblocks (part of -O1)
    superblocks: bool = True

    def __post_init__(self):
        if not 1 <= self.randomization_pages <= 16:
            raise ConfigError("randomization_pages must be in 1..16")
        if self.opt_level not in (0, 1, 2, 3):
            raise ConfigError("opt_level must be 0..3")

    @property
    def randomization_space(self) -> int:
        return self.randomization_pages * PAGE_SIZE

    @property
    def entropy_bits_per_parameter(self) -> float:
        """Paper metric: log2 of the byte positions a parameter may take."""
        return math.log2(self.randomization_space)

    @property
    def register_cache_size(self) -> int:
        """-O2's global register cache holds three hot values (Section 5.4)."""
        return 3 if self.opt_level >= 2 else 0

    @property
    def register_bias(self) -> bool:
        """-O3 keeps at least three values relocated register→register."""
        return self.opt_level >= 3


@dataclass
class RelocationMap:
    """One function's randomization plan on one ISA."""

    function: str
    isa_name: str
    #: value -> randomly chosen register
    registers: Dict[str, int]
    #: value -> random sp-relative slot offset
    slots: Dict[str, int]
    #: random base offset of the fixed-local region
    fixed_base: int
    #: native frame-data size (before enlargement)
    native_data_size: int
    #: enlarged frame-data size (native + randomization space)
    total_data_size: int
    #: callee-saved register -> random scatter slot
    save_slots: Dict[int, int]
    #: argument index -> word position inside the argument window
    arg_positions: Dict[int, int]
    #: argument window size in words (>= number of args)
    arg_window_words: int
    #: random permutation of the allocatable register file.  Applied to
    #: register references that do not correspond to a mapped value —
    #: this is PSR's register *reallocation* acting on the raw register
    #: identity, so even a bare ``pop ebx; ret`` gadget pops into a
    #: different, unpredictable register.
    register_permutation: Dict[int, int] = field(default_factory=dict)

    def location(self, value: str):
        """('register', index) or ('stack', offset) for a value."""
        if value in self.registers:
            return ("register", self.registers[value])
        return ("stack", self.slots[value])

    def arg_offset(self, index: int) -> int:
        """Callee-view sp-relative offset of incoming argument ``index``."""
        return self.total_data_size + WORD_SIZE + WORD_SIZE * self.arg_positions[index]

    @property
    def return_address_offset(self) -> int:
        return self.total_data_size

    def randomizable_parameter_count(self) -> float:
        """Average randomized parameters per instruction-window (Table 2)."""
        return len(self.registers) + len(self.slots) + 1  # +1: return address


def build_relocation_map(info: FunctionInfo, fn: IRFunction,
                         isa: ISADescription, config: PSRConfig,
                         rng: random.Random,
                         convention_rng: Optional[random.Random] = None,
                         ) -> RelocationMap:
    """Randomize one function's state locations (see module docstring).

    ``convention_rng`` drives the *calling convention* randomization
    (argument window size and positions).  HIPStR seeds it identically on
    both ISAs so a frame built by one ISA's callers matches the geometry
    the other ISA's translation expects after migration — the "common
    stack frame organization" invariant of Section 3.2.  Register and
    slot randomization still come from the per-ISA ``rng``.
    """
    if convention_rng is None:
        convention_rng = rng
    layout = info.layout
    native_data = layout.frame_data_size
    total_data = native_data + config.randomization_space

    locals_size = layout.locals_region_size

    # The fixed-local region keeps its internal layout but lands at a
    # random word-aligned base inside the enlarged frame.  The base comes
    # from the ISA-independent convention stream: pointers into fixed
    # locals (address-taken scalars, arrays) are plain addresses that must
    # stay valid across migration, so both ISAs must agree on it.
    max_base = max(total_data - locals_size, WORD_SIZE)
    fixed_base = convention_rng.randrange(0, max_base // WORD_SIZE) * WORD_SIZE \
        if locals_size else 0

    occupied: Set[int] = set()
    if locals_size:
        for offset in range(fixed_base, fixed_base + locals_size, WORD_SIZE):
            occupied.add(offset)

    def random_slot() -> int:
        for _ in range(10_000):
            offset = rng.randrange(0, total_data // WORD_SIZE) * WORD_SIZE
            if offset not in occupied:
                occupied.add(offset)
                return offset
        raise TranslationError(
            f"{info.name}: randomization space exhausted")  # pragma: no cover

    # --- register reallocation ---------------------------------------
    memory_only = set(fn.locals)
    values = [v for v in fn.all_values() if v not in memory_only]
    depths = loop_depths(fn)
    costs = use_counts(fn, depths)
    values.sort(key=lambda v: (-costs.get(v, 0.0), v))

    register_pool = list(isa.allocatable)
    rng.shuffle(register_pool)
    registers: Dict[str, int] = {}
    in_registers = config.register_cache_size
    if config.register_bias:
        in_registers = min(len(register_pool), in_registers + 3)
    for value in values[:in_registers]:
        if not register_pool:
            break
        registers[value] = register_pool.pop()

    slots = {value: random_slot() for value in values
             if value not in registers}

    # --- callee-save scatter slots -------------------------------------
    save_slots = {reg: random_slot() for reg in sorted(set(registers.values()))}

    # --- register-file permutation --------------------------------------
    pool = list(isa.allocatable)
    shuffled = list(pool)
    rng.shuffle(shuffled)
    register_permutation = dict(zip(pool, shuffled))

    # --- randomized calling convention ---------------------------------
    arg_count = len(info.params)
    window_words = arg_count + (
        convention_rng.randrange(1, config.arg_window_pad + 1)
        if arg_count else 0)
    positions = (convention_rng.sample(range(window_words), arg_count)
                 if arg_count else [])
    arg_positions = {index: position for index, position in enumerate(positions)}

    return RelocationMap(
        function=info.name,
        isa_name=isa.name,
        registers=registers,
        slots=slots,
        fixed_base=fixed_base,
        native_data_size=native_data,
        total_data_size=total_data,
        save_slots=save_slots,
        arg_positions=arg_positions,
        arg_window_words=window_words,
        register_permutation=register_permutation,
    )
