"""HIPStR core: PSR virtual machines, relocation, and the combined defense."""

from .psr import MigrationRequested, PSRStats, PSRVirtualMachine
from .relocation import PSRConfig, RelocationMap, build_relocation_map
from .runner import PSRRun, create_psr_process, run_native, run_under_psr
from .transforms import AddressingModeRewriter, RewriteResult

__all__ = [
    "AddressingModeRewriter",
    "MigrationRequested",
    "PSRConfig",
    "PSRRun",
    "PSRStats",
    "PSRVirtualMachine",
    "RelocationMap",
    "RewriteResult",
    "build_relocation_map",
    "create_psr_process",
    "run_native",
    "run_under_psr",
]
