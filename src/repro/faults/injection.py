"""The process-wide fault injector and its hook-site protocol.

Hook sites in the interpreter, the migration engine, the runtime engine,
and the artifact cache all follow one pattern::

    injector = injection.get()
    if injector is not None:
        event = injector.fire("cache.flip_byte", key=str(path))
        if event is not None:
            ...apply the fault...

``get()`` is a module-global read — effectively free when no chaos run
is active, so the hooks cost nothing in production paths.

**Determinism.**  Every decision is a pure function of ``(plan.seed,
site, kind, key, ordinal)`` where ``ordinal`` counts prior decisions for
that exact tuple prefix.  No global RNG is shared between sites, so the
interleaving of hook sites (which varies with scheduling) cannot change
any individual decision — two runs with the same seed produce the same
fault log, and a keyed decision (``key=job.key``) is identical no matter
which worker process executes the job.

**Worker inheritance.**  :func:`injected` exports the plan spec through
``REPRO_FAULTS``; engine workers call :func:`ensure_worker` before each
job and lazily install the same plan, each with fresh counters — which
is exactly right, because keyed decisions don't depend on counters from
other processes.
"""

from __future__ import annotations

import contextlib
import os
import random
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import FaultInjected
from ..obs import context as obs
from .plan import FAULT_SITES, FaultEvent, FaultPlan

ENV_FAULTS = "REPRO_FAULTS"


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic fire/no-fire calls."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.log: List[FaultEvent] = []
        self.counts: Dict[str, int] = {}
        self._ordinals: Dict[Tuple[str, str, str], int] = {}

    # ------------------------------------------------------------------
    def fire(self, kind: str, key: str = "",
             detail: str = "") -> Optional[FaultEvent]:
        """Decide whether fault ``kind`` fires here; log and return it.

        Returns the :class:`FaultEvent` when the fault fires, ``None``
        otherwise.  The caller applies the fault's effect (and usually
        raises via :meth:`raise_fault` or mutates state).
        """
        rate = self.plan.rate(kind)
        if rate <= 0.0:
            return None
        site = FAULT_SITES[kind]
        slot = (site, kind, key)
        ordinal = self._ordinals.get(slot, 0)
        self._ordinals[slot] = ordinal + 1
        if self.plan.limit is not None and \
                self.counts.get(kind, 0) >= self.plan.limit:
            return None
        decision = random.Random(
            f"{self.plan.seed}|{site}|{kind}|{key}|{ordinal}").random()
        if decision >= rate:
            return None
        event = FaultEvent(site=site, kind=kind, ordinal=ordinal,
                           key=key, detail=detail)
        self.log.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if obs.enabled():
            obs.get_registry().counter(
                "faults.injected", site=site, kind=kind).inc()
            obs.event("fault.injected", site=site, kind=kind,
                      ordinal=ordinal, key=key)
        return event

    def rng_for(self, event: FaultEvent) -> random.Random:
        """A deterministic RNG for parameterizing one fired fault."""
        return random.Random(
            f"{self.plan.seed}|param|{event.site}|{event.kind}"
            f"|{event.key}|{event.ordinal}")

    @staticmethod
    def raise_fault(event: FaultEvent) -> None:
        raise FaultInjected(event.site, event.kind, event.ordinal)

    # ------------------------------------------------------------------
    def log_digest(self) -> str:
        """Stable digest of the fault log (the determinism check)."""
        import hashlib
        hasher = hashlib.sha256()
        for event in self.log:
            hasher.update(event.render().encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def __repr__(self) -> str:
        return (f"<FaultInjector seed={self.plan.seed} "
                f"fired={len(self.log)}>")


# ----------------------------------------------------------------------
# Process-wide installation
# ----------------------------------------------------------------------
_injector: Optional[FaultInjector] = None
_worker_spec: Optional[str] = None
#: True when the current injector was built from REPRO_FAULTS (a worker)
_env_installed = False


def get() -> Optional[FaultInjector]:
    """The installed injector, or None (the common, zero-cost case)."""
    return _injector


def active() -> bool:
    return _injector is not None


def install(plan: Union[FaultPlan, FaultInjector]) -> FaultInjector:
    """Install a process-wide injector (fresh counters and log)."""
    global _injector, _env_installed
    injector = plan if isinstance(plan, FaultInjector) \
        else FaultInjector(plan)
    _injector = injector
    _env_installed = False
    return injector


def uninstall() -> None:
    global _injector, _worker_spec, _env_installed
    _injector = None
    _worker_spec = None
    _env_installed = False


def recovered(site: str, action: str, count: int = 1) -> None:
    """Record one recovery at a hook site (works with or without faults).

    Self-healing paths call this whether the damage was injected or
    real; the chaos harness cross-checks ``faults.recovered`` against
    ``faults.injected`` so no recovery is silent.
    """
    if obs.enabled():
        obs.get_registry().counter(
            "faults.recovered", site=site, action=action).inc(count)
        obs.event("fault.recovered", site=site, action=action)


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Install ``plan`` for the duration, exporting it to workers too."""
    global _injector
    previous_injector = _injector
    previous_env = os.environ.get(ENV_FAULTS)
    injector = install(plan)
    os.environ[ENV_FAULTS] = plan.to_spec()
    try:
        yield injector
    finally:
        _injector = previous_injector
        if previous_env is None:
            os.environ.pop(ENV_FAULTS, None)
        else:
            os.environ[ENV_FAULTS] = previous_env


def ensure_worker() -> None:
    """Install (or refresh) the injector from ``REPRO_FAULTS`` if set.

    Called by the engine before each job: in a worker process the module
    globals start empty, so the env var is the only way the plan arrives.
    In the parent it is a no-op (an injector is already installed, or
    the env var is absent).
    """
    global _worker_spec, _env_installed
    spec = os.environ.get(ENV_FAULTS)
    if not spec or spec == _worker_spec:
        return
    if _injector is None or _env_installed:
        install(FaultPlan.from_spec(spec))
        _env_installed = True
    _worker_spec = spec
