"""Deterministic fault injection and the chaos/differential harness.

Three modules (see DESIGN.md "Fault injection & recovery"):

* :mod:`repro.faults.plan` — the typed fault catalog, per-kind rates,
  and the ``REPRO_FAULTS`` spec round-trip;
* :mod:`repro.faults.injection` — the process-wide injector with
  seed-deterministic per-site decisions and the recovery counters;
* :mod:`repro.faults.fuzz` — the property-based differential harness
  behind ``repro chaos``: random mini-C programs × random migration
  schedules, run natively on each ISA and under HIPStR with faults on,
  asserting bit-identical results or a *detected, typed* failure.

``fuzz`` is imported lazily (by the CLI and tests) because it pulls in
the whole pipeline; ``plan``/``injection`` stay dependency-light so the
hook sites in hot paths can import them without cycles.
"""

from .injection import (
    ENV_FAULTS,
    FaultInjector,
    active,
    ensure_worker,
    get,
    injected,
    install,
    recovered,
    uninstall,
)
from .plan import (
    DEFAULT_RATES,
    FAULT_KINDS,
    FAULT_SITES,
    FaultEvent,
    FaultPlan,
    default_plan,
)

__all__ = [
    "ENV_FAULTS",
    "FaultInjector",
    "active",
    "ensure_worker",
    "get",
    "injected",
    "install",
    "recovered",
    "uninstall",
    "DEFAULT_RATES",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultEvent",
    "FaultPlan",
    "default_plan",
]
