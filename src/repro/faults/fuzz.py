"""Property-based differential chaos harness behind ``repro chaos``.

The strongest end-to-end property the fault subsystem can check: for a
randomly generated mini-C program and a random migration schedule, a
HIPStR run *with faults injected* must either

* produce the exact exit code of clean native execution (the faults were
  absorbed by checkpoint/rollback, re-queue, retry, or recompute), or
* fail with a **typed** :class:`~repro.errors.ReproError` subclass (the
  fault was detected and reported).

What it must never do is silently diverge — finish "successfully" with a
different exit code — or escape through an untyped exception.  Both are
recorded as failures by :func:`run_case`.

Everything is reproducible from one ``--fault-seed``: the program
generator, the schedule generator, and every per-case fault plan derive
from it, so a failing case replays bit-identically (and can be frozen
into the regression corpus under ``tests/corpus/``).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..compiler import compile_minic
from ..core.hipstr import run_under_hipstr
from ..core.runner import run_native
from ..errors import ReproError
from ..runtime.cache import digest, get_cache
from . import injection
from .plan import FaultPlan, default_plan

#: instruction budget per differential case — generated programs finish
#: in well under a million steps; hitting this bound is itself a failure
CASE_MAX_INSTRUCTIONS = 3_000_000


# ----------------------------------------------------------------------
# Program generation
# ----------------------------------------------------------------------
class ProgramGenerator:
    """Seed-driven random mini-C programs, terminating by construction.

    The surface deliberately leans on everything migration must preserve:
    multiple call frames with randomized layouts (helper chains), stack
    arrays, globals, bounded loops with ``break``/``continue``, and the
    full two-operand ALU including C-style truncating division — always
    by a positive constant, so no case faults on a zero divisor.
    """

    OPS = ("+", "-", "*", "&", "|", "^")

    def __init__(self, rng: random.Random):
        self.rng = rng

    # -- expressions ---------------------------------------------------
    def _expr(self, names: Sequence[str], depth: int = 0) -> str:
        rng = self.rng
        if depth >= 2 or rng.random() < 0.35:
            if names and rng.random() < 0.7:
                return rng.choice(list(names))
            return str(rng.randrange(0, 64))
        left = self._expr(names, depth + 1)
        right = self._expr(names, depth + 1)
        roll = rng.random()
        if roll < 0.1:
            return f"({left} / {rng.randrange(1, 9)})"
        if roll < 0.2:
            return f"({left} % {rng.randrange(1, 9)})"
        if roll < 0.3:
            return f"(({left} << {rng.randrange(0, 4)}) & 0xFFFF)"
        if roll < 0.4:
            return f"({left} >> {rng.randrange(0, 4)})"
        return f"({left} {rng.choice(self.OPS)} {right})"

    def _cond(self, names: Sequence[str]) -> str:
        op = self.rng.choice(("<", ">", "<=", ">=", "==", "!="))
        return f"{self._expr(names, 1)} {op} {self._expr(names, 1)}"

    # -- helpers -------------------------------------------------------
    def _helper(self, index: int, callable_helpers: List[str]) -> str:
        rng = self.rng
        params = [f"p{j}" for j in range(rng.randrange(1, 4))]
        names = list(params)
        lines = [f"int h{index}({', '.join('int ' + p for p in params)}) {{"]
        for j in range(rng.randrange(0, 2)):
            local = f"v{j}"
            lines.append(f"  int {local}; {local} = {self._expr(names)};")
            names.append(local)
        if callable_helpers and rng.random() < 0.6:
            callee = rng.choice(callable_helpers)
            arity = self._arities[callee]
            args = ", ".join(f"({self._expr(names, 1)}) & 0xFF"
                             for _ in range(arity))
            lines.append(f"  int c; c = {callee}({args});")
            names.append("c")
        if rng.random() < 0.5:
            lines.append(f"  if ({self._cond(names)}) "
                         f"{{ return ({self._expr(names)}) & 0xFFFF; }}")
        lines.append(f"  return ({self._expr(names)}) & 0xFFFF;")
        lines.append("}")
        self._arities[f"h{index}"] = len(params)
        return "\n".join(lines)

    # -- whole programs ------------------------------------------------
    def generate(self) -> str:
        rng = self.rng
        self._arities: Dict[str, int] = {}
        parts: List[str] = []

        n_globals = rng.randrange(0, 3)
        globals_ = []
        for g in range(n_globals):
            init = rng.randrange(0, 32)
            parts.append(f"int g{g} = {init};")
            globals_.append(f"g{g}")

        n_helpers = rng.randrange(1, 4)
        helper_names: List[str] = []
        for index in range(n_helpers):
            parts.append(self._helper(index, helper_names))
            helper_names.append(f"h{index}")

        bound = rng.randrange(2, 14)
        names = ["acc", "i"] + globals_
        body: List[str] = [
            "int main() {",
            "  int acc; int i;",
            f"  acc = {rng.randrange(0, 50)};",
            "  i = 0;",
        ]
        use_array = rng.random() < 0.5
        if use_array:
            body.append("  int buf[4];")
            body.append("  buf[0] = 1; buf[1] = 2; buf[2] = 3; buf[3] = 5;")
        body.append(f"  while (i < {bound}) {{")
        for _ in range(rng.randrange(1, 4)):
            callee = rng.choice(helper_names)
            args = ", ".join(f"({self._expr(names, 1)}) & 0xFF"
                             for _ in range(self._arities[callee]))
            body.append(f"    acc = acc + {callee}({args});")
        if use_array:
            body.append("    buf[i & 3] = acc & 0xFF;")
            body.append("    acc = acc + buf[(i + 1) & 3];")
        if globals_ and rng.random() < 0.7:
            g = rng.choice(globals_)
            body.append(f"    {g} = ({g} + acc) & 0xFFF;")
            body.append(f"    acc = acc ^ {g};")
        if rng.random() < 0.3:
            body.append(f"    if ({self._cond(names)}) "
                        f"{{ i = i + 1; continue; }}")
        if rng.random() < 0.2:
            body.append(f"    if (acc > {rng.randrange(1 << 18, 1 << 20)}) "
                        "{ break; }")
        body.append("    acc = acc & 0xFFFFF;")
        body.append("    i = i + 1;")
        body.append("  }")
        body.append("  return acc % 251;")
        body.append("}")
        parts.append("\n".join(body))
        return "\n\n".join(parts)


# ----------------------------------------------------------------------
# Schedules and cases
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MigrationSchedule:
    """When and how often the HIPStR run migrates."""

    seed: int
    migration_probability: float
    phase_interval: Optional[int]
    start_isa: str

    @classmethod
    def random(cls, rng: random.Random) -> "MigrationSchedule":
        return cls(
            seed=rng.randrange(1 << 16),
            migration_probability=rng.choice((0.0, 0.25, 0.5, 1.0)),
            phase_interval=rng.choice((None, 500, 1000, 2500, 5000)),
            start_isa=rng.choice(("x86like", "armlike")),
        )


@dataclass(frozen=True)
class ChaosCase:
    """One differential case: a program plus a migration schedule."""

    case_id: str
    source: str
    schedule: MigrationSchedule

    def to_dict(self) -> Dict[str, Any]:
        return {"case_id": self.case_id, "source": self.source,
                "schedule": asdict(self.schedule)}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ChaosCase":
        return cls(case_id=raw["case_id"], source=raw["source"],
                   schedule=MigrationSchedule(**raw["schedule"]))


def generate_cases(fault_seed: int, count: int) -> List[ChaosCase]:
    """The deterministic case list for one chaos run."""
    cases = []
    for index in range(count):
        rng = random.Random(f"chaos-case:{fault_seed}:{index}")
        source = ProgramGenerator(rng).generate()
        schedule = MigrationSchedule.random(rng)
        cases.append(ChaosCase(case_id=f"case-{fault_seed}-{index}",
                               source=source, schedule=schedule))
    return cases


def case_plan(base: FaultPlan, case_id: str) -> FaultPlan:
    """Derive the per-case fault plan: same rates, case-specific seed.

    Per-case seeding keeps every case's fault log self-contained — a
    case replays identically whether it runs alone, serially in a batch,
    or on any engine worker.
    """
    raw = hashlib.sha256(f"{base.seed}:{case_id}".encode()).digest()
    return base.with_seed(int.from_bytes(raw[:4], "big"))


# ----------------------------------------------------------------------
# Running one case
# ----------------------------------------------------------------------
@dataclass
class CaseOutcome:
    """What one differential case did, with its full fault evidence."""

    case_id: str
    status: str                  # ok | divergence | native-divergence |
    #                              detected:<Type> | crash:<Type> | nohalt
    native_exit: Optional[int] = None
    chaos_exit: Optional[int] = None
    migrations: int = 0
    rollbacks: int = 0
    dropped: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    fault_digest: str = ""
    detail: str = ""

    @property
    def ok(self) -> bool:
        # ``skipped:`` is graceful degradation (an open circuit breaker
        # refused to burn a retry budget), not a silent divergence
        return (self.status == "ok" or self.status.startswith("detected:")
                or self.status.startswith("skipped:"))

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "CaseOutcome":
        return cls(**raw)


def run_case(case: ChaosCase, base_plan: FaultPlan) -> CaseOutcome:
    """Compile clean, run native clean, then run HIPStR under faults."""
    binary = compile_minic(case.source)
    native_x = run_native(binary, "x86like").os.exit_code
    native_a = run_native(binary, "armlike").os.exit_code
    if native_x is None or native_x != native_a:
        return CaseOutcome(
            case_id=case.case_id, status="native-divergence",
            native_exit=native_x,
            detail=f"x86like={native_x} armlike={native_a}")

    plan = case_plan(base_plan, case.case_id)
    previous = injection.get()
    injector = injection.install(plan)
    outcome = CaseOutcome(case_id=case.case_id, status="ok",
                          native_exit=native_x)
    try:
        # Round-trip the binary through the artifact cache while faults
        # are live: the ``put`` may flip a stored byte and the re-read
        # must checksum-detect it, quarantine, and recompute.
        cache = get_cache()
        key = digest("chaos", case.case_id, case.source)
        cache.put("chaos.binary", key, binary)
        binary = cache.get_or_compute(
            "chaos.binary", key, lambda: compile_minic(case.source))

        schedule = case.schedule
        try:
            _, result = run_under_hipstr(
                binary, seed=schedule.seed,
                migration_probability=schedule.migration_probability,
                start_isa=schedule.start_isa,
                phase_interval=schedule.phase_interval,
                max_instructions=CASE_MAX_INSTRUCTIONS)
        except ReproError as exc:
            outcome.status = f"detected:{type(exc).__name__}"
            outcome.detail = str(exc)[:200]
        except Exception as exc:     # untyped escape = taxonomy hole
            outcome.status = f"crash:{type(exc).__name__}"
            outcome.detail = str(exc)[:200]
        else:
            outcome.chaos_exit = result.exit_code
            outcome.migrations = result.migration_count
            outcome.rollbacks = result.rollbacks
            outcome.dropped = result.dropped_migrations
            if result.result.reason != "halt":
                outcome.status = "nohalt"
                outcome.detail = result.result.reason
            elif result.exit_code != native_x:
                outcome.status = "divergence"
                outcome.detail = (f"native={native_x} "
                                  f"chaos={result.exit_code}")
        outcome.fault_counts = dict(injector.counts)
        outcome.fault_digest = injector.log_digest()
    finally:
        if previous is None:
            injection.uninstall()
        else:
            injection.install(previous)
    return outcome


def _case_job(case_dict: Dict[str, Any],
              plan_spec: str) -> Dict[str, Any]:
    """Module-level engine job: run one case (picklable by reference)."""
    case = ChaosCase.from_dict(case_dict)
    return run_case(case, FaultPlan.from_spec(plan_spec)).to_dict()


# ----------------------------------------------------------------------
# Whole chaos runs
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """Aggregate of one ``repro chaos`` invocation."""

    fault_seed: int
    iterations: int
    outcomes: List[CaseOutcome]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self) -> List[CaseOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return dict(sorted(counts.items()))

    def fault_counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for outcome in self.outcomes:
            for kind, count in outcome.fault_counts.items():
                totals[kind] = totals.get(kind, 0) + count
        return dict(sorted(totals.items()))

    def digest(self) -> str:
        """Stable digest of every per-case fault log (determinism check)."""
        hasher = hashlib.sha256()
        for outcome in self.outcomes:
            hasher.update(outcome.case_id.encode())
            hasher.update(outcome.fault_digest.encode())
            hasher.update(outcome.status.encode())
        return hasher.hexdigest()


def chaos_run(fault_seed: int, iterations: int,
              plan: Optional[FaultPlan] = None,
              engine=None) -> ChaosReport:
    """Run ``iterations`` differential cases, optionally fanned out.

    Each case installs its own derived injector inside the case runner,
    so results are identical serial or parallel, and independent of the
    ``REPRO_FAULTS`` environment.
    """
    base = plan if plan is not None \
        else default_plan(fault_seed).with_seed(fault_seed)
    cases = generate_cases(fault_seed, iterations)
    if engine is not None:
        # Even the serial engine path matters: it is what makes a chaos
        # run journal-able and resumable (engine.run appends the
        # write-ahead records and serves completed cases on resume).
        from ..runtime.engine import Job
        jobs = [Job(key=case.case_id, fn=_case_job,
                    args=(case.to_dict(), base.to_spec()),
                    workload=case.case_id)
                for case in cases]
        outcomes = [_outcome_of(result) for result in engine.run(jobs)]
    else:
        outcomes = [run_case(case, base) for case in cases]
    return ChaosReport(fault_seed=fault_seed, iterations=iterations,
                       outcomes=outcomes)


def _outcome_of(result) -> CaseOutcome:
    """Convert one engine :class:`JobResult` into a :class:`CaseOutcome`.

    A failed job is not a silent divergence: a circuit-breaker skip maps
    to the typed ``skipped:circuit_open`` status, anything else to
    ``detected:EngineError`` (the engine's retry/quarantine machinery
    caught and reported it).
    """
    if result.ok:
        return CaseOutcome.from_dict(result.value)
    status = ("skipped:circuit_open" if result.outcome == "circuit_open"
              else "detected:EngineError")
    return CaseOutcome(case_id=result.key, status=status,
                       detail=(result.error or "").splitlines()[0][:200])


def chaos_workloads(fault_seed: int, rate_scale: float = 1.0,
                    names: Optional[Sequence[str]] = None,
                    work: int = 1,
                    max_instructions: int = 20_000_000,
                    ) -> List[CaseOutcome]:
    """Chaos sweep over the benchmark suite: every workload, faults on."""
    from ..workloads.suite import WORKLOADS, compile_workload
    outcomes: List[CaseOutcome] = []
    for name in (names if names is not None else sorted(WORKLOADS)):
        binary = compile_workload(name, work=work)
        stdin = WORKLOADS[name].stdin
        native = run_native(binary, "x86like", stdin=stdin,
                            max_instructions=max_instructions).os.exit_code
        plan = case_plan(default_plan(fault_seed, rate_scale), f"wl-{name}")
        previous = injection.get()
        injector = injection.install(plan)
        outcome = CaseOutcome(case_id=f"wl-{name}", status="ok",
                              native_exit=native)
        try:
            try:
                _, result = run_under_hipstr(
                    binary, seed=fault_seed, migration_probability=0.5,
                    stdin=stdin, phase_interval=2500,
                    max_instructions=max_instructions)
            except ReproError as exc:
                outcome.status = f"detected:{type(exc).__name__}"
                outcome.detail = str(exc)[:200]
            except Exception as exc:
                outcome.status = f"crash:{type(exc).__name__}"
                outcome.detail = str(exc)[:200]
            else:
                outcome.chaos_exit = result.exit_code
                outcome.migrations = result.migration_count
                outcome.rollbacks = result.rollbacks
                outcome.dropped = result.dropped_migrations
                if result.result.reason != "halt":
                    outcome.status = "nohalt"
                elif result.exit_code != native:
                    outcome.status = "divergence"
                    outcome.detail = (f"native={native} "
                                      f"chaos={result.exit_code}")
            outcome.fault_counts = dict(injector.counts)
            outcome.fault_digest = injector.log_digest()
        finally:
            if previous is None:
                injection.uninstall()
            else:
                injection.install(previous)
        outcomes.append(outcome)
    return outcomes


# ----------------------------------------------------------------------
# Regression corpus
# ----------------------------------------------------------------------
CORPUS_VERSION = 1


def save_corpus(cases: Sequence[ChaosCase], path: Path) -> None:
    """Freeze cases as JSON for verbatim replay in CI."""
    payload = {"version": CORPUS_VERSION,
               "cases": [case.to_dict() for case in cases]}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_corpus(path: Path) -> List[ChaosCase]:
    raw = json.loads(Path(path).read_text())
    if raw.get("version") != CORPUS_VERSION:
        raise ReproError(
            f"corpus {path} has version {raw.get('version')!r}, "
            f"expected {CORPUS_VERSION}")
    return [ChaosCase.from_dict(entry) for entry in raw["cases"]]
