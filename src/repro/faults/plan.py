"""Typed fault catalog and the seed-driven :class:`FaultPlan`.

A *fault* is one way the system can partially fail: a stack word that
rots mid-relocation, a cache artifact whose bytes flip on disk, a worker
job that hangs or dies, a migration request that never arrives.  The
plan assigns each fault kind a rate; the injector (:mod:`.injection`)
turns rates into deterministic per-site decisions so a whole chaos run
replays bit-identically from one ``--fault-seed``.

Every kind is matched by a recovery mechanism in the subsystem it
targets (see DESIGN.md "Fault injection & recovery"):

========================  ==========================  =====================
kind                      hook site                   recovery
========================  ==========================  =====================
``stack.corrupt_word``    migration transform         checkpoint/rollback
``transform.raise``       mid stack transform         checkpoint/rollback
``migration.drop``        migration request           re-queue on source ISA
``cache.flip_byte``       artifact cache ``put``      checksum → quarantine
                                                      → recompute
``job.kill``              engine job execution        retry w/ backoff, then
                                                      quarantine
``job.delay``             engine job execution        per-attempt timeout
                                                      escalation
``decode.flush``          interpreter decode cache    transparent re-decode
``worker.hang``           supervised-pool dispatch    watchdog kill +
                                                      replace + retry
``orchestrator.kill``     journaled job completion    ``repro resume``
                                                      replays the journal
``request.drop``          serve request dispatch      typed 503 to the
                                                      client, who retries
``server.kill``           serve request completion    journal re-attach on
                                                      restart, recomputed=0
``tenant.flood``          serve client harness        per-tenant quota
                                                      sheds load with 429s
========================  ==========================  =====================

``worker.hang`` is decided in the parent and shipped to the worker as an
instruction to stop heartbeating (so the supervisor's watchdog must
catch it), and ``orchestrator.kill`` SIGKILLs the engine's own process
right after a ``job_done`` record becomes durable — it only ever fires
when a run journal is active, because resume is its recovery.

The ``request.drop`` / ``server.kill`` / ``tenant.flood`` trio targets
the *service* layer (:mod:`repro.serve`): a dropped request surfaces as
a typed retryable rejection, ``server.kill`` SIGKILLs the daemon right
after a ``request_done`` record is durable (the differential client
harness restarts it and must read back identical responses), and
``tenant.flood`` is decided in the *client* harness — one tenant bursts
past its quota and the admission controller must shed exactly the
excess with typed 429s while other tenants proceed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigError

#: every fault kind the injector knows how to fire, with its hook site
FAULT_SITES: Dict[str, str] = {
    "stack.corrupt_word": "migration.transform",
    "transform.raise": "stack_transform.pass2",
    "migration.drop": "migration.request",
    "cache.flip_byte": "cache.put",
    "job.kill": "engine.job",
    "job.delay": "engine.job",
    "decode.flush": "interpreter.decode",
    "worker.hang": "engine.worker",
    "orchestrator.kill": "engine.run",
    "request.drop": "serve.dispatch",
    "server.kill": "serve.request_done",
    "tenant.flood": "serve.client",
}

FAULT_KINDS: Tuple[str, ...] = tuple(sorted(FAULT_SITES))

#: rates used by ``default_plan`` — high enough that a 25-iteration
#: chaos run exercises every kind, low enough that most runs complete
DEFAULT_RATES: Dict[str, float] = {
    "stack.corrupt_word": 0.02,
    "transform.raise": 0.02,
    "migration.drop": 0.05,
    "cache.flip_byte": 0.25,
    "job.kill": 0.10,
    "job.delay": 0.10,
    "decode.flush": 0.01,
    "worker.hang": 0.10,
    "orchestrator.kill": 0.05,
    "request.drop": 0.06,
    "server.kill": 0.03,
    "tenant.flood": 0.10,
}


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault — the unit of the reproducible fault log."""

    site: str
    kind: str
    ordinal: int                     # per-(site, key) firing ordinal
    key: str = ""                    # discriminator (job key, cache path…)
    detail: str = ""

    def render(self) -> str:
        extra = f" key={self.key}" if self.key else ""
        detail = f" ({self.detail})" if self.detail else ""
        return f"{self.site}#{self.ordinal} {self.kind}{extra}{detail}"


@dataclass(frozen=True)
class FaultPlan:
    """Seed plus per-kind rates; the whole configuration of a chaos run.

    Serializes to a flat ``seed=S;kind=rate;...`` spec string that rides
    in the ``REPRO_FAULTS`` environment variable so engine worker
    processes inherit the exact same plan.
    """

    seed: int
    rates: Dict[str, float] = field(default_factory=dict)
    #: cap on total fires per (site, kind); None = unlimited
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        for kind, rate in self.rates.items():
            if kind not in FAULT_SITES:
                raise ConfigError(
                    f"unknown fault kind {kind!r}; known: "
                    f"{', '.join(FAULT_KINDS)}")
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"fault rate for {kind!r} must be in [0, 1], got {rate}")

    def rate(self, kind: str) -> float:
        return self.rates.get(kind, 0.0)

    def scaled(self, factor: float) -> "FaultPlan":
        """The same plan with every rate multiplied (and clamped to 1)."""
        return FaultPlan(
            seed=self.seed,
            rates={kind: min(rate * factor, 1.0)
                   for kind, rate in self.rates.items()},
            limit=self.limit)

    def with_seed(self, seed: int) -> "FaultPlan":
        return FaultPlan(seed=seed, rates=dict(self.rates), limit=self.limit)

    # -- env round-trip --------------------------------------------------
    def to_spec(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        for kind in sorted(self.rates):
            parts.append(f"{kind}={self.rates[kind]!r}")
        return ";".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        seed = 0
        limit: Optional[int] = None
        rates: Dict[str, float] = {}
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise ConfigError(f"malformed fault spec chunk {chunk!r}")
            name, _, value = chunk.partition("=")
            if name == "seed":
                seed = int(value)
            elif name == "limit":
                limit = int(value)
            else:
                rates[name] = float(value)
        return cls(seed=seed, rates=rates, limit=limit)


def default_plan(seed: int, rate_scale: float = 1.0,
                 only: Optional[Iterable[str]] = None) -> FaultPlan:
    """The default chaos plan: every fault kind at its catalog rate."""
    kinds: List[str] = list(only) if only is not None else list(FAULT_KINDS)
    rates = {kind: DEFAULT_RATES[kind] for kind in kinds}
    return FaultPlan(seed=seed, rates=rates).scaled(rate_scale)
