"""Admission control: decide *before* queueing whether work may enter.

Every way the server can refuse a request is a typed
:class:`AdmissionRejected` subclass carrying an HTTP status and an
optional ``Retry-After`` hint, so clients never have to parse prose to
learn whether retrying is worthwhile:

=====================  ======  ===========  ==========================
rejection              status  retryable    trigger
=====================  ======  ===========  ==========================
:class:`QueueFull`     429     yes          bounded admission queue at
                                            capacity (global backlog)
:class:`QuotaExceeded` 429     yes          tenant already has its full
                                            quota of requests in flight
:class:`BreakerOpen`   429     after        circuit breaker open for
                               cooldown     this (tenant, workload)
:class:`Draining`      503     elsewhere    server received SIGTERM and
                                            stopped admitting
:class:`DeadlineExceeded` 504  no           deadline budget spent while
                                            the request sat in queue
=====================  ======  ===========  ==========================

The breaker is the PR 5 :class:`~repro.runtime.supervisor.CircuitBreaker`
keyed by ``tenant/workload`` — repeated failures of one tenant's
workload shed that stream (and, with a cooldown, half-open probe it
back) without affecting the tenant's other workloads or anyone else.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..errors import ReproError
from ..runtime.supervisor import CircuitBreaker

DEFAULT_QUEUE_LIMIT = 64
DEFAULT_TENANT_QUOTA = 8


class AdmissionRejected(ReproError):
    """Base of every typed admission refusal."""

    #: HTTP status the server maps this rejection to
    status = 429
    #: seconds the client should wait before retrying (None = no hint)
    retry_after: Optional[float] = 1.0


class QueueFull(AdmissionRejected):
    status = 429
    retry_after = 1.0


class QuotaExceeded(AdmissionRejected):
    status = 429
    retry_after = 1.0


class BreakerOpen(AdmissionRejected):
    status = 429

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class Draining(AdmissionRejected):
    status = 503
    retry_after = None


class DeadlineExceeded(AdmissionRejected):
    status = 504
    retry_after = None


class AdmissionController:
    """Bounded backlog + per-tenant quotas + per-(tenant, workload) breaker.

    Thread-safe: the asyncio handler admits under the lock, the executor
    thread releases and records outcomes under the same lock.
    """

    def __init__(self, queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 tenant_quota: int = DEFAULT_TENANT_QUOTA,
                 breaker: Optional[CircuitBreaker] = None):
        self.queue_limit = queue_limit
        self.tenant_quota = tenant_quota
        self.breaker = breaker
        self._lock = threading.Lock()
        self._in_flight = 0
        self._by_tenant: Dict[str, int] = {}
        self._draining = False
        self.admitted = 0
        self.rejected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def breaker_key(self, tenant: str, workload: str) -> str:
        return f"{tenant}/{workload}"

    def admit(self, tenant: str, workload: str) -> None:
        """Reserve a slot for one request or raise a typed rejection."""
        with self._lock:
            if self._draining:
                self._count_rejection("draining")
                raise Draining("server is draining; retry elsewhere")
            if self._in_flight >= self.queue_limit:
                self._count_rejection("queue_full")
                raise QueueFull(
                    f"admission queue full ({self._in_flight}/"
                    f"{self.queue_limit} in flight)")
            held = self._by_tenant.get(tenant, 0)
            if held >= self.tenant_quota:
                self._count_rejection("quota")
                raise QuotaExceeded(
                    f"tenant {tenant!r} at quota "
                    f"({held}/{self.tenant_quota} in flight)")
            if self.breaker is not None:
                key = self.breaker_key(tenant, workload)
                if not self.breaker.allow(key):
                    self._count_rejection("breaker_open")
                    raise BreakerOpen(
                        f"circuit breaker open for {key!r}",
                        retry_after=self.breaker.cooldown)
            self._in_flight += 1
            self._by_tenant[tenant] = held + 1
            self.admitted += 1

    def release(self, tenant: str) -> None:
        """Return the slot reserved by a successful :meth:`admit`."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            held = self._by_tenant.get(tenant, 0) - 1
            if held > 0:
                self._by_tenant[tenant] = held
            else:
                self._by_tenant.pop(tenant, None)

    def record_outcome(self, tenant: str, workload: str, ok: bool) -> bool:
        """Feed one terminal outcome to the breaker.

        Returns True when this outcome *opened* the breaker (the caller
        journals the transition drain separately).
        """
        if self.breaker is None:
            return False
        with self._lock:
            return self.breaker.record(self.breaker_key(tenant, workload),
                                       ok)

    # ------------------------------------------------------------------
    def start_draining(self) -> None:
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def tenant_load(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._by_tenant)

    def _count_rejection(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view for ``/v1/status`` and ``/metrics``."""
        with self._lock:
            return {
                "in_flight": self._in_flight,
                "queue_limit": self.queue_limit,
                "tenant_quota": self.tenant_quota,
                "by_tenant": dict(self._by_tenant),
                "draining": self._draining,
                "admitted": self.admitted,
                "rejected": dict(self.rejected),
            }
