"""The ``repro serve`` daemon: crash-consistent multi-tenant execution.

Request lifecycle (see DESIGN.md "Service layer" for the full state
machine)::

    parse → idempotency check → ADMIT → journal(request_received)
          → queue → dispatch → execute (retry/backoff)
          → store result → journal(request_done | request_failed)
          → respond

Two invariants make the layer crash-consistent:

* **durable before visible** — a response is sent only after its
  ``request_done`` record (and the stored payload it points at) is
  fsync'd.  The ``server.kill`` chaos fault SIGKILLs the daemon in the
  window *after* durability and *before* the response, which is exactly
  the window a client retry must be able to close: the restarted server
  serves the stored payload byte-identically, ``recomputed=0``.
* **typed or settled, never silent** — every admitted request either
  settles in the journal or is refused with a typed
  :class:`~repro.serve.admission.AdmissionRejected` before any work
  happens.  There is no path that consumes a request without leaving a
  record a restart can answer from.

The execution model is deliberately boring: one executor thread drains
a bounded queue, so per-tenant artifact-cache roots can be swapped
around each request without cross-talk, and every engine interaction is
single-threaded.  Concurrency lives in the asyncio front end (many
connections) and inside the engine (process fan-out), not in the
service core.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import queue
import signal
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from .. import obs
from ..errors import (
    CacheIntegrityError,
    ConfigError,
    FaultInjected,
    ReproError,
)
from ..faults import injection
from ..runtime import durable
from ..runtime.cache import ENV_CACHE_DIR, configure_cache, digest
from ..runtime.engine import ExperimentEngine, journal_breaker_transitions
from ..runtime.supervisor import CircuitBreaker
from .admission import (
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_TENANT_QUOTA,
    AdmissionController,
    AdmissionRejected,
    DeadlineExceeded,
)
from .spec import RequestSpec, execute_spec, result_digest

#: exit code of a graceful SIGTERM drain (matches the CLI convention)
DRAIN_EXIT_CODE = 130

#: failure classes worth a server-side retry (transient by taxonomy);
#: everything else in the tree is deterministic and re-running it would
#: only repeat the same answer
RETRYABLE_TYPES: Tuple[type, ...] = (
    FaultInjected, CacheIntegrityError, TimeoutError, ConnectionError,
)


def is_retryable(exc: BaseException) -> bool:
    return isinstance(exc, RETRYABLE_TYPES)


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs, decoupled from argv."""

    journal_dir: Path
    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral, printed when ready
    cache_root: Optional[Path] = None   # per-tenant roots live under here
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    tenant_quota: int = DEFAULT_TENANT_QUOTA
    breaker_threshold: int = 3
    breaker_cooldown: Optional[float] = None
    retries: int = 2
    backoff: float = 0.05
    #: deadline applied when a request carries none (ms; None = unbounded)
    default_deadline_ms: Optional[int] = None
    engine_workers: int = 1
    #: arm the ``server.kill`` chaos hook (daemon mode only — an
    #: in-process test server must never SIGKILL the test runner)
    allow_kill: bool = False
    resume_run_id: Optional[str] = None


@dataclass
class _Work:
    """One admitted request travelling from the front end to the executor."""

    spec: RequestSpec
    admitted_at: float
    deadline_at: Optional[float]
    #: completion callback, called exactly once with (status, body)
    settle: Any = None


class ServerCore:
    """The synchronous service core: admission, execution, durability.

    Deliberately free of sockets and asyncio so tests can drive the
    whole request lifecycle with plain function calls; the HTTP front
    end is a thin adapter on top.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        if not obs.enabled():
            obs.enable()
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown)
        self.admission = AdmissionController(
            queue_limit=config.queue_limit,
            tenant_quota=config.tenant_quota,
            breaker=self.breaker)
        self.journal, replay = self._attach_journal()
        #: request_id -> settle info ({"final", "status", "body"})
        self._settled: Dict[str, Dict[str, Any]] = {}
        self._inflight_ids: set = set()
        self._lock = threading.Lock()
        self.requests_executed = 0
        self.requests_resumed = 0      # answered from the journal store
        self.started_at = time.time()
        if replay is not None:
            self._adopt_replay(replay)

    # -- journal attach / re-attach ------------------------------------
    def _attach_journal(self):
        directory = Path(self.config.journal_dir)
        replay = self._find_resumable(directory)
        if replay is not None:
            journal = durable.RunJournal.resume(directory, replay)
            return journal, replay
        journal = durable.RunJournal.create(
            directory, ["serve", self.config.host], run_id=None)
        return journal, None

    def _find_resumable(self, directory: Path):
        """The journal to re-attach to: named run, else latest unfinished."""
        run_id = self.config.resume_run_id
        if run_id:
            path = durable.find_run(directory, run_id)
            return durable.replay_journal(path)
        candidates = []
        if directory.is_dir():
            for info in durable.list_runs(directory):
                if info.status in ("interrupted", "crashed") \
                        and info.argv[:1] == ["serve"]:
                    candidates.append(info)
        if not candidates:
            return None
        latest = max(candidates, key=lambda info: info.created)
        path = durable.journal_path(directory, latest.run_id)
        return durable.replay_journal(path)

    def _adopt_replay(self, replay) -> None:
        """Fold a pre-crash journal back into live state."""
        for request_id, record in replay.requests_settled.items():
            entry = self._settle_entry_from_record(record)
            if entry is not None:
                self._settled[request_id] = entry
        self.breaker.preload(replay.breaker_open)
        self.requests_reattached = len(replay.requests_settled)
        self.requests_pending_at_crash = len(replay.requests_pending)

    def _settle_entry_from_record(self, record) -> Optional[Dict[str, Any]]:
        if record.get("type") == "request_done":
            key = record.get("artifact_key", "")
            hit, payload = self.journal.store.get(
                durable.REQUEST_KIND, key)
            if not hit:
                return None          # store eviction: recompute on retry
            return {"final": True, "status": 200,
                    "body": {"status": "ok",
                             "request_id": record.get("request_id", ""),
                             "payload": payload,
                             "digest": record.get("result_digest", "")}}
        return {"final": bool(record.get("final", True)),
                "status": int(record.get("http_status", 500)),
                "body": {"status": "error",
                         "request_id": record.get("request_id", ""),
                         "error": {"type": record.get("error_type", ""),
                                   "message": record.get("message", ""),
                                   "retryable":
                                       not record.get("final", True)}}}

    # -- admission ------------------------------------------------------
    def admit(self, raw_body: bytes,
              deadline_header: Optional[str] = None):
        """Parse + admit one POST body.

        Returns either ``("reply", status, body)`` for anything that can
        be answered without executing (idempotent replay, typed
        rejection, parse error) or ``("work", _Work)`` for an admitted
        request the executor must run.
        """
        try:
            parsed = json.loads(raw_body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return ("reply", 400, _error_body(
                "", "ConfigError", f"request body is not JSON: {exc}",
                retryable=False))
        try:
            spec = RequestSpec.from_dict(parsed)
            if deadline_header is not None:
                spec = RequestSpec(
                    kind=spec.kind, params=spec.params,
                    tenant=spec.tenant, request_id=spec.request_id,
                    deadline_ms=_parse_deadline(deadline_header))
        except ConfigError as exc:
            return ("reply", 400, _error_body(
                str(parsed.get("request_id", ""))
                if isinstance(parsed, dict) else "",
                "ConfigError", str(exc), retryable=False))
        if not spec.request_id:
            spec = RequestSpec(kind=spec.kind, params=spec.params,
                               tenant=spec.tenant,
                               request_id=f"auto-{uuid.uuid4().hex[:12]}",
                               deadline_ms=spec.deadline_ms)

        replay = self._idempotent_reply(spec.request_id)
        if replay is not None:
            return ("reply", replay[0], replay[1])

        with self._lock:
            if spec.request_id in self._inflight_ids:
                return ("reply", 409, _error_body(
                    spec.request_id, "InFlight",
                    f"request {spec.request_id!r} is already executing",
                    retryable=True))
            try:
                self.admission.admit(spec.tenant, spec.workload)
            except AdmissionRejected as exc:
                body = _error_body(spec.request_id,
                                   type(exc).__name__, str(exc),
                                   retryable=exc.status != 504)
                if exc.retry_after is not None:
                    body["retry_after"] = exc.retry_after
                self._count("serve.rejected", reason=type(exc).__name__)
                return ("reply", exc.status, body)
            self._inflight_ids.add(spec.request_id)

        deadline_ms = spec.deadline_ms or self.config.default_deadline_ms
        now = time.monotonic()
        work = _Work(spec=spec, admitted_at=now,
                     deadline_at=(now + deadline_ms / 1000.0
                                  if deadline_ms else None))
        self.journal.append(
            "request_received", request_id=spec.request_id,
            tenant=spec.tenant, kind=spec.kind, workload=spec.workload,
            spec=spec.to_dict(), deadline_ms=deadline_ms)
        self._count("serve.admitted", tenant=spec.tenant)
        return ("work", work)

    def _idempotent_reply(self, request_id: str):
        """A settled request is answered from the journal, not re-run."""
        with self._lock:
            entry = self._settled.get(request_id)
        if entry is None or not entry["final"]:
            return None               # unknown, or retryable: re-execute
        body = dict(entry["body"])
        body["resumed"] = True
        self.requests_resumed += 1
        self._count("serve.resumed")
        return (entry["status"], body)

    # -- execution (executor thread) -----------------------------------
    def execute(self, work: _Work) -> Tuple[int, Dict[str, Any]]:
        """Run one admitted request to a settled, journaled outcome."""
        spec = work.spec
        try:
            payload = self._run_attempts(work)
        except AdmissionRejected as exc:     # deadline spent in queue
            result = self._settle_failure(work, exc, exc.status,
                                          final=True)
        except ReproError as exc:
            final = not is_retryable(exc)
            status = 500 if final else 503
            result = self._settle_failure(work, exc, status, final=final)
        except Exception as exc:             # crash:<Type> — still typed
            result = self._settle_failure(work, exc, 500, final=True)
        else:
            result = self._settle_done(work, payload)
        finally:
            with self._lock:
                self._inflight_ids.discard(spec.request_id)
            self.admission.release(spec.tenant)
        return result

    def _run_attempts(self, work: _Work):
        """The retry/backoff loop around one spec execution."""
        spec = work.spec
        last: Optional[BaseException] = None
        for attempt in range(self.config.retries + 1):
            self._check_deadline(work)
            try:
                self._maybe_drop(spec)
                payload = self._execute_spec(work)
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                last = exc
                self._count("serve.retries", tenant=spec.tenant)
                if attempt < self.config.retries:
                    time.sleep(self.config.backoff * (2 ** attempt))
                continue
            # a payload computed after the deadline is still a 504 —
            # the client's budget, not the server's effort, is the
            # contract being kept
            self._check_deadline(work)
            if last is not None:
                injection.recovered("serve.dispatch", "retry")
            return payload
        assert last is not None
        raise last

    def _maybe_drop(self, spec: RequestSpec) -> None:
        """The ``request.drop`` chaos hook: lose the dispatch, typed."""
        injector = injection.get()
        if injector is None:
            return
        event = injector.fire("request.drop", key=spec.request_id)
        if event is not None:
            injector.raise_fault(event)

    def _execute_spec(self, work: _Work):
        spec = work.spec
        remaining = self._remaining(work)
        engine = ExperimentEngine(
            workers=self.config.engine_workers,
            job_timeout=remaining, retries=0,
            backoff=self.config.backoff)
        with self._tenant_cache(spec.tenant):
            with obs.span("serve.execute", kind=spec.kind,
                          tenant=spec.tenant):
                started = time.monotonic()
                payload = execute_spec(spec, engine=engine)
                self._observe_latency(spec, time.monotonic() - started)
        return payload

    def _observe_latency(self, spec: RequestSpec, elapsed: float) -> None:
        registry = obs.get_registry()
        registry.counter("serve.executed", kind=spec.kind,
                         tenant=spec.tenant).inc()
        registry.gauge("serve.last_latency_seconds",
                       kind=spec.kind).set(elapsed)

    def _check_deadline(self, work: _Work) -> None:
        if work.deadline_at is not None \
                and time.monotonic() >= work.deadline_at:
            raise DeadlineExceeded(
                f"deadline of request {work.spec.request_id!r} expired "
                f"before execution finished")

    def _remaining(self, work: _Work) -> Optional[float]:
        if work.deadline_at is None:
            return None
        return max(0.01, work.deadline_at - time.monotonic())

    @contextlib.contextmanager
    def _tenant_cache(self, tenant: str):
        """Swap the process-global artifact cache to this tenant's root.

        Safe because the executor thread serializes all execution; the
        env var travels to engine worker processes so their cache writes
        land in the same namespace.
        """
        if self.config.cache_root is None:
            yield
            return
        root = Path(self.config.cache_root) / "tenants" / tenant
        previous_env = os.environ.get(ENV_CACHE_DIR)
        os.environ[ENV_CACHE_DIR] = str(root)
        configure_cache(root=root)
        try:
            yield
        finally:
            if previous_env is None:
                os.environ.pop(ENV_CACHE_DIR, None)
            else:
                os.environ[ENV_CACHE_DIR] = previous_env
            configure_cache(root=previous_env)

    # -- settlement -----------------------------------------------------
    def _settle_done(self, work: _Work, payload) -> Tuple[int, Dict]:
        spec = work.spec
        payload_digest = result_digest(payload)
        artifact_key = digest(durable.REQUEST_KIND,
                              self.journal.config_digest, spec.request_id)
        # value durable before the pointer record, mirroring job_done
        try:
            self.journal.store.put(durable.REQUEST_KIND, artifact_key,
                                   payload)
        except Exception:
            pass                      # unpicklable: retry would recompute
        self.journal.append(
            "request_done", request_id=spec.request_id,
            tenant=spec.tenant, kind=spec.kind,
            artifact_key=artifact_key, result_digest=payload_digest,
            elapsed=round(time.monotonic() - work.admitted_at, 6))
        self.requests_executed += 1
        body = {"status": "ok", "request_id": spec.request_id,
                "payload": payload, "digest": payload_digest}
        with self._lock:
            self._settled[spec.request_id] = {
                "final": True, "status": 200, "body": body}
        self._fold_outcome(spec, ok=True)
        self._maybe_server_kill(spec)
        reply = dict(body)
        reply["resumed"] = False
        return (200, reply)

    def _settle_failure(self, work: _Work, exc: BaseException,
                        status: int, final: bool) -> Tuple[int, Dict]:
        spec = work.spec
        self.journal.append(
            "request_failed", request_id=spec.request_id,
            tenant=spec.tenant, kind=spec.kind,
            error_type=type(exc).__name__, message=str(exc),
            http_status=status, final=final,
            elapsed=round(time.monotonic() - work.admitted_at, 6))
        self.requests_executed += 1
        body = _error_body(spec.request_id, type(exc).__name__,
                           str(exc), retryable=not final)
        with self._lock:
            self._settled[spec.request_id] = {
                "final": final, "status": status, "body": dict(body)}
        self._count("serve.failed", type=type(exc).__name__,
                    tenant=spec.tenant)
        self._fold_outcome(spec, ok=False)
        return (status, body)

    def _fold_outcome(self, spec: RequestSpec, ok: bool) -> None:
        opened = self.admission.record_outcome(spec.tenant, spec.workload,
                                               ok)
        if opened:
            injection.recovered("serve.dispatch", "breaker_open")
        journal_breaker_transitions(self.breaker, self.journal)

    def _maybe_server_kill(self, spec: RequestSpec) -> None:
        """The ``server.kill`` chaos hook: durable, then dead.

        Fires only in daemon mode, only after the ``request_done``
        record is fsync'd — the restarted server must serve this very
        request from its store, which is the property under test.
        """
        if not self.config.allow_kill:
            return
        injector = injection.get()
        if injector is None:
            return
        event = injector.fire("server.kill", key=spec.request_id)
        if event is None:
            return
        self.journal.append("fault_injected", site=event.site,
                            kind=event.kind, key=event.key,
                            ordinal=event.ordinal)
        self.journal.close()
        os.kill(os.getpid(), signal.SIGKILL)

    # -- read-side ------------------------------------------------------
    def lookup(self, request_id: str) -> Tuple[int, Dict[str, Any]]:
        with self._lock:
            entry = self._settled.get(request_id)
            inflight = request_id in self._inflight_ids
        if entry is not None:
            body = dict(entry["body"])
            body["resumed"] = True
            return (entry["status"], body)
        if inflight:
            return (202, {"status": "pending", "request_id": request_id})
        return (404, _error_body(request_id, "NotFound",
                                 f"no settled request {request_id!r}",
                                 retryable=False))

    def status(self) -> Dict[str, Any]:
        return {
            "run_id": self.journal.run_id,
            "uptime": round(time.time() - self.started_at, 3),
            "admission": self.admission.snapshot(),
            "requests": {
                "executed": self.requests_executed,
                "resumed": self.requests_resumed,
                "settled": len(self._settled),
                "reattached": getattr(self, "requests_reattached", 0),
                "pending_at_crash": getattr(
                    self, "requests_pending_at_crash", 0),
            },
            "breaker": {
                "open": dict(self.breaker.open_workloads),
                "skipped": self.breaker.skipped,
                "probes": self.breaker.probes,
            },
        }

    def metrics_text(self) -> str:
        from ..obs.exposition import render_prom
        registry = obs.get_registry()
        snapshot = self.admission.snapshot()
        registry.gauge("serve.in_flight").set(float(snapshot["in_flight"]))
        registry.gauge("serve.draining").set(
            1.0 if snapshot["draining"] else 0.0)
        for tenant, count in snapshot["by_tenant"].items():
            registry.gauge("serve.tenant_in_flight",
                           tenant=tenant).set(float(count))
        return render_prom(registry.snapshot())

    # -- drain ----------------------------------------------------------
    def start_drain(self) -> None:
        self.admission.start_draining()
        self._count("serve.drain_started")

    def finish_drain(self) -> None:
        """Journal the interruption once every in-flight request settled."""
        self.journal.append("run_interrupted",
                            completed=self.requests_executed, remaining=0)
        self.journal.close()

    def shutdown(self, exit_code: int = 0) -> None:
        if not self.journal.closed:
            self.journal.finish(exit_code)

    @staticmethod
    def _count(name: str, **labels) -> None:
        obs.get_registry().counter(name, **labels).inc()


def _error_body(request_id: str, error_type: str, message: str,
                retryable: bool) -> Dict[str, Any]:
    return {"status": "error", "request_id": request_id,
            "error": {"type": error_type, "message": message,
                      "retryable": retryable}}


def _parse_deadline(raw: str) -> int:
    try:
        value = int(raw.strip())
    except ValueError:
        raise ConfigError(
            f"X-Deadline-Ms must be an integer, got {raw!r}") from None
    if value <= 0:
        raise ConfigError(f"X-Deadline-Ms must be positive, got {value}")
    return value


# ----------------------------------------------------------------------
# The asyncio HTTP front end
# ----------------------------------------------------------------------
_MAX_BODY = 4 * 1024 * 1024
_MAX_HEADER = 64 * 1024


class ReproServer:
    """Minimal HTTP/1.1 front end over one :class:`ServerCore`."""

    def __init__(self, core: ServerCore):
        self.core = core
        self._queue: "queue.Queue" = queue.Queue()
        self._executor = threading.Thread(
            target=self._executor_loop, name="serve-executor", daemon=True)
        self._server: Optional[asyncio.base_events.Server] = None
        self._drain_event: Optional[asyncio.Event] = None
        self.port: Optional[int] = None
        self.exit_code = 0

    # -- executor thread -----------------------------------------------
    def _executor_loop(self) -> None:
        while True:
            work = self._queue.get()
            if work is None:
                return
            try:
                status, body = self.core.execute(work)
            except BaseException as exc:   # never kill the loop silently
                status, body = 500, _error_body(
                    work.spec.request_id, type(exc).__name__, str(exc),
                    retryable=False)
            work.settle(status, body)

    # -- request handling ----------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            status, payload, content_type = await self._route(
                method, path, headers, body)
            await self._respond(writer, status, payload, content_type)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader):
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > _MAX_HEADER:
            return None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _version = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _route(self, method: str, path: str,
                     headers: Dict[str, str], body: bytes):
        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok"}, "application/json"
        if method == "GET" and path == "/readyz":
            if self.core.admission.draining:
                return 503, {"status": "draining"}, "application/json"
            return 200, {"status": "ready"}, "application/json"
        if method == "GET" and path == "/metrics":
            return 200, self.core.metrics_text(), "text/plain"
        if method == "GET" and path == "/v1/status":
            return 200, self.core.status(), "application/json"
        if method == "GET" and path.startswith("/v1/requests/"):
            request_id = path[len("/v1/requests/"):]
            status, payload = self.core.lookup(request_id)
            return status, payload, "application/json"
        if method == "POST" and path == "/v1/requests":
            return await self._submit(headers, body)
        return 404, _error_body("", "NotFound",
                                f"no route {method} {path}",
                                retryable=False), "application/json"

    async def _submit(self, headers: Dict[str, str], body: bytes):
        outcome = self.core.admit(body, headers.get("x-deadline-ms"))
        if outcome[0] == "reply":
            _tag, status, payload = outcome
            return status, payload, "application/json"
        work = outcome[1]
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()

        def settle(status: int, payload: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(
                lambda: future.done() or future.set_result(
                    (status, payload)))

        work.settle = settle
        self._queue.put(work)
        status, payload = await future
        return status, payload, "application/json"

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload, content_type: str) -> None:
        if isinstance(payload, (dict, list)):
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
        else:
            data = str(payload).encode("utf-8")
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 409: "Conflict",
                  429: "Too Many Requests", 500: "Internal Server Error",
                  503: "Service Unavailable",
                  504: "Gateway Timeout"}.get(status, "Status")
        headers = [f"HTTP/1.1 {status} {reason}",
                   f"Content-Type: {content_type}",
                   f"Content-Length: {len(data)}",
                   "Connection: close"]
        if isinstance(payload, dict) and "retry_after" in payload:
            headers.append(f"Retry-After: {payload['retry_after']:g}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1"))
        writer.write(data)
        await writer.drain()

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        self._drain_event = asyncio.Event()
        self._executor.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.core.config.host,
            port=self.core.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError,
                                     ValueError):
                loop.add_signal_handler(signum, self.request_drain)

    def request_drain(self) -> None:
        """SIGTERM path: stop admitting, let in-flight work finish."""
        self.core.start_drain()
        self.exit_code = DRAIN_EXIT_CODE
        if self._drain_event is not None:
            self._drain_event.set()

    async def serve_until_drained(self) -> int:
        assert self._drain_event is not None
        await self._drain_event.wait()
        # keep the listener up while in-flight work settles so late
        # clients get a *typed* 503 Draining (and pending lookups still
        # answer) instead of a connection refusal; admission already
        # refuses everything new
        while self.core.admission.in_flight > 0 or not self._queue.empty():
            await asyncio.sleep(0.02)
        self._server.close()
        await self._server.wait_closed()
        self._queue.put(None)
        self._executor.join(timeout=10)
        self.core.finish_drain()
        return self.exit_code

    async def run(self, announce=print) -> int:
        await self.start()
        announce(f"repro-serve ready host={self.core.config.host} "
                 f"port={self.port} run={self.core.journal.run_id}",
                 flush=True)
        return await self.serve_until_drained()


def run_server(config: ServeConfig) -> int:
    """Blocking entry point used by ``repro serve``."""
    core = ServerCore(config)
    server = ReproServer(core)
    try:
        return asyncio.run(server.run())
    finally:
        if not core.journal.closed:
            core.journal.close()
