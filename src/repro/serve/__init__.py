"""repro.serve — the crash-consistent multi-tenant service layer.

Lifts the CLI's experiment surface onto the wire: a typed
:class:`~repro.serve.spec.RequestSpec` travels from client to daemon,
through admission control (bounded queue, per-tenant quotas, circuit
breakers), into the engine, and back out as a journaled, byte-stable
payload that survives ``kill -9``.

Modules:

* :mod:`~repro.serve.spec` — request specifications and executors
* :mod:`~repro.serve.admission` — typed backpressure
* :mod:`~repro.serve.server` — the asyncio daemon + synchronous core
* :mod:`~repro.serve.client` — stdlib HTTP client with typed retries
* :mod:`~repro.serve.harness` — the differential chaos harness
"""

from .admission import (
    AdmissionController,
    AdmissionRejected,
    BreakerOpen,
    DeadlineExceeded,
    Draining,
    QueueFull,
    QuotaExceeded,
)
from .spec import RequestSpec, execute_spec, result_digest

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "BreakerOpen",
    "DeadlineExceeded",
    "Draining",
    "QueueFull",
    "QuotaExceeded",
    "RequestSpec",
    "execute_spec",
    "result_digest",
]
