"""A small typed client for the ``repro serve`` daemon.

Stdlib-only (:mod:`http.client`), one connection per call — the server
speaks ``Connection: close`` — with an explicit retry helper that obeys
the server's typed backpressure: 429/503 responses carry a
``retryable`` flag and an optional ``Retry-After`` hint, connection
errors mean the daemon is restarting (the crash-consistency case), and
everything else is final.

The distinction the differential harness cares about is typed vs
silent: :class:`ServeUnavailable` (couldn't reach or was shed) and a
final error body are both *typed* outcomes; only a lost request with no
outcome at all counts as silence.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError
from .spec import RequestSpec

DEFAULT_TIMEOUT = 60.0


class ServeUnavailable(ReproError):
    """The daemon could not be reached (down, restarting, or refusing)."""


class ServeResponse:
    """One HTTP exchange, decoded."""

    def __init__(self, status: int, body: Dict[str, Any],
                 retry_after: Optional[float] = None):
        self.status = status
        self.body = body
        self.retry_after = retry_after

    @property
    def ok(self) -> bool:
        return self.status == 200 and self.body.get("status") == "ok"

    @property
    def retryable(self) -> bool:
        error = self.body.get("error") or {}
        return bool(error.get("retryable"))

    @property
    def error_type(self) -> str:
        return str((self.body.get("error") or {}).get("type", ""))

    def __repr__(self) -> str:
        return f"<ServeResponse {self.status} {self.body.get('status')}>"


class ServeClient:
    """Typed request/response API over the serve wire protocol."""

    def __init__(self, host: str, port: int,
                 timeout: float = DEFAULT_TIMEOUT):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- raw exchanges --------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None
                 ) -> ServeResponse:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body,
                               headers=headers or {})
            raw = connection.getresponse()
            data = raw.read()
            retry_after = raw.getheader("Retry-After")
            status = raw.status
        except (OSError, http.client.HTTPException) as exc:
            raise ServeUnavailable(
                f"{method} {path} on {self.host}:{self.port} failed: "
                f"{exc}") from exc
        finally:
            connection.close()
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except ValueError:
            decoded = {"raw": data.decode("utf-8", "replace")}
        return ServeResponse(
            status, decoded if isinstance(decoded, dict)
            else {"value": decoded},
            retry_after=float(retry_after) if retry_after else None)

    # -- typed API ------------------------------------------------------
    def submit(self, spec: RequestSpec,
               deadline_ms: Optional[int] = None) -> ServeResponse:
        headers = {"Content-Type": "application/json"}
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = str(deadline_ms)
        return self._request(
            "POST", "/v1/requests",
            body=json.dumps(spec.to_dict(), sort_keys=True).encode(),
            headers=headers)

    def lookup(self, request_id: str) -> ServeResponse:
        return self._request("GET", f"/v1/requests/{request_id}")

    def status(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/status").body

    def metrics(self) -> str:
        return self._request("GET", "/metrics").body.get("raw", "")

    def healthy(self) -> bool:
        try:
            return self._request("GET", "/healthz").status == 200
        except ServeUnavailable:
            return False

    def ready(self) -> bool:
        try:
            return self._request("GET", "/readyz").status == 200
        except ServeUnavailable:
            return False

    # -- retry policy ---------------------------------------------------
    def submit_with_retries(self, spec: RequestSpec,
                            retries: int = 8,
                            backoff: float = 0.1,
                            deadline_ms: Optional[int] = None
                            ) -> Tuple[Optional[ServeResponse], int]:
        """Submit, honoring typed backpressure; returns (response, tries).

        Retries on :class:`ServeUnavailable` (daemon down or
        restarting) and on responses whose error is marked retryable,
        sleeping ``Retry-After`` when the server hints one.  Returns
        ``(None, tries)`` only when every attempt was shed — a typed,
        *counted* failure, never a silent one.
        """
        last: Optional[ServeResponse] = None
        for attempt in range(retries + 1):
            try:
                response = self.submit(spec, deadline_ms=deadline_ms)
            except ServeUnavailable:
                response = None
            if response is not None:
                if response.ok or not (response.retryable
                                       or response.status in (429, 503)):
                    return response, attempt + 1
                last = response
            if attempt < retries:
                hint = (last.retry_after
                        if last is not None and last.retry_after
                        else None)
                time.sleep(min(hint or backoff * (2 ** attempt), 2.0))
        return last, retries + 1

    def wait_ready(self, timeout: float = 30.0,
                   interval: float = 0.05) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.ready():
                return True
            time.sleep(interval)
        return False
