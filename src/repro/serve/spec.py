"""Typed request specifications: experiment definitions off the argv.

The enabling refactor behind ``repro serve``: a :class:`RequestSpec` is
one unit of work — compile, migrate, experiment, verify, transpile,
chaos — expressed as plain data instead of a parsed command line.  CLI
subcommands build the same spec the server deserializes off the wire,
and both dispatch through :func:`execute_spec` onto the existing
:class:`~repro.runtime.engine.ExperimentEngine`, so a request served
over HTTP is byte-for-byte the work the CLI would have done.

Every executor returns *plain data* (dicts/lists/strings/numbers only,
normalized through a canonical JSON round-trip), which gives the serve
layer two properties for free:

* responses are journalable — a completed request's payload persists in
  the run's artifact store and is served identically after a ``kill -9``
  and restart (``recomputed=0``);
* responses are diffable — :func:`result_digest` is a stable digest the
  differential chaos harness compares against an in-process recompute
  to prove zero silent divergence.

Only deterministic work should cross the wire for differential checks:
the measured-performance figures (fig9–fig14) execute fine but time
real work, so their payloads are not byte-stable across hosts.
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import ConfigError
from ..runtime.cache import digest

#: bump when the wire layout of a spec changes incompatibly
SPEC_SCHEMA = 1

#: request kinds the executor knows how to run
SPEC_KINDS = ("compile", "migrate", "experiment", "verify", "transpile",
              "chaos", "sleep")

DEFAULT_TENANT = "default"

#: tenant names become cache-root path components, so they are
#: restricted to one safe filename-ish token
_TENANT_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9_.:-]{0,128}$")

#: artifact kind for serve-layer result digests
_RESULT_DIGEST_KIND = "serve-result"


@dataclass(frozen=True)
class RequestSpec:
    """One experiment definition, decoupled from CLI argv.

    ``params`` must be plain JSON data; validation happens eagerly so a
    malformed spec fails typed (:class:`~repro.errors.ConfigError`) at
    the admission boundary, never deep inside an executor.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    tenant: str = DEFAULT_TENANT
    request_id: str = ""
    #: whole-request deadline budget in milliseconds (None = no deadline)
    deadline_ms: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in SPEC_KINDS:
            raise ConfigError(
                f"unknown request kind {self.kind!r}; known: "
                f"{', '.join(SPEC_KINDS)}")
        if not isinstance(self.params, dict):
            raise ConfigError(
                f"params must be an object, got {type(self.params).__name__}")
        try:
            json.dumps(self.params, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"params must be plain JSON data: {exc}") \
                from None
        if not _TENANT_RE.match(self.tenant):
            raise ConfigError(
                f"invalid tenant {self.tenant!r} (want 1-64 chars of "
                f"[A-Za-z0-9_.-])")
        if not _REQUEST_ID_RE.match(self.request_id):
            raise ConfigError(
                f"invalid request_id {self.request_id!r} (want <=128 "
                f"chars of [A-Za-z0-9_.:-])")
        if self.deadline_ms is not None:
            if not isinstance(self.deadline_ms, int) \
                    or isinstance(self.deadline_ms, bool) \
                    or self.deadline_ms <= 0:
                raise ConfigError(
                    f"deadline_ms must be a positive integer, got "
                    f"{self.deadline_ms!r}")
        _validate_params(self.kind, self.params)

    # ------------------------------------------------------------------
    @property
    def workload(self) -> str:
        """Circuit-breaker grouping: the named workload, else the kind."""
        for key in ("workload", "name"):
            value = self.params.get(key)
            if isinstance(value, str) and value:
                return value
        return self.kind

    def spec_digest(self) -> str:
        """Content address of the work itself (tenant/id excluded, so
        identical work from different tenants dedups in their caches)."""
        return digest("request-spec", SPEC_SCHEMA, self.kind,
                      json.dumps(self.params, sort_keys=True))

    # -- wire round-trip ------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": SPEC_SCHEMA,
            "kind": self.kind,
            "params": self.params,
            "tenant": self.tenant,
        }
        if self.request_id:
            payload["request_id"] = self.request_id
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> "RequestSpec":
        if not isinstance(payload, dict):
            raise ConfigError(
                f"request body must be an object, got "
                f"{type(payload).__name__}")
        schema = payload.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ConfigError(
                f"unsupported spec schema {schema!r} "
                f"(expected {SPEC_SCHEMA})")
        unknown = set(payload) - {"schema", "kind", "params", "tenant",
                                  "request_id", "deadline_ms"}
        if unknown:
            raise ConfigError(
                f"unknown spec field(s): {', '.join(sorted(unknown))}")
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise ConfigError("spec is missing its 'kind'")
        return cls(kind=kind,
                   params=payload.get("params") or {},
                   tenant=payload.get("tenant") or DEFAULT_TENANT,
                   request_id=str(payload.get("request_id") or ""),
                   deadline_ms=payload.get("deadline_ms"))


# ----------------------------------------------------------------------
# Parameter validation (admission-time, executor-free)
# ----------------------------------------------------------------------
def _require_workload(name: Any) -> str:
    from ..workloads import WORKLOADS
    if not isinstance(name, str) or name not in WORKLOADS:
        raise ConfigError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(sorted(WORKLOADS))}")
    return name


def _check_unknown(kind: str, params: Dict[str, Any],
                   allowed: tuple) -> None:
    unknown = set(params) - set(allowed)
    if unknown:
        raise ConfigError(
            f"unknown {kind} param(s): {', '.join(sorted(unknown))}")


def _validate_params(kind: str, params: Dict[str, Any]) -> None:
    if kind == "compile":
        _check_unknown(kind, params, ("workload",))
        _require_workload(params.get("workload"))
    elif kind == "migrate":
        _check_unknown(kind, params, (
            "workload", "source", "seed", "migration_probability",
            "opt_level", "max_instructions"))
        if ("workload" in params) == ("source" in params):
            raise ConfigError(
                "migrate needs exactly one of 'workload' or 'source'")
        if "workload" in params:
            _require_workload(params["workload"])
        elif not isinstance(params["source"], str) or not params["source"]:
            raise ConfigError("migrate 'source' must be mini-C text")
        probability = params.get("migration_probability", 1.0)
        if not isinstance(probability, (int, float)) \
                or not 0.0 <= probability <= 1.0:
            raise ConfigError(
                f"migration_probability must be in [0, 1], "
                f"got {probability!r}")
        if params.get("opt_level", 3) not in (0, 1, 2, 3):
            raise ConfigError(
                f"opt_level must be 0..3, got {params.get('opt_level')!r}")
    elif kind == "experiment":
        _check_unknown(kind, params, ("name", "benchmarks", "seed"))
        name = params.get("name")
        if name not in EXPERIMENT_RUNNERS:
            raise ConfigError(
                f"unknown experiment {name!r}; available: "
                f"{', '.join(sorted(EXPERIMENT_RUNNERS))}")
        benchmarks = params.get("benchmarks")
        if benchmarks is not None:
            if not isinstance(benchmarks, list) or not benchmarks:
                raise ConfigError(
                    "experiment 'benchmarks' must be a non-empty list")
            for bench in benchmarks:
                _require_workload(bench)
    elif kind == "verify":
        _check_unknown(kind, params, ("workload", "workloads", "all",
                                      "rules", "passes"))
        _validate_targets(kind, params)
    elif kind == "transpile":
        _check_unknown(kind, params, ("workload", "workloads", "all",
                                      "tiers", "surface", "fault_seed",
                                      "fuzz"))
        _validate_targets(kind, params)
        tiers = params.get("tiers", ["static", "fuzz"])
        if not isinstance(tiers, list) \
                or not set(tiers) <= {"static", "fuzz"}:
            raise ConfigError(
                f"transpile tiers must be a subset of "
                f"['static', 'fuzz'], got {tiers!r}")
    elif kind == "chaos":
        _check_unknown(kind, params, ("fault_seed", "iterations",
                                      "rate_scale", "workloads"))
        iterations = params.get("iterations", 5)
        if not isinstance(iterations, int) or not 1 <= iterations <= 500:
            raise ConfigError(
                f"chaos iterations must be 1..500, got {iterations!r}")
        rate_scale = params.get("rate_scale", 1.0)
        if not isinstance(rate_scale, (int, float)) or rate_scale < 0:
            raise ConfigError(
                f"chaos rate_scale must be >= 0, got {rate_scale!r}")
    elif kind == "sleep":
        _check_unknown(kind, params, ("seconds",))
        seconds = params.get("seconds", 0.0)
        if not isinstance(seconds, (int, float)) \
                or not 0.0 <= seconds <= 30.0:
            raise ConfigError(
                f"sleep seconds must be in [0, 30], got {seconds!r}")


def _validate_targets(kind: str, params: Dict[str, Any]) -> None:
    given = [key for key in ("workload", "workloads", "all")
             if params.get(key)]
    if len(given) != 1:
        raise ConfigError(
            f"{kind} needs exactly one of 'workload', 'workloads', "
            f"or 'all'")
    if "workload" in given:
        _require_workload(params["workload"])
    elif "workloads" in given:
        if not isinstance(params["workloads"], list):
            raise ConfigError(f"{kind} 'workloads' must be a list")
        for name in params["workloads"]:
            _require_workload(name)


def _targets_of(params: Dict[str, Any]) -> List[str]:
    if params.get("all"):
        from ..workloads import WORKLOADS
        return sorted(WORKLOADS)
    if params.get("workloads"):
        return list(params["workloads"])
    return [params["workload"]]


# ----------------------------------------------------------------------
# Executors: spec -> plain-data payload
# ----------------------------------------------------------------------
def _plain(value: Any) -> Any:
    """Dataclass rows (and nests) down to JSON-plain data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    return value


def normalize(payload: Any) -> Any:
    """Canonical JSON round-trip: str keys, plain containers only.

    This is what makes a payload identical whether it was just computed
    or deserialized from the journal's artifact store — int dict keys
    become strings *before* anyone digests or renders it.  Insertion
    order is deliberately preserved (series column order is meaningful
    to renderers); :func:`result_digest` canonicalizes key order itself.
    """
    return json.loads(json.dumps(payload))


def result_digest(payload: Any) -> str:
    """Stable content digest of one normalized response payload."""
    return digest(_RESULT_DIGEST_KIND,
                  json.dumps(payload, sort_keys=True))


def execute_spec(spec: RequestSpec, engine=None) -> Dict[str, Any]:
    """Run one spec and return its normalized plain-data payload.

    ``engine`` is the fan-out engine for the kinds that decompose into
    jobs (experiment sweeps, multi-workload verify/transpile); the
    serve layer passes a per-request engine whose job timeout carries
    the request's remaining deadline budget.
    """
    runner = _KIND_RUNNERS[spec.kind]
    return normalize(runner(spec.params, engine))


def _run_compile(params: Dict[str, Any], engine) -> Dict[str, Any]:
    from ..workloads import compile_workload
    name = params["workload"]
    binary = compile_workload(name)
    sections = {}
    for isa_name in binary.isa_names:
        section = binary.sections[isa_name]
        sections[isa_name] = {
            "bytes": len(section.data),
            "symbols": len(section.symbols),
            "digest": digest("section", isa_name, bytes(section.data)),
        }
    return {"workload": name, "sections": sections}


def _run_migrate(params: Dict[str, Any], engine) -> Dict[str, Any]:
    from ..core import PSRConfig
    from ..core.hipstr import run_under_hipstr
    from ..workloads import WORKLOADS, compile_workload
    if "workload" in params:
        binary = compile_workload(params["workload"])
        stdin = WORKLOADS[params["workload"]].stdin
    else:
        from ..compiler import compile_minic
        binary = compile_minic(params["source"])
        stdin = b""
    kwargs: Dict[str, Any] = {}
    if params.get("max_instructions"):
        kwargs["max_instructions"] = int(params["max_instructions"])
    _system, result = run_under_hipstr(
        binary, seed=int(params.get("seed", 0)), stdin=stdin,
        migration_probability=float(
            params.get("migration_probability", 1.0)),
        config=PSRConfig(opt_level=int(params.get("opt_level", 3))),
        **kwargs)
    return {
        "exit_code": result.exit_code,
        "migrations": result.migration_count,
        "steps_by_isa": dict(result.steps_by_isa),
    }


def _run_experiment(params: Dict[str, Any], engine) -> Dict[str, Any]:
    runner = EXPERIMENT_RUNNERS[params["name"]]
    return runner(params, engine)


def _run_verify(params: Dict[str, Any], engine) -> Dict[str, Any]:
    from ..runtime.engine import Job, collect, get_default_engine
    targets = _targets_of(params)
    rules = params.get("rules") or None
    passes = params.get("passes") or None
    engine = engine or get_default_engine()
    jobs = [Job(key=f"verify:{name}", fn=_verify_job,
                args=(name, rules, passes), workload=name)
            for name in targets]
    reports = dict(zip(targets, collect(engine.run(jobs))))
    return {"ok": all(report["ok"] for report in reports.values()),
            "targets": reports}


def _verify_job(name: str, rules, passes) -> Dict[str, Any]:
    """Module-level so verify specs fan out across worker processes."""
    from ..staticcheck import run_verifier
    from ..workloads import compile_workload
    report = run_verifier(compile_workload(name), rules=rules,
                          passes=passes)
    payload = report.as_dict()
    payload["ok"] = report.ok
    return payload


def _run_transpile(params: Dict[str, Any], engine) -> Dict[str, Any]:
    from ..runtime.engine import Job, collect, get_default_engine
    targets = _targets_of(params)
    tiers = tuple(params.get("tiers", ["static", "fuzz"]))
    surface = bool(params.get("surface", False))
    fault_seed = int(params.get("fault_seed", 0))
    engine = engine or get_default_engine()
    jobs = [Job(key=f"transpile:{name}", fn=transpile_workload_job,
                args=(name, tiers, surface, fault_seed), workload=name)
            for name in targets]
    results = dict(zip(targets, collect(engine.run(jobs))))
    payload: Dict[str, Any] = {
        "ok": all(result["ok"] for result in results.values()),
        "targets": results,
    }
    fuzz = params.get("fuzz")
    if fuzz:
        from ..transpile import fuzz_run
        report = fuzz_run(fault_seed, int(fuzz), engine=engine)
        payload["fuzz"] = {
            "ok": report.ok,
            "fault_seed": report.fault_seed,
            "statuses": report.status_counts(),
            "digest": report.digest(),
            "failures": [o.to_dict() for o in report.failures],
        }
        payload["ok"] = payload["ok"] and report.ok
    return payload


def transpile_workload_job(name: str, tiers, surface: bool, seed: int):
    """Lift one workload and verify it; shared by CLI and serve paths."""
    from ..core import run_native
    from ..staticcheck import run_verifier
    from ..transpile import gadget_surface_row, transpile_binary
    from ..workloads import WORKLOADS, compile_workload

    binary = compile_workload(name)
    transpiled = transpile_binary(binary)
    result = {"workload": name, "lift_stats": dict(transpiled.lift_stats)}
    ok = True
    if "static" in tiers:
        report = run_verifier(transpiled)
        stats = report.facts.get("transpile", {})
        static_ok = report.ok and stats.get("unsupported", 0) == 0
        result["static"] = {
            "ok": static_ok,
            "stats": stats,
            "findings": [f.as_dict() for f in report.findings],
        }
        ok = ok and static_ok
    if "fuzz" in tiers:
        # the per-workload leg of the differential tier: the lifted
        # section must reproduce the native exit code on real inputs
        stdin = WORKLOADS[name].stdin
        native = run_native(binary, "x86like", stdin=stdin,
                            max_instructions=20_000_000).os.exit_code
        lifted = run_native(transpiled, "armlike", stdin=stdin,
                            max_instructions=20_000_000).os.exit_code
        exec_ok = native is not None and native == lifted
        result["exec"] = {"ok": exec_ok, "native_exit": native,
                          "lifted_exit": lifted}
        ok = ok and exec_ok
    if surface:
        result["surface"] = gadget_surface_row(
            name, binary, transpiled, seed=seed).to_dict()
    result["ok"] = ok
    return result


def _run_chaos(params: Dict[str, Any], engine) -> Dict[str, Any]:
    from ..faults.fuzz import ChaosReport, chaos_run, chaos_workloads
    from ..faults.plan import default_plan
    fault_seed = int(params.get("fault_seed", 0))
    rate_scale = float(params.get("rate_scale", 1.0))
    if params.get("workloads"):
        outcomes = chaos_workloads(fault_seed, rate_scale=rate_scale)
        report = ChaosReport(fault_seed, len(outcomes), outcomes)
    else:
        plan = default_plan(fault_seed, rate_scale=rate_scale)
        report = chaos_run(fault_seed, int(params.get("iterations", 5)),
                           plan=plan, engine=engine)
    return {
        "ok": not report.failures,
        "fault_seed": fault_seed,
        "cases": len(report.outcomes),
        "statuses": report.status_counts(),
        "fault_counts": report.fault_counts(),
        "digest": report.digest(),
        "failures": [o.to_dict() for o in report.failures],
    }


def _run_sleep(params: Dict[str, Any], engine) -> Dict[str, Any]:
    """Diagnostic kind: deterministic payload, controllable latency.

    Exists so deadline/drain behavior is testable end to end without
    depending on how long a real workload happens to take.
    """
    import time
    seconds = float(params.get("seconds", 0.0))
    time.sleep(seconds)
    return {"slept": seconds}


_KIND_RUNNERS: Dict[str, Callable[[Dict[str, Any], Any], Dict[str, Any]]] = {
    "compile": _run_compile,
    "migrate": _run_migrate,
    "experiment": _run_experiment,
    "verify": _run_verify,
    "transpile": _run_transpile,
    "chaos": _run_chaos,
    "sleep": _run_sleep,
}


# ----------------------------------------------------------------------
# Experiment payloads (plain-data mirrors of the analysis drivers)
# ----------------------------------------------------------------------
def _benchmarks_of(params: Dict[str, Any]) -> Optional[tuple]:
    benchmarks = params.get("benchmarks")
    return tuple(benchmarks) if benchmarks else None


def _rows_payload(rows, extra_of=None) -> Dict[str, Any]:
    payload_rows = []
    for row in rows:
        item = _plain(row)
        if extra_of is not None:
            item.update(extra_of(row))
        payload_rows.append(item)
    return {"rows": payload_rows}


def _exp_fig3(params, engine):
    from ..analysis import experiments
    kwargs = {"engine": engine}
    benchmarks = _benchmarks_of(params)
    if benchmarks:
        kwargs["benchmarks"] = benchmarks
    return _rows_payload(
        experiments.fig3_classic_rop(**kwargs),
        lambda r: {"obfuscated_fraction": r.obfuscated_fraction})


def _exp_fig4(params, engine):
    from ..analysis import experiments
    kwargs = {"engine": engine}
    benchmarks = _benchmarks_of(params)
    if benchmarks:
        kwargs["benchmarks"] = benchmarks
    return _rows_payload(experiments.fig4_bruteforce_surface(**kwargs))


def _exp_fig5(params, engine):
    from ..analysis import experiments
    kwargs = {"engine": engine}
    benchmarks = _benchmarks_of(params)
    if benchmarks:
        kwargs["benchmarks"] = benchmarks
    return _rows_payload(experiments.fig5_jitrop(**kwargs))


def _exp_fig6(params, engine):
    from ..analysis import experiments
    kwargs = {"engine": engine}
    benchmarks = _benchmarks_of(params)
    if benchmarks:
        kwargs["benchmarks"] = benchmarks
    return _rows_payload(experiments.fig6_migration_safety(**kwargs))


def _exp_fig7(params, engine):
    from ..analysis import experiments
    lengths = list(experiments.CHAIN_LENGTHS)
    return {"lengths": lengths,
            "series": experiments.fig7_entropy(tuple(lengths))}


def _exp_fig8(params, engine):
    from ..analysis import experiments
    probabilities = list(experiments.PROBABILITY_STEPS)
    kwargs = {"engine": engine, "probabilities": tuple(probabilities)}
    benchmarks = _benchmarks_of(params)
    if benchmarks:
        kwargs["benchmarks"] = benchmarks
    return {"probabilities": probabilities,
            "series": experiments.fig8_diversification(**kwargs)}


def _exp_rows(driver_name):
    def run(params, engine):
        from ..analysis import experiments
        kwargs = {"engine": engine}
        benchmarks = _benchmarks_of(params)
        if benchmarks:
            kwargs["benchmarks"] = benchmarks
        return _rows_payload(getattr(experiments, driver_name)(**kwargs))
    return run


def _exp_httpd(params, engine):
    from ..analysis import experiments
    return {"study": _plain(experiments.httpd_case_study())}


EXPERIMENT_RUNNERS: Dict[str, Callable[[Dict[str, Any], Any],
                                       Dict[str, Any]]] = {
    "fig3": _exp_fig3,
    "fig4": _exp_fig4,
    "fig5": _exp_fig5,
    "fig6": _exp_fig6,
    "fig7": _exp_fig7,
    "fig8": _exp_fig8,
    "fig9": _exp_rows("fig9_opt_levels"),
    "fig10": _exp_rows("fig10_stack_sizes"),
    "fig11": _exp_rows("fig11_rat_sizes"),
    "fig12": _exp_rows("fig12_migration_overhead"),
    "fig13": _exp_rows("fig13_code_cache"),
    "fig14": _exp_rows("fig14_isomeron_comparison"),
    "table2": _exp_rows("table2_bruteforce"),
    "httpd": _exp_httpd,
}
