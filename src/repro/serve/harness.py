"""Differential chaos harness for the service layer.

The claim under test: with ``request.drop`` / ``server.kill`` /
``tenant.flood`` faults active, N concurrent mixed-tenant clients
against one ``repro serve`` daemon observe **zero silent loss** — every
submitted request either

* completes with a payload byte-identical to an in-process recompute of
  the same :class:`~repro.serve.spec.RequestSpec` (``ok``),
* fails *typed* after the client's bounded retry budget (``shed``), or
* is answered identically by the restarted daemon after a mid-run
  ``kill -9`` (still ``ok``, served from the journal store).

Anything else — a missing outcome, a divergent payload — is a harness
failure.  The request corpus is deterministic in the case seed
(``random.Random(f"serve-case:{seed}:{index}")``) and uses only
byte-reproducible spec kinds, so the expected payload for every request
can be precomputed before the daemon ever starts.

``server.kill`` SIGKILLs the daemon from the inside; the harness's
monitor restarts it with the same journal directory, which is how the
re-attach path (``recomputed=0`` for settled requests) gets exercised
under load rather than in a bespoke unit test.  ``tenant.flood`` is a
*client-side* fault: one tenant bursts far past its quota and the run
asserts the overflow was shed with typed 429s while other tenants'
requests all completed.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..faults.plan import FaultPlan
from ..runtime.cache import digest
from .client import ServeClient, ServeUnavailable
from .spec import RequestSpec, execute_spec, result_digest

#: spec kinds safe for differential comparison: payloads must be a pure
#: function of the spec (the timing figures fig9–fig14 are not)
DETERMINISTIC_KINDS = ("compile", "migrate", "fig3", "fig7")

DEFAULT_TENANTS = ("acme", "umbrella", "initech")

#: client retry budget; generous because ``server.kill`` restarts take
#: a daemon cold-start, not just a backoff tick
CLIENT_RETRIES = 10


@dataclass
class RequestOutcome:
    """Classification of one request after the run settles."""

    request_id: str
    tenant: str
    kind: str
    #: ok | shed:<Type> | failed:<Type> | divergence | lost
    status: str
    tries: int = 1
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def silent(self) -> bool:
        """The outcomes the whole layer exists to rule out."""
        return self.status in ("lost", "divergence") \
            or self.status.startswith("divergence")

    def to_dict(self) -> Dict[str, Any]:
        return {"request_id": self.request_id, "tenant": self.tenant,
                "kind": self.kind, "status": self.status,
                "tries": self.tries, "detail": self.detail}


@dataclass
class ServeChaosReport:
    """Aggregate of one service-layer differential run."""

    seed: int
    requests: int
    outcomes: List[RequestOutcome]
    restarts: int = 0
    flood_shed: int = 0
    flood_served: int = 0
    final_status: Dict[str, Any] = field(default_factory=dict)

    @property
    def silent_failures(self) -> List[RequestOutcome]:
        return [o for o in self.outcomes if o.silent]

    @property
    def ok(self) -> bool:
        return not self.silent_failures

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return dict(sorted(counts.items()))

    def digest(self) -> str:
        """Digest of the request corpus (not the outcomes: retry budgets
        make final statuses timing-dependent; the invariant is zero
        silence, checked structurally)."""
        return digest("serve-chaos", self.seed, self.requests,
                      ",".join(DETERMINISTIC_KINDS))


# ----------------------------------------------------------------------
# Deterministic request corpus
# ----------------------------------------------------------------------
def generate_requests(seed: int, count: int,
                      tenants=DEFAULT_TENANTS) -> List[RequestSpec]:
    """The mixed-tenant corpus: reproducible from (seed, count) alone."""
    specs: List[RequestSpec] = []
    for index in range(count):
        rng = random.Random(f"serve-case:{seed}:{index}")
        kind = rng.choice(DETERMINISTIC_KINDS)
        tenant = tenants[index % len(tenants)]
        request_id = f"case-{seed}-{index}"
        if kind == "compile":
            workload = rng.choice(("mcf", "libquantum", "lbm"))
            spec = RequestSpec(kind="compile",
                               params={"workload": workload},
                               tenant=tenant, request_id=request_id)
        elif kind == "migrate":
            workload = rng.choice(("mcf", "libquantum"))
            spec = RequestSpec(
                kind="migrate",
                params={"workload": workload,
                        "seed": rng.randrange(4),
                        "max_instructions": 2_000_000},
                tenant=tenant, request_id=request_id)
        elif kind == "fig3":
            spec = RequestSpec(
                kind="experiment",
                params={"name": "fig3",
                        "benchmarks": [rng.choice(("mcf", "lbm"))]},
                tenant=tenant, request_id=request_id)
        else:
            spec = RequestSpec(kind="experiment",
                               params={"name": "fig7"},
                               tenant=tenant, request_id=request_id)
        specs.append(spec)
    return specs


def expected_digests(specs: List[RequestSpec]) -> Dict[str, str]:
    """Precompute the ground truth in-process (no daemon, no faults).

    Identical specs share one recompute via the digest of the spec
    itself, so a 100-request corpus costs ~a dozen executions.
    """
    by_spec: Dict[str, str] = {}
    out: Dict[str, str] = {}
    for spec in specs:
        spec_key = spec.spec_digest()
        if spec_key not in by_spec:
            by_spec[spec_key] = result_digest(execute_spec(spec))
        out[spec.request_id] = by_spec[spec_key]
    return out


# ----------------------------------------------------------------------
# Daemon supervision
# ----------------------------------------------------------------------
class ServeDaemon:
    """A ``repro serve`` subprocess plus the monitor that restarts it.

    ``server.kill`` (and the harness's own deliberate ``kill -9``)
    leave the daemon dead with an unfinished journal; ``ensure_up``
    relaunches it against the *same* journal directory, which is the
    re-attach path under test.
    """

    def __init__(self, journal_dir: Path, cache_root: Path,
                 plan: Optional[FaultPlan] = None,
                 tenant_quota: int = 4, queue_limit: int = 64,
                 extra_args: Optional[List[str]] = None):
        self.journal_dir = Path(journal_dir)
        self.cache_root = Path(cache_root)
        self.plan = plan
        self.tenant_quota = tenant_quota
        self.queue_limit = queue_limit
        self.extra_args = list(extra_args or [])
        self.process: Optional[subprocess.Popen] = None
        self.host = "127.0.0.1"
        self.port: Optional[int] = None
        self.restarts = -1            # first launch is not a restart
        self._lock = threading.Lock()

    def _argv(self) -> List[str]:
        argv = [sys.executable, "-m", "repro", "serve",
                "--host", self.host, "--port", "0",
                "--journal", str(self.journal_dir),
                "--cache-dir", str(self.cache_root),
                "--tenant-quota", str(self.tenant_quota),
                "--queue-limit", str(self.queue_limit),
                "--allow-kill"]
        argv.extend(self.extra_args)
        return argv

    def _launch(self) -> None:
        env = dict(os.environ)
        env["PYTHONUNBUFFERED"] = "1"
        if self.plan is not None:
            env["REPRO_FAULTS"] = self.plan.to_spec()
        else:
            env.pop("REPRO_FAULTS", None)
        self.process = subprocess.Popen(
            self._argv(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, env=env, text=True)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                raise ServeUnavailable(
                    f"daemon exited during startup "
                    f"(rc={self.process.poll()})")
            if line.startswith("repro-serve ready"):
                fields = dict(part.split("=", 1)
                              for part in line.split() if "=" in part)
                self.port = int(fields["port"])
                self.restarts += 1
                return
        raise ServeUnavailable("daemon did not become ready in 60s")

    def ensure_up(self) -> ServeClient:
        with self._lock:
            if self.process is None or self.process.poll() is not None:
                self._launch()
            return ServeClient(self.host, self.port)

    def kill9(self) -> None:
        with self._lock:
            if self.process is not None \
                    and self.process.poll() is None:
                self.process.send_signal(signal.SIGKILL)
                self.process.wait(timeout=30)

    def sigterm(self) -> Optional[int]:
        with self._lock:
            if self.process is None:
                return None
            self.process.send_signal(signal.SIGTERM)
            return self.process.wait(timeout=60)

    def stop(self) -> None:
        with self._lock:
            if self.process is not None \
                    and self.process.poll() is None:
                self.process.kill()
                self.process.wait(timeout=30)


# ----------------------------------------------------------------------
# The differential run
# ----------------------------------------------------------------------
def _drive_one(daemon: ServeDaemon, spec: RequestSpec,
               expected: str) -> RequestOutcome:
    """Push one request to a settled classification, surviving restarts."""
    tries = 0
    last_detail = ""
    for round_ in range(CLIENT_RETRIES):
        try:
            client = daemon.ensure_up()
            response, attempts = client.submit_with_retries(
                spec, retries=2, backoff=0.1)
        except ServeUnavailable as exc:
            tries += 1
            last_detail = str(exc)
            time.sleep(0.2)
            continue
        tries += attempts
        if response is None:
            last_detail = "every attempt shed"
            continue
        if response.ok:
            got = response.body.get("digest", "")
            if got != expected:
                return RequestOutcome(
                    spec.request_id, spec.tenant, spec.kind,
                    f"divergence", tries,
                    detail=f"digest {got[:12]} != expected "
                           f"{expected[:12]}")
            return RequestOutcome(spec.request_id, spec.tenant,
                                  spec.kind, "ok", tries)
        if response.retryable or response.status in (429, 503):
            last_detail = response.error_type
            time.sleep(0.1)
            continue
        return RequestOutcome(
            spec.request_id, spec.tenant, spec.kind,
            f"failed:{response.error_type or response.status}", tries,
            detail=str(response.body.get("error", {}).get(
                "message", ""))[:160])
    return RequestOutcome(spec.request_id, spec.tenant, spec.kind,
                          f"shed:{last_detail or 'retries exhausted'}",
                          tries)


def _flood_tenant(daemon: ServeDaemon, seed: int, tenant: str,
                  burst: int) -> Dict[str, int]:
    """The ``tenant.flood`` fault: burst cheap requests past quota.

    Returns shed/served counts; the caller asserts at least one typed
    429 landed (the quota actually bit) and nothing was lost.
    """
    shed = 0
    served = 0
    lost = 0

    def one(index: int) -> None:
        nonlocal shed, served, lost
        spec = RequestSpec(kind="sleep", params={"seconds": 0.05},
                           tenant=tenant,
                           request_id=f"flood-{seed}-{index}")
        try:
            client = daemon.ensure_up()
            response = client.submit(spec)
        except ServeUnavailable:
            shed += 1
            return
        if response.ok:
            served += 1
        elif response.status in (429, 503):
            shed += 1
        else:
            lost += 1

    threads = [threading.Thread(target=one, args=(index,))
               for index in range(burst)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return {"shed": shed, "served": served, "lost": lost}


def serve_chaos_run(seed: int, requests: int = 100,
                    clients: int = 4,
                    journal_dir: Optional[Path] = None,
                    cache_root: Optional[Path] = None,
                    plan: Optional[FaultPlan] = None,
                    parallel: bool = True,
                    kill_at: Optional[int] = None,
                    flood: bool = True,
                    tenant_quota: int = 4) -> ServeChaosReport:
    """Run the full differential: corpus → daemon under faults → verify.

    ``kill_at`` injects the harness's own deliberate ``kill -9`` after
    that many settled requests (defaults to the midpoint), on top of
    whatever ``server.kill`` faults the plan fires.  ``parallel=False``
    drives the corpus serially with one client, the reference ordering.
    """
    import tempfile
    journal_dir = Path(journal_dir
                       or tempfile.mkdtemp(prefix="serve-journal-"))
    cache_root = Path(cache_root
                      or tempfile.mkdtemp(prefix="serve-cache-"))
    if kill_at is None:
        kill_at = requests // 2

    specs = generate_requests(seed, requests)
    expected = expected_digests(specs)

    daemon = ServeDaemon(journal_dir, cache_root, plan=plan,
                         tenant_quota=tenant_quota)
    outcomes: List[RequestOutcome] = [None] * len(specs)  # type: ignore
    settled = threading.Semaphore(0)
    killed_once = threading.Event()

    def worker(indices: List[int]) -> None:
        for index in indices:
            outcomes[index] = _drive_one(daemon, specs[index],
                                         expected[specs[index].request_id])
            settled.release()

    def killer() -> None:
        for _ in range(kill_at):
            settled.acquire()
        if not killed_once.is_set():
            killed_once.set()
            daemon.kill9()

    try:
        daemon.ensure_up()
        kill_thread = None
        if kill_at and kill_at < requests:
            kill_thread = threading.Thread(target=killer, daemon=True)
            kill_thread.start()
        if parallel:
            lanes: List[List[int]] = [[] for _ in range(clients)]
            for index in range(len(specs)):
                lanes[index % clients].append(index)
            threads = [threading.Thread(target=worker, args=(lane,))
                       for lane in lanes if lane]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            worker(list(range(len(specs))))
        if kill_thread is not None and kill_thread.is_alive():
            killed_once.set()          # not enough settlements to trigger

        flood_stats = {"shed": 0, "served": 0, "lost": 0}
        if flood:
            flood_stats = _flood_tenant(daemon, seed,
                                        DEFAULT_TENANTS[0],
                                        burst=tenant_quota * 3)
        client = daemon.ensure_up()
        final_status = client.status()
    finally:
        daemon.stop()

    report = ServeChaosReport(
        seed=seed, requests=requests,
        outcomes=[o for o in outcomes if o is not None],
        restarts=max(0, daemon.restarts),
        flood_shed=flood_stats["shed"],
        flood_served=flood_stats["served"],
        final_status=final_status)
    if flood_stats["lost"]:
        report.outcomes.append(RequestOutcome(
            "flood", DEFAULT_TENANTS[0], "sleep", "lost",
            detail=f"{flood_stats['lost']} flood request(s) with "
                   f"untyped outcomes"))
    missing = requests - len([o for o in outcomes if o is not None])
    if missing:
        report.outcomes.append(RequestOutcome(
            "corpus", "-", "-", "lost",
            detail=f"{missing} request(s) never classified"))
    return report


def render_report(report: ServeChaosReport) -> str:
    lines = [f"== serve chaos (seed={report.seed}, "
             f"requests={report.requests}) =="]
    for status, count in report.status_counts().items():
        lines.append(f"  {status:<28} {count}")
    lines.append(f"  daemon restarts: {report.restarts}")
    lines.append(f"  flood: served={report.flood_served} "
                 f"shed={report.flood_shed}")
    requests_info = report.final_status.get("requests", {})
    lines.append(f"  final server counters: {json.dumps(requests_info, sort_keys=True)}")
    lines.append(f"  corpus digest: {report.digest()}")
    lines.append("  silent losses: "
                 + ("NONE" if report.ok
                    else f"{len(report.silent_failures)} !!"))
    return "\n".join(lines)
