"""Machine substrate: memory, CPU state, syscalls, and the interpreter."""

from .cpu import CPUState
from .interpreter import (
    ExecutionHooks,
    ExecutionResult,
    Interpreter,
    StepInfo,
)
from .memory import Memory, Segment
from .process import Layout, Process, ProcessImage
from .syscalls import OperatingSystem, Sys, SyscallEvent

__all__ = [
    "CPUState",
    "ExecutionHooks",
    "ExecutionResult",
    "Interpreter",
    "Layout",
    "Memory",
    "OperatingSystem",
    "Process",
    "ProcessImage",
    "Segment",
    "StepInfo",
    "Sys",
    "SyscallEvent",
]
