"""Flat byte-addressable memory with permissioned segments.

The model is deliberately simple: a process image is a set of disjoint
segments (code, data, stack, heap, code cache), each a contiguous
bytearray with read/write/execute permissions.  Accesses outside any
segment, or violating permissions, raise :class:`SegmentationFault` —
the modelled outcome a failed ROP attempt typically produces.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..errors import ConfigError, SegmentationFault
from ..isa.base import WORD_SIZE, to_unsigned


@dataclass
class Segment:
    """One contiguous mapped region."""

    name: str
    base: int
    size: int
    readable: bool = True
    writable: bool = True
    executable: bool = False
    data: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.data:
            self.data = bytearray(self.size)
        elif len(self.data) != self.size:
            raise ConfigError(
                f"segment {self.name}: data length {len(self.data)} != size {self.size}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.end

    def __repr__(self) -> str:
        perms = "".join(
            flag if enabled else "-"
            for flag, enabled in (("r", self.readable), ("w", self.writable),
                                  ("x", self.executable)))
        return f"<Segment {self.name} {self.base:#x}-{self.end:#x} {perms}>"


class Memory:
    """The process address space: an ordered collection of segments."""

    def __init__(self) -> None:
        self._segments: List[Segment] = []
        self._by_name: Dict[str, Segment] = {}

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_segment(self, segment: Segment) -> Segment:
        for existing in self._segments:
            if segment.base < existing.end and existing.base < segment.end:
                raise ConfigError(
                    f"segment {segment.name} overlaps {existing.name}")
        if segment.name in self._by_name:
            raise ConfigError(f"duplicate segment name {segment.name!r}")
        self._segments.append(segment)
        self._segments.sort(key=lambda s: s.base)
        self._by_name[segment.name] = segment
        return segment

    def map(self, name: str, base: int, size: int, *, readable: bool = True,
            writable: bool = True, executable: bool = False,
            data: Optional[bytes] = None) -> Segment:
        payload = bytearray(data) if data is not None else bytearray(size)
        if data is not None and len(payload) < size:
            payload.extend(bytearray(size - len(payload)))
        return self.map_segment(Segment(
            name=name, base=base, size=size, readable=readable,
            writable=writable, executable=executable, data=payload))

    def unmap(self, name: str) -> None:
        segment = self._by_name.pop(name)
        self._segments.remove(segment)

    def segment(self, name: str) -> Segment:
        return self._by_name[name]

    def has_segment(self, name: str) -> bool:
        return name in self._by_name

    def segments(self) -> Iterator[Segment]:
        return iter(self._segments)

    def find(self, address: int, length: int = 1) -> Optional[Segment]:
        for segment in self._segments:
            if segment.contains(address, length):
                return segment
        return None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _locate(self, address: int, length: int, access: str) -> Segment:
        address = to_unsigned(address)
        segment = self.find(address, length)
        if segment is None:
            raise SegmentationFault(address, access)
        if access == "read" and not segment.readable:
            raise SegmentationFault(address, access)
        if access == "write" and not segment.writable:
            raise SegmentationFault(address, access)
        if access == "execute" and not segment.executable:
            raise SegmentationFault(address, access)
        return segment

    def read_bytes(self, address: int, length: int,
                   access: str = "read") -> bytes:
        address = to_unsigned(address)
        segment = self._locate(address, length, access)
        offset = address - segment.base
        return bytes(segment.data[offset:offset + length])

    def write_bytes(self, address: int, data: bytes) -> None:
        address = to_unsigned(address)
        segment = self._locate(address, len(data), "write")
        offset = address - segment.base
        segment.data[offset:offset + len(data)] = data

    def read_u8(self, address: int) -> int:
        return self.read_bytes(address, 1)[0]

    def write_u8(self, address: int, value: int) -> None:
        self.write_bytes(address, bytes([value & 0xFF]))

    def read_word(self, address: int) -> int:
        return struct.unpack("<I", self.read_bytes(address, WORD_SIZE))[0]

    def write_word(self, address: int, value: int) -> None:
        self.write_bytes(address, struct.pack("<I", to_unsigned(value)))

    def read_cstring(self, address: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated byte string (used by the syscall layer)."""
        out = bytearray()
        for i in range(limit):
            byte = self.read_u8(address + i)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise SegmentationFault(address, "unterminated string")

    def fetch_window(self, address: int, length: int) -> bytes:
        """Read up to ``length`` executable bytes for instruction decode.

        Clamps at the end of the containing segment rather than faulting,
        because instruction fetch near a segment boundary is legitimate.
        """
        address = to_unsigned(address)
        segment = self._locate(address, 1, "execute")
        offset = address - segment.base
        return bytes(segment.data[offset:offset + length])
