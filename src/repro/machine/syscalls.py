"""The modelled operating-system interface.

A tiny Linux-flavoured syscall layer.  The attack harness cares about one
thing above all: whether a payload manages to invoke ``execve`` with an
attacker-controlled path (the canonical shell-spawning ROP goal from
Figure 1 of the paper).  Every syscall invocation is recorded as an event
so attacks and tests can assert on exactly what the "kernel" saw.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import MachineFault
from ..isa.base import to_signed
from .cpu import CPUState
from .memory import Memory


class Sys(enum.IntEnum):
    """Syscall numbers (32-bit-Linux-flavoured)."""

    EXIT = 1
    READ = 3
    WRITE = 4
    EXECVE = 11
    BRK = 45
    GETPID = 20


@dataclass(frozen=True)
class SyscallEvent:
    """One observed syscall: number, raw args, and decoded detail."""

    number: int
    args: Tuple[int, int, int]
    detail: str = ""

    @property
    def name(self) -> str:
        try:
            return Sys(self.number).name.lower()
        except ValueError:
            return f"sys_{self.number}"


class SyscallError(MachineFault):
    """An invalid syscall — modelled as a faulting trap."""

    def __init__(self, address: int, number: int):
        super().__init__(address, f"bad syscall {number}")
        self.number = number


class OperatingSystem:
    """Kernel model: dispatches syscalls, records events, owns I/O buffers.

    The ``execve`` handler *records* the exec rather than replacing the
    process image; the caller (attack harness or example program) inspects
    :attr:`spawned` to see what would have run.  A successful attack is a
    recorded ``execve("/bin/sh")``.
    """

    def __init__(self, stdin: bytes = b""):
        self.stdout = bytearray()
        self.stdin = bytearray(stdin)
        self.spawned: List[bytes] = []
        self.events: List[SyscallEvent] = []
        self.exit_code: Optional[int] = None
        self.pid = 1000
        self._brk = 0

    # ------------------------------------------------------------------
    def reset(self, stdin: bytes = b"") -> None:
        self.stdout = bytearray()
        self.stdin = bytearray(stdin)
        self.spawned = []
        self.events = []
        self.exit_code = None

    @property
    def shell_spawned(self) -> bool:
        """True if an ``execve`` of a shell was observed (attack success)."""
        return any(path.startswith(b"/bin/sh") for path in self.spawned)

    # ------------------------------------------------------------------
    def dispatch(self, cpu: CPUState, memory: Memory) -> None:
        """Handle the syscall currently requested by ``cpu``'s registers."""
        isa = cpu.isa
        number = cpu.get(isa.syscall_number_reg)
        args = tuple(cpu.get(r) for r in isa.syscall_arg_regs)
        detail = ""

        if number == Sys.EXIT:
            self.exit_code = to_signed(args[0])
            cpu.halted = True
            detail = f"code={self.exit_code}"
        elif number == Sys.WRITE:
            fd, buf, count = args
            data = memory.read_bytes(buf, min(count, 1 << 20))
            if fd in (1, 2):
                self.stdout.extend(data)
            detail = f"fd={fd} count={count}"
            cpu.set(isa.return_reg, count)
        elif number == Sys.READ:
            fd, buf, count = args
            chunk = bytes(self.stdin[:count])
            del self.stdin[:count]
            memory.write_bytes(buf, chunk)
            cpu.set(isa.return_reg, len(chunk))
            detail = f"fd={fd} read={len(chunk)}"
        elif number == Sys.EXECVE:
            path = memory.read_cstring(args[0])
            self.spawned.append(path)
            detail = f"path={path!r}"
            cpu.set(isa.return_reg, 0)
        elif number == Sys.BRK:
            if args[0]:
                self._brk = args[0]
            cpu.set(isa.return_reg, self._brk)
        elif number == Sys.GETPID:
            cpu.set(isa.return_reg, self.pid)
        else:
            self.events.append(SyscallEvent(number, args, "invalid"))
            raise SyscallError(cpu.pc, number)

        self.events.append(SyscallEvent(int(number), args, detail))
