"""Process images: standard memory layout and context setup.

A process in this model owns one address space shared by both ISAs'
views (the fat binary maps one code section per ISA plus a common,
ISA-agnostic data section — Section 3.2 of the paper) and one *active*
CPU context at a time; migration swaps which ISA's context is live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..isa.base import ISADescription, WORD_SIZE
from .cpu import CPUState
from .interpreter import ExecutionHooks, Interpreter
from .memory import Memory
from .syscalls import OperatingSystem


class Layout:
    """Standard virtual-address layout for all processes in the model."""

    X86_CODE_BASE = 0x08048000
    ARM_CODE_BASE = 0x00400000
    DATA_BASE = 0x10000000
    HEAP_BASE = 0x20000000
    HEAP_SIZE = 0x100000
    STACK_TOP = 0xBFF00000
    STACK_SIZE = 0x100000
    #: per-ISA code-cache bases used by the PSR virtual machines
    CACHE_BASES = {"x86like": 0x70000000, "armlike": 0x00600000}

    CODE_BASES = {"x86like": X86_CODE_BASE, "armlike": ARM_CODE_BASE}


@dataclass
class ProcessImage:
    """Raw ingredients of a process: code per ISA plus an optional data blob."""

    code_sections: Dict[str, bytes]          # isa name -> encoded text
    data: bytes = b""
    entry_points: Optional[Dict[str, int]] = None   # isa name -> entry address


class Process:
    """A loaded process: memory, kernel interface, and one live CPU."""

    def __init__(self, image: ProcessImage, isa: ISADescription,
                 os: Optional[OperatingSystem] = None,
                 hooks: Optional[ExecutionHooks] = None):
        self.image = image
        self.memory = Memory()
        self.os = os or OperatingSystem()

        for isa_name, code in image.code_sections.items():
            base = Layout.CODE_BASES[isa_name]
            self.memory.map(f"text.{isa_name}", base, _round_page(len(code)),
                            writable=False, executable=True, data=code)
        data_size = max(_round_page(len(image.data)), 0x1000)
        self.memory.map("data", Layout.DATA_BASE, data_size, data=image.data)
        self.memory.map("heap", Layout.HEAP_BASE, Layout.HEAP_SIZE)
        self.memory.map("stack", Layout.STACK_TOP - Layout.STACK_SIZE,
                        Layout.STACK_SIZE)

        self.cpu = CPUState(isa)
        entry = self.entry_point(isa.name)
        self.cpu.pc = entry
        # Leave a red zone below the stack top; push a sentinel return
        # address so a return from the entry function halts cleanly.
        self.cpu.sp = Layout.STACK_TOP - 4 * WORD_SIZE
        self.interpreter = Interpreter(self.cpu, self.memory, self.os, hooks)

    def entry_point(self, isa_name: str) -> int:
        if self.image.entry_points and isa_name in self.image.entry_points:
            return self.image.entry_points[isa_name]
        return Layout.CODE_BASES[isa_name]

    def run(self, max_instructions: int = 1_000_000, **kwargs):
        return self.interpreter.run(max_instructions, **kwargs)

    def text_segment(self, isa_name: str):
        return self.memory.segment(f"text.{isa_name}")


def _round_page(size: int, page: int = 0x1000) -> int:
    return max((size + page - 1) // page * page, page)
