"""Fetch–decode–execute interpreter over encoded binaries.

The interpreter is ISA-agnostic: it fetches bytes from memory at the
program counter, decodes them through the CPU's ISA description, and
executes the shared instruction semantics.  Two extension points let the
rest of the system build on it without subclassing:

* :class:`ExecutionHooks` — the dynamic binary translator's interception
  surface.  ``resolve_target`` is consulted on *every* control transfer
  (this is where translate-on-miss, RAT lookups, SFI policing, and
  migration decisions live); ``on_call`` chooses the return address that
  gets saved (the PSR VM saves *source* addresses, per Section 5.1).
* step observers — callables receiving each executed instruction plus its
  memory/branch behaviour; the performance model feeds its caches and
  branch predictor from these without the interpreter storing any trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import (
    AlignmentFault, DecodeError, IllegalInstruction, MachineFault)
from ..faults import injection as _faults
from ..isa.base import (
    Decoded, Imm, Mem, Op, Reg, WORD_SIZE, to_signed, to_unsigned)
from .cpu import CPUState
from .memory import Memory
from .syscalls import OperatingSystem

#: Maximum bytes one instruction can occupy (x86like tops out at 10).
MAX_INSTRUCTION_BYTES = 12

#: decode-cache page granularity; invalidation cost is O(pages touched)
DECODE_PAGE_SHIFT = 12
DECODE_PAGE_SIZE = 1 << DECODE_PAGE_SHIFT


class ExecutionHooks:
    """Default (native) hooks: no redirection, return addresses unchanged."""

    def resolve_target(self, kind: str, cpu: CPUState, target: int) -> int:
        """Map a control-transfer target before the PC moves there.

        ``kind`` is one of ``call``, ``jmp``, ``jcc``, ``icall``, ``ijmp``,
        ``ret``.  The DBT overrides this to translate-on-miss and to police
        indirect transfers.
        """
        return target

    def on_call(self, cpu: CPUState, return_address: int) -> int:
        """Choose the return address to save for a call instruction."""
        return return_address


@dataclass
class StepInfo:
    """What one executed instruction did — consumed by step observers."""

    decoded: Decoded
    #: (address, is_write) for every data-memory access, in order
    mem_accesses: List[Tuple[int, bool]] = field(default_factory=list)
    #: for control instructions: did the transfer happen, and to where
    branch_taken: bool = False
    branch_target: int = 0


@dataclass
class ExecutionResult:
    """Outcome of an interpreter run."""

    steps: int
    reason: str                      # "halt" | "limit" | "fault" | "breakpoint"
    fault: Optional[MachineFault] = None

    @property
    def crashed(self) -> bool:
        return self.reason == "fault"


StepObserver = Callable[[CPUState, StepInfo], None]


class Interpreter:
    """Executes one hardware context (CPU + memory + OS)."""

    def __init__(self, cpu: CPUState, memory: Memory, os: OperatingSystem,
                 hooks: Optional[ExecutionHooks] = None):
        self.cpu = cpu
        self.memory = memory
        self.os = os
        self.hooks = hooks or ExecutionHooks()
        self.observers: List[StepObserver] = []
        self.steps_executed = 0
        #: page-indexed decode cache: page number -> {(isa, pc): Decoded}.
        #: Self-modifying code (the DBT rewriting its code cache) touches
        #: a handful of pages at a time, so invalidation scans only the
        #: affected buckets instead of every cached decode.
        self._decode_pages: Dict[int, Dict[Tuple[str, int], Decoded]] = {}
        self.breakpoints: set = set()

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def invalidate_decode_cache(self, base: Optional[int] = None,
                                end: Optional[int] = None) -> None:
        """Drop cached decodes (call after writing to executable memory).

        With no arguments the whole cache is dropped.  With a ``[base,
        end)`` range, only the pages overlapping the range are visited —
        a fully-covered page is discarded wholesale, a partially-covered
        one is scanned for stale entries.
        """
        if base is None:
            self._decode_pages.clear()
            return
        if end is None:
            end = base + 1
        pages = self._decode_pages
        for page in range(base >> DECODE_PAGE_SHIFT,
                          ((end - 1) >> DECODE_PAGE_SHIFT) + 1):
            bucket = pages.get(page)
            if bucket is None:
                continue
            page_start = page << DECODE_PAGE_SHIFT
            if base <= page_start and page_start + DECODE_PAGE_SIZE <= end:
                del pages[page]
                continue
            stale = [key for key in bucket if base <= key[1] < end]
            for key in stale:
                del bucket[key]
            if not bucket:
                del pages[page]

    def cached_decode(self, isa_name: str, pc: int) -> Optional[Decoded]:
        """The cached decode at ``pc`` for ``isa_name``, if any."""
        bucket = self._decode_pages.get(pc >> DECODE_PAGE_SHIFT)
        if bucket is None:
            return None
        return bucket.get((isa_name, pc))

    @property
    def decode_cache_size(self) -> int:
        """Total cached decodes across every page."""
        return sum(len(bucket) for bucket in self._decode_pages.values())

    def _decode(self, cpu: CPUState, pc: int) -> Decoded:
        isa = cpu.isa
        bucket = self._decode_pages.get(pc >> DECODE_PAGE_SHIFT)
        key = (isa.name, pc)
        if bucket is not None:
            cached = bucket.get(key)
            if cached is not None:
                return cached
        if pc % isa.alignment:
            raise AlignmentFault(pc)
        window = self.memory.fetch_window(pc, MAX_INSTRUCTION_BYTES)
        try:
            decoded = isa.decode(window, 0, pc)
        except DecodeError:
            raise IllegalInstruction(pc) from None
        if bucket is None:
            bucket = self._decode_pages.setdefault(pc >> DECODE_PAGE_SHIFT,
                                                   {})
        bucket[key] = decoded
        return decoded

    # ------------------------------------------------------------------
    # Operand evaluation
    # ------------------------------------------------------------------
    def _mem_address(self, cpu: CPUState, operand: Mem) -> int:
        return to_unsigned(cpu.get(operand.base) + operand.disp)

    def _value(self, cpu: CPUState, operand, info: StepInfo) -> int:
        if isinstance(operand, Reg):
            return cpu.get(operand.index)
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Mem):
            address = self._mem_address(cpu, operand)
            info.mem_accesses.append((address, False))
            return self.memory.read_word(address)
        raise IllegalInstruction(cpu.pc)

    def _write(self, cpu: CPUState, operand, value: int, info: StepInfo) -> None:
        if isinstance(operand, Reg):
            cpu.set(operand.index, value)
            return
        if isinstance(operand, Mem):
            address = self._mem_address(cpu, operand)
            info.mem_accesses.append((address, True))
            self.memory.write_word(address, value)
            return
        raise IllegalInstruction(cpu.pc)

    # ------------------------------------------------------------------
    # Stack helpers
    # ------------------------------------------------------------------
    def _push(self, cpu: CPUState, value: int, info: StepInfo) -> None:
        cpu.sp = cpu.sp - WORD_SIZE
        info.mem_accesses.append((cpu.sp, True))
        self.memory.write_word(cpu.sp, value)

    def _pop(self, cpu: CPUState, info: StepInfo) -> int:
        address = cpu.sp
        info.mem_accesses.append((address, False))
        value = self.memory.read_word(address)
        cpu.sp = address + WORD_SIZE
        return value

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> StepInfo:
        """Execute exactly one instruction; raises on modelled faults."""
        cpu = self.cpu
        decoded = self._decode(cpu, cpu.pc)
        ins = decoded.instruction
        info = StepInfo(decoded=decoded)
        next_pc = decoded.end
        op = ins.op
        ops = ins.operands

        if op is Op.NOP:
            pass
        elif op is Op.HLT:
            cpu.halted = True
        elif op is Op.MOV:
            self._write(cpu, ops[0], self._value(cpu, ops[1], info), info)
        elif op is Op.MOVT:
            low = cpu.get(ops[0].index) & 0xFFFF
            cpu.set(ops[0].index, low | ((ops[1].value & 0xFFFF) << 16))
        elif op is Op.LOAD:
            self._write(cpu, ops[0], self._value(cpu, ops[1], info), info)
        elif op is Op.STORE:
            self._write(cpu, ops[0], self._value(cpu, ops[1], info), info)
        elif op is Op.LOADB:
            address = self._mem_address(cpu, ops[1])
            info.mem_accesses.append((address, False))
            self._write(cpu, ops[0], self.memory.read_u8(address), info)
        elif op is Op.STOREB:
            address = self._mem_address(cpu, ops[0])
            info.mem_accesses.append((address, True))
            self.memory.write_u8(address, self._value(cpu, ops[1], info) & 0xFF)
        elif op is Op.LEA:
            cpu.set(ops[0].index, self._mem_address(cpu, ops[1]))
        elif op is Op.PUSH:
            self._push(cpu, self._value(cpu, ops[0], info), info)
        elif op is Op.POP:
            value = self._pop(cpu, info)
            self._write(cpu, ops[0], value, info)
        elif op is Op.CMP:
            self._execute_cmp(cpu, ops, info)
        elif op in _ALU_HANDLERS:
            handler = _ALU_HANDLERS[op]
            dst_value = self._value(cpu, ops[0], info)
            src_value = self._value(cpu, ops[1], info)
            self._write(cpu, ops[0], handler(cpu, dst_value, src_value), info)
        elif op is Op.NEG:
            self._write(cpu, ops[0],
                        to_unsigned(-to_signed(self._value(cpu, ops[0], info))),
                        info)
        elif op is Op.NOT:
            self._write(cpu, ops[0],
                        to_unsigned(~self._value(cpu, ops[0], info)), info)
        elif op is Op.JMP:
            next_pc = self.hooks.resolve_target("jmp", cpu, ops[0].value)
            info.branch_taken, info.branch_target = True, next_pc
        elif op is Op.JCC:
            if ins.cond.evaluate(cpu.cmp_value):
                next_pc = self.hooks.resolve_target("jcc", cpu, ops[0].value)
                info.branch_taken, info.branch_target = True, next_pc
        elif op is Op.CALL or op is Op.ICALL:
            if op is Op.CALL:
                target = ops[0].value
                kind = "call"
            else:
                target = self._value(cpu, ops[0], info)
                kind = "icall"
            # Query the saved return address *before* resolving: resolving
            # may translate (and even flush the code cache), and the
            # return-address mapping must reflect this call site as it is.
            saved = self.hooks.on_call(cpu, next_pc)
            target = self.hooks.resolve_target(kind, cpu, target)
            if cpu.isa.call_pushes_return:
                self._push(cpu, saved, info)
            else:
                cpu.lr = saved
            next_pc = target
            info.branch_taken, info.branch_target = True, next_pc
        elif op is Op.RET:
            source = self._pop(cpu, info)
            next_pc = self.hooks.resolve_target("ret", cpu, source)
            info.branch_taken, info.branch_target = True, next_pc
        elif op is Op.IJMP:
            target = self._value(cpu, ops[0], info)
            next_pc = self.hooks.resolve_target("ijmp", cpu, target)
            info.branch_taken, info.branch_target = True, next_pc
        elif op is Op.SYSCALL:
            self.os.dispatch(cpu, self.memory)
        else:  # pragma: no cover - every Op is handled above
            raise IllegalInstruction(cpu.pc)

        cpu.pc = to_unsigned(next_pc)
        self.steps_executed += 1
        observers = self.observers
        if observers:
            # Snapshot before dispatch: an observer may attach/detach
            # observers mid-step (trace instrumentation does), and that
            # must not mutate the list being iterated.
            for observer in tuple(observers):
                observer(cpu, info)
        return info

    def _execute_cmp(self, cpu: CPUState, ops, info: StepInfo) -> None:
        dst_value = self._value(cpu, ops[0], info)
        src_value = self._value(cpu, ops[1], info)
        cpu.set_compare(dst_value, src_value)

    def run(self, max_instructions: int = 1_000_000,
            catch_faults: bool = True) -> ExecutionResult:
        """Run until halt, fault, breakpoint, or the instruction budget.

        With ``catch_faults`` (the default) modelled machine faults become
        part of the result — the behaviour a parent process observes when
        its child crashes, which is what the brute-force attack model needs.
        """
        start = self.steps_executed
        budget = max_instructions
        # Hot loop: hoist the attribute lookups that don't change while
        # running — with no breakpoints set, the membership test is
        # skipped outright (the no-observer warmup fast path).
        cpu = self.cpu
        step = self.step
        breakpoints = self.breakpoints
        injector = _faults.get()
        try:
            while not cpu.halted:
                if self.steps_executed - start >= budget:
                    return ExecutionResult(self.steps_executed - start, "limit")
                if breakpoints and cpu.pc in breakpoints:
                    return ExecutionResult(self.steps_executed - start,
                                           "breakpoint")
                step()
                if injector is not None \
                        and (self.steps_executed & 0xFF) == 0:
                    # Chaos: a spurious full decode-cache flush.  Decoding
                    # is pure, so recovery is a transparent re-decode —
                    # but the flush exercises the same invalidation paths
                    # self-modifying code does.
                    event = injector.fire("decode.flush")
                    if event is not None:
                        self.invalidate_decode_cache()
                        _faults.recovered("interpreter.decode", "redecode")
        except MachineFault as fault:
            if not catch_faults:
                raise
            return ExecutionResult(self.steps_executed - start, "fault", fault)
        return ExecutionResult(self.steps_executed - start, "halt")


def _shift_amount(value: int) -> int:
    return value & 31


def _alu_add(cpu, a, b):
    return a + b


def _alu_sub(cpu, a, b):
    return a - b


def _alu_mul(cpu, a, b):
    return to_signed(a) * to_signed(b)


def _alu_div(cpu, a, b):
    if to_signed(b) == 0:
        raise MachineFault(cpu.pc, "integer division by zero")
    return int(to_signed(a) / to_signed(b))  # C-style truncation


def _alu_mod(cpu, a, b):
    if to_signed(b) == 0:
        raise MachineFault(cpu.pc, "integer division by zero")
    sa, sb = to_signed(a), to_signed(b)
    return sa - int(sa / sb) * sb


def _alu_and(cpu, a, b):
    return a & b


def _alu_or(cpu, a, b):
    return a | b


def _alu_xor(cpu, a, b):
    return a ^ b


def _alu_shl(cpu, a, b):
    return a << _shift_amount(b)


def _alu_shr(cpu, a, b):
    return (a & 0xFFFFFFFF) >> _shift_amount(b)


def _alu_sar(cpu, a, b):
    return to_signed(a) >> _shift_amount(b)


_ALU_HANDLERS = {
    Op.ADD: _alu_add,
    Op.SUB: _alu_sub,
    Op.MUL: _alu_mul,
    Op.DIV: _alu_div,
    Op.MOD: _alu_mod,
    Op.AND: _alu_and,
    Op.OR: _alu_or,
    Op.XOR: _alu_xor,
    Op.SHL: _alu_shl,
    Op.SHR: _alu_shr,
    Op.SAR: _alu_sar,
}
