"""Fetch–decode–execute interpreter over encoded binaries.

The interpreter is ISA-agnostic: it fetches bytes from memory at the
program counter, decodes them through the CPU's ISA description, and
executes the shared instruction semantics.  Two extension points let the
rest of the system build on it without subclassing:

* :class:`ExecutionHooks` — the dynamic binary translator's interception
  surface.  ``resolve_target`` is consulted on *every* control transfer
  (this is where translate-on-miss, RAT lookups, SFI policing, and
  migration decisions live); ``on_call`` chooses the return address that
  gets saved (the PSR VM saves *source* addresses, per Section 5.1).
* step observers — callables receiving each executed instruction plus its
  memory/branch behaviour; the performance model feeds its caches and
  branch predictor from these without the interpreter storing any trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..dbt.code_cache import CompiledBlock, CompiledBlockCache
from ..errors import (
    AlignmentFault, DecodeError, IllegalInstruction, MachineFault)
from ..faults import injection as _faults
from ..obs import context as _obs
from ..isa.base import (
    Decoded, Imm, Mem, Op, Reg, WORD_SIZE, to_signed, to_unsigned)
from .cpu import CPUState
from .memory import Memory
from .syscalls import OperatingSystem

#: Maximum bytes one instruction can occupy (x86like tops out at 10).
MAX_INSTRUCTION_BYTES = 12

#: decode-cache page granularity; invalidation cost is O(pages touched)
DECODE_PAGE_SHIFT = 12
DECODE_PAGE_SIZE = 1 << DECODE_PAGE_SHIFT

#: longest straight-line run compiled into one block closure
MAX_BLOCK_INSTRUCTIONS = 64


class ExecutionHooks:
    """Default (native) hooks: no redirection, return addresses unchanged."""

    def resolve_target(self, kind: str, cpu: CPUState, target: int) -> int:
        """Map a control-transfer target before the PC moves there.

        ``kind`` is one of ``call``, ``jmp``, ``jcc``, ``icall``, ``ijmp``,
        ``ret``.  The DBT overrides this to translate-on-miss and to police
        indirect transfers.
        """
        return target

    def on_call(self, cpu: CPUState, return_address: int) -> int:
        """Choose the return address to save for a call instruction."""
        return return_address


@dataclass
class StepInfo:
    """What one executed instruction did — consumed by step observers."""

    decoded: Decoded
    #: (address, is_write) for every data-memory access, in order
    mem_accesses: List[Tuple[int, bool]] = field(default_factory=list)
    #: for control instructions: did the transfer happen, and to where
    branch_taken: bool = False
    branch_target: int = 0


@dataclass
class ExecutionResult:
    """Outcome of an interpreter run."""

    steps: int
    reason: str                      # "halt" | "limit" | "fault" | "breakpoint"
    fault: Optional[MachineFault] = None

    @property
    def crashed(self) -> bool:
        return self.reason == "fault"


StepObserver = Callable[[CPUState, StepInfo], None]


class Interpreter:
    """Executes one hardware context (CPU + memory + OS)."""

    def __init__(self, cpu: CPUState, memory: Memory, os: OperatingSystem,
                 hooks: Optional[ExecutionHooks] = None):
        self.cpu = cpu
        self.memory = memory
        self.os = os
        self.hooks = hooks or ExecutionHooks()
        self.observers: List[StepObserver] = []
        self.steps_executed = 0
        #: page-indexed decode cache: page number -> {(isa, pc): Decoded}.
        #: Self-modifying code (the DBT rewriting its code cache) touches
        #: a handful of pages at a time, so invalidation scans only the
        #: affected buckets instead of every cached decode.
        self._decode_pages: Dict[int, Dict[Tuple[str, int], Decoded]] = {}
        #: compiled-block cache for the threaded-code fast path; shares
        #: the decode cache's page granularity and invalidation contract
        self._blocks = CompiledBlockCache(DECODE_PAGE_SHIFT)
        self.breakpoints: set = set()

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def invalidate_decode_cache(self, base: Optional[int] = None,
                                end: Optional[int] = None) -> None:
        """Drop cached decodes (call after writing to executable memory).

        With no arguments the whole cache is dropped.  With a ``[base,
        end)`` range, only the pages overlapping the range are visited —
        a fully-covered page is discarded wholesale, a partially-covered
        one is scanned for stale entries.  Compiled blocks overlapping
        the range are dropped too (with their chain links severed), so
        the block cache can never be staler than the decode cache.
        """
        self._blocks.invalidate(base, end)
        if base is None:
            self._decode_pages.clear()
            return
        if end is None:
            end = base + 1
        pages = self._decode_pages
        for page in range(base >> DECODE_PAGE_SHIFT,
                          ((end - 1) >> DECODE_PAGE_SHIFT) + 1):
            bucket = pages.get(page)
            if bucket is None:
                continue
            page_start = page << DECODE_PAGE_SHIFT
            if base <= page_start and page_start + DECODE_PAGE_SIZE <= end:
                del pages[page]
                continue
            stale = [key for key in bucket if base <= key[1] < end]
            for key in stale:
                del bucket[key]
            if not bucket:
                del pages[page]

    def cached_decode(self, isa_name: str, pc: int) -> Optional[Decoded]:
        """The cached decode at ``pc`` for ``isa_name``, if any."""
        bucket = self._decode_pages.get(pc >> DECODE_PAGE_SHIFT)
        if bucket is None:
            return None
        return bucket.get((isa_name, pc))

    @property
    def decode_cache_size(self) -> int:
        """Total cached decodes across every page."""
        return sum(len(bucket) for bucket in self._decode_pages.values())

    def _decode(self, cpu: CPUState, pc: int) -> Decoded:
        isa = cpu.isa
        bucket = self._decode_pages.get(pc >> DECODE_PAGE_SHIFT)
        key = (isa.name, pc)
        if bucket is not None:
            cached = bucket.get(key)
            if cached is not None:
                return cached
        if pc % isa.alignment:
            raise AlignmentFault(pc)
        window = self.memory.fetch_window(pc, MAX_INSTRUCTION_BYTES)
        try:
            decoded = isa.decode(window, 0, pc)
        except DecodeError:
            raise IllegalInstruction(pc) from None
        if bucket is None:
            bucket = self._decode_pages.setdefault(pc >> DECODE_PAGE_SHIFT,
                                                   {})
        bucket[key] = decoded
        return decoded

    # ------------------------------------------------------------------
    # Operand evaluation
    # ------------------------------------------------------------------
    def _mem_address(self, cpu: CPUState, operand: Mem) -> int:
        return to_unsigned(cpu.get(operand.base) + operand.disp)

    def _value(self, cpu: CPUState, operand, info: StepInfo) -> int:
        if isinstance(operand, Reg):
            return cpu.get(operand.index)
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Mem):
            address = self._mem_address(cpu, operand)
            info.mem_accesses.append((address, False))
            return self.memory.read_word(address)
        raise IllegalInstruction(cpu.pc)

    def _write(self, cpu: CPUState, operand, value: int, info: StepInfo) -> None:
        if isinstance(operand, Reg):
            cpu.set(operand.index, value)
            return
        if isinstance(operand, Mem):
            address = self._mem_address(cpu, operand)
            info.mem_accesses.append((address, True))
            self.memory.write_word(address, value)
            return
        raise IllegalInstruction(cpu.pc)

    # ------------------------------------------------------------------
    # Stack helpers
    # ------------------------------------------------------------------
    def _push(self, cpu: CPUState, value: int, info: StepInfo) -> None:
        cpu.sp = cpu.sp - WORD_SIZE
        info.mem_accesses.append((cpu.sp, True))
        self.memory.write_word(cpu.sp, value)

    def _pop(self, cpu: CPUState, info: StepInfo) -> int:
        address = cpu.sp
        info.mem_accesses.append((address, False))
        value = self.memory.read_word(address)
        cpu.sp = address + WORD_SIZE
        return value

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> StepInfo:
        """Execute exactly one instruction; raises on modelled faults."""
        cpu = self.cpu
        decoded = self._decode(cpu, cpu.pc)
        ins = decoded.instruction
        info = StepInfo(decoded=decoded)
        next_pc = decoded.end
        op = ins.op
        ops = ins.operands

        if op is Op.NOP:
            pass
        elif op is Op.HLT:
            cpu.halted = True
        elif op is Op.MOV:
            self._write(cpu, ops[0], self._value(cpu, ops[1], info), info)
        elif op is Op.MOVT:
            low = cpu.get(ops[0].index) & 0xFFFF
            cpu.set(ops[0].index, low | ((ops[1].value & 0xFFFF) << 16))
        elif op is Op.LOAD:
            self._write(cpu, ops[0], self._value(cpu, ops[1], info), info)
        elif op is Op.STORE:
            self._write(cpu, ops[0], self._value(cpu, ops[1], info), info)
        elif op is Op.LOADB:
            address = self._mem_address(cpu, ops[1])
            info.mem_accesses.append((address, False))
            self._write(cpu, ops[0], self.memory.read_u8(address), info)
        elif op is Op.STOREB:
            address = self._mem_address(cpu, ops[0])
            info.mem_accesses.append((address, True))
            self.memory.write_u8(address, self._value(cpu, ops[1], info) & 0xFF)
        elif op is Op.LEA:
            cpu.set(ops[0].index, self._mem_address(cpu, ops[1]))
        elif op is Op.PUSH:
            self._push(cpu, self._value(cpu, ops[0], info), info)
        elif op is Op.POP:
            value = self._pop(cpu, info)
            self._write(cpu, ops[0], value, info)
        elif op is Op.CMP:
            self._execute_cmp(cpu, ops, info)
        elif op in _ALU_HANDLERS:
            handler = _ALU_HANDLERS[op]
            dst_value = self._value(cpu, ops[0], info)
            src_value = self._value(cpu, ops[1], info)
            self._write(cpu, ops[0], handler(cpu, dst_value, src_value), info)
        elif op is Op.NEG:
            self._write(cpu, ops[0],
                        to_unsigned(-to_signed(self._value(cpu, ops[0], info))),
                        info)
        elif op is Op.NOT:
            self._write(cpu, ops[0],
                        to_unsigned(~self._value(cpu, ops[0], info)), info)
        elif op is Op.JMP:
            next_pc = self.hooks.resolve_target("jmp", cpu, ops[0].value)
            info.branch_taken, info.branch_target = True, next_pc
        elif op is Op.JCC:
            if ins.cond.evaluate(cpu.cmp_value):
                next_pc = self.hooks.resolve_target("jcc", cpu, ops[0].value)
                info.branch_taken, info.branch_target = True, next_pc
        elif op is Op.CALL or op is Op.ICALL:
            if op is Op.CALL:
                target = ops[0].value
                kind = "call"
            else:
                target = self._value(cpu, ops[0], info)
                kind = "icall"
            # Query the saved return address *before* resolving: resolving
            # may translate (and even flush the code cache), and the
            # return-address mapping must reflect this call site as it is.
            saved = self.hooks.on_call(cpu, next_pc)
            target = self.hooks.resolve_target(kind, cpu, target)
            if cpu.isa.call_pushes_return:
                self._push(cpu, saved, info)
            else:
                cpu.lr = saved
            next_pc = target
            info.branch_taken, info.branch_target = True, next_pc
        elif op is Op.RET:
            source = self._pop(cpu, info)
            next_pc = self.hooks.resolve_target("ret", cpu, source)
            info.branch_taken, info.branch_target = True, next_pc
        elif op is Op.IJMP:
            target = self._value(cpu, ops[0], info)
            next_pc = self.hooks.resolve_target("ijmp", cpu, target)
            info.branch_taken, info.branch_target = True, next_pc
        elif op is Op.SYSCALL:
            self.os.dispatch(cpu, self.memory)
        else:  # pragma: no cover - every Op is handled above
            raise IllegalInstruction(cpu.pc)

        cpu.pc = to_unsigned(next_pc)
        self.steps_executed += 1
        observers = self.observers
        if observers:
            # Snapshot before dispatch: an observer may attach/detach
            # observers mid-step (trace instrumentation does), and that
            # must not mutate the list being iterated.
            for observer in tuple(observers):
                observer(cpu, info)
        return info

    def _execute_cmp(self, cpu: CPUState, ops, info: StepInfo) -> None:
        dst_value = self._value(cpu, ops[0], info)
        src_value = self._value(cpu, ops[1], info)
        cpu.set_compare(dst_value, src_value)

    # ------------------------------------------------------------------
    # Compiled-block fast path (threaded code)
    # ------------------------------------------------------------------
    # Each decoded basic block is compiled once into a chain of small
    # closures — one per instruction, specialized on the operand kinds —
    # plus a terminator closure that performs the control transfer
    # through the normal ExecutionHooks.  Dispatch then costs one dict
    # lookup and one call per *block*.  The fast path runs only when no
    # observer, breakpoint, or fault injector is active; everything it
    # does is bit-identical to the step() loop:
    #
    # * ``cpu.pc`` is stored at the start of every instruction closure,
    #   so modelled faults surface with the exact same pc as step();
    # * ``steps_executed`` is settled in a ``finally`` with the count of
    #   *completed* instructions, so a mid-block fault reports the same
    #   step count as the per-step loop;
    # * terminators always call ``hooks.on_call`` / ``resolve_target`` —
    #   superblock chain links only memoize the resolved-pc -> block
    #   dispatch, never the hook's decision.

    @property
    def compiled_block_count(self) -> int:
        """Live compiled blocks (test/diagnostic surface)."""
        return len(self._blocks)

    @property
    def block_stats(self):
        return self._blocks.stats

    def compiled_block_at(self, isa_name: str,
                          pc: int) -> Optional[CompiledBlock]:
        """The live compiled block starting at ``pc``, if any."""
        return self._blocks.lookup(isa_name, pc)

    def _compile_read(self, operand):
        """Closure returning the operand's value, or None if unsupported."""
        if isinstance(operand, Reg):
            index = operand.index
            return lambda cpu: cpu.regs[index]
        if isinstance(operand, Imm):
            value = operand.value
            return lambda cpu: value
        if isinstance(operand, Mem):
            base, disp = operand.base, operand.disp
            read_word = self.memory.read_word
            return lambda cpu: read_word(to_unsigned(cpu.regs[base] + disp))
        return None

    def _compile_write(self, operand):
        """Closure storing a value into the operand, or None."""
        if isinstance(operand, Reg):
            index = operand.index

            def write_reg(cpu, value):
                cpu.regs[index] = to_unsigned(value)
            return write_reg
        if isinstance(operand, Mem):
            base, disp = operand.base, operand.disp
            write_word = self.memory.write_word

            def write_mem(cpu, value):
                write_word(to_unsigned(cpu.regs[base] + disp), value)
            return write_mem
        return None

    def _compile_body(self, decoded: Decoded):
        """Compile one straight-line instruction into a closure, or None."""
        ins = decoded.instruction
        op = ins.op
        ops = ins.operands
        address = decoded.address

        if op is Op.NOP:
            def do_nop(cpu):
                cpu.pc = address
            return do_nop

        if op is Op.MOV or op is Op.LOAD or op is Op.STORE:
            read = self._compile_read(ops[1])
            write = self._compile_write(ops[0])
            if read is None or write is None:
                return None

            def do_mov(cpu):
                cpu.pc = address
                write(cpu, read(cpu))
            return do_mov

        if op is Op.MOVT:
            index = ops[0].index
            high = (ops[1].value & 0xFFFF) << 16

            def do_movt(cpu):
                cpu.pc = address
                cpu.regs[index] = to_unsigned(
                    (cpu.regs[index] & 0xFFFF) | high)
            return do_movt

        if op is Op.LOADB:
            base, disp = ops[1].base, ops[1].disp
            write = self._compile_write(ops[0])
            read_u8 = self.memory.read_u8
            if write is None:
                return None

            def do_loadb(cpu):
                cpu.pc = address
                write(cpu, read_u8(to_unsigned(cpu.regs[base] + disp)))
            return do_loadb

        if op is Op.STOREB:
            base, disp = ops[0].base, ops[0].disp
            read = self._compile_read(ops[1])
            write_u8 = self.memory.write_u8
            if read is None:
                return None

            def do_storeb(cpu):
                cpu.pc = address
                target = to_unsigned(cpu.regs[base] + disp)
                write_u8(target, read(cpu) & 0xFF)
            return do_storeb

        if op is Op.LEA:
            index = ops[0].index
            base, disp = ops[1].base, ops[1].disp

            def do_lea(cpu):
                cpu.pc = address
                cpu.regs[index] = to_unsigned(cpu.regs[base] + disp)
            return do_lea

        if op is Op.PUSH:
            read = self._compile_read(ops[0])
            write_word = self.memory.write_word
            sp_index = self.cpu.isa.sp
            if read is None:
                return None

            def do_push(cpu):
                cpu.pc = address
                value = read(cpu)
                regs = cpu.regs
                sp = to_unsigned(regs[sp_index] - WORD_SIZE)
                regs[sp_index] = sp
                write_word(sp, value)
            return do_push

        if op is Op.POP:
            write = self._compile_write(ops[0])
            read_word = self.memory.read_word
            sp_index = self.cpu.isa.sp
            if write is None:
                return None

            def do_pop(cpu):
                cpu.pc = address
                regs = cpu.regs
                slot = regs[sp_index]
                value = read_word(slot)
                regs[sp_index] = to_unsigned(slot + WORD_SIZE)
                write(cpu, value)
            return do_pop

        if op is Op.CMP:
            read_dst = self._compile_read(ops[0])
            read_src = self._compile_read(ops[1])
            if read_dst is None or read_src is None:
                return None

            def do_cmp(cpu):
                cpu.pc = address
                cpu.set_compare(read_dst(cpu), read_src(cpu))
            return do_cmp

        handler = _ALU_HANDLERS.get(op)
        if handler is not None:
            read_dst = self._compile_read(ops[0])
            read_src = self._compile_read(ops[1])
            write_dst = self._compile_write(ops[0])
            if read_dst is None or read_src is None or write_dst is None:
                return None

            def do_alu(cpu):
                cpu.pc = address
                write_dst(cpu, handler(cpu, read_dst(cpu), read_src(cpu)))
            return do_alu

        if op is Op.NEG or op is Op.NOT:
            read = self._compile_read(ops[0])
            write = self._compile_write(ops[0])
            if read is None or write is None:
                return None
            if op is Op.NEG:
                def do_neg(cpu):
                    cpu.pc = address
                    write(cpu, to_unsigned(-to_signed(read(cpu))))
                return do_neg

            def do_not(cpu):
                cpu.pc = address
                write(cpu, to_unsigned(~read(cpu)))
            return do_not

        return None

    def _compile_terminator(self, decoded: Decoded):
        """Closure executing a block-ending instruction; returns next pc."""
        ins = decoded.instruction
        op = ins.op
        ops = ins.operands
        address = decoded.address
        fall = decoded.end
        interp = self

        if op is Op.HLT:
            def do_hlt(cpu):
                cpu.pc = address
                cpu.halted = True
                return fall
            return do_hlt

        if op is Op.SYSCALL:
            def do_syscall(cpu):
                cpu.pc = address
                interp.os.dispatch(cpu, interp.memory)
                return fall
            return do_syscall

        if op is Op.JMP:
            target = ops[0].value

            def do_jmp(cpu):
                cpu.pc = address
                return interp.hooks.resolve_target("jmp", cpu, target)
            return do_jmp

        if op is Op.JCC:
            target = ops[0].value
            evaluate = ins.cond.evaluate

            def do_jcc(cpu):
                cpu.pc = address
                if evaluate(cpu.cmp_value):
                    return interp.hooks.resolve_target("jcc", cpu, target)
                return fall
            return do_jcc

        if op is Op.CALL or op is Op.ICALL:
            isa = self.cpu.isa
            pushes = isa.call_pushes_return
            sp_index = isa.sp
            lr_index = isa.lr
            write_word = self.memory.write_word
            if op is Op.CALL:
                fixed_target = ops[0].value
                read_target = None
                kind = "call"
            else:
                fixed_target = 0
                read_target = self._compile_read(ops[0])
                if read_target is None:
                    return None
                kind = "icall"

            def do_call(cpu):
                cpu.pc = address
                hooks = interp.hooks
                if read_target is None:
                    target = fixed_target
                else:
                    target = read_target(cpu)
                # Same ordering contract as step(): the saved return
                # address is chosen *before* resolving, which may
                # translate and even flush the code cache.
                saved = hooks.on_call(cpu, fall)
                target = hooks.resolve_target(kind, cpu, target)
                if pushes:
                    regs = cpu.regs
                    sp = to_unsigned(regs[sp_index] - WORD_SIZE)
                    regs[sp_index] = sp
                    write_word(sp, saved)
                else:
                    cpu.regs[lr_index] = to_unsigned(saved)
                return target
            return do_call

        if op is Op.RET:
            sp_index = self.cpu.isa.sp
            read_word = self.memory.read_word

            def do_ret(cpu):
                cpu.pc = address
                regs = cpu.regs
                slot = regs[sp_index]
                source = read_word(slot)
                regs[sp_index] = to_unsigned(slot + WORD_SIZE)
                return interp.hooks.resolve_target("ret", cpu, source)
            return do_ret

        if op is Op.IJMP:
            read_target = self._compile_read(ops[0])
            if read_target is None:
                return None

            def do_ijmp(cpu):
                cpu.pc = address
                return interp.hooks.resolve_target(
                    "ijmp", cpu, read_target(cpu))
            return do_ijmp

        return None

    def _make_executor(self, body, terminator, term_counts):
        """Bind a block's closures into one executable unit.

        ``steps_executed`` is settled in the ``finally`` so a fault (or a
        migration request escaping a terminator hook) reports exactly the
        instructions that completed, like the per-step loop.
        """
        interp = self
        if term_counts:
            def execute(cpu):
                completed = 0
                try:
                    for fn in body:
                        fn(cpu)
                        completed += 1
                    next_pc = terminator(cpu)
                    completed += 1
                finally:
                    interp.steps_executed += completed
                return next_pc
        else:
            def execute(cpu):
                completed = 0
                try:
                    for fn in body:
                        fn(cpu)
                        completed += 1
                finally:
                    interp.steps_executed += completed
                return terminator(cpu)
        return execute

    def _compile_block(self, cpu: CPUState) -> Optional[CompiledBlock]:
        """Compile the basic block starting at ``cpu.pc``.

        Returns None when even the first instruction fails to decode —
        the per-step loop then raises the identical fault.  A decode
        failure (or an uncompilable instruction) *after* the first one
        ends the block with a plain fall-through, so the slow path takes
        over at exactly the right pc.
        """
        start_pc = cpu.pc
        body = []
        terminator = None
        term_counts = False
        offset = start_pc
        while True:
            try:
                decoded = self._decode(cpu, offset)
            except MachineFault:
                if not body:
                    return None
                break
            ins = decoded.instruction
            if ins.is_control() or ins.op is Op.HLT or ins.op is Op.SYSCALL:
                terminator = self._compile_terminator(decoded)
                if terminator is None:
                    if not body:
                        return None
                    break
                term_counts = True
                offset = decoded.end
                break
            fn = self._compile_body(decoded)
            if fn is None:
                if not body:
                    return None
                break
            body.append(fn)
            offset = decoded.end
            if len(body) >= MAX_BLOCK_INSTRUCTIONS:
                break
        end = offset
        if terminator is None:
            def terminator(cpu, _end=end):
                return _end
        executor = self._make_executor(tuple(body), terminator, term_counts)
        block = CompiledBlock(cpu.isa.name, start_pc, end,
                              len(body) + (1 if term_counts else 0),
                              executor)
        self._blocks.stats.compiles += 1
        self._blocks.install(block)
        return block

    def _run_compiled(self, start: int, budget: int) -> None:
        """Dispatch compiled blocks until halt, budget, or slow-path need.

        Preconditions (checked by the caller): no observers, no
        breakpoints, no fault injector.  Returns with ``cpu.pc`` and
        ``steps_executed`` exactly where the per-step loop would have
        them; the caller's loop finishes any remainder.
        """
        cpu = self.cpu
        if cpu.halted:
            return
        remaining = budget - (self.steps_executed - start)
        if remaining <= 0:
            return
        blocks = self._blocks
        isa_name = cpu.isa.name
        block = blocks.lookup(isa_name, cpu.pc)
        if block is None:
            block = self._compile_block(cpu)
            if block is None:
                return
        while True:
            if block.steps > remaining:
                return
            next_pc = to_unsigned(block.execute(cpu))
            remaining -= block.steps
            cpu.pc = next_pc
            if cpu.halted:
                return
            previous = block
            block = previous.chain.get(next_pc)
            if block is None or not block.valid:
                block = blocks.lookup(isa_name, next_pc)
                if block is None:
                    block = self._compile_block(cpu)
                    if block is None:
                        return
                if previous.valid:
                    blocks.link(previous, next_pc, block)

    def _run_compiled_profiled(self, start: int, budget: int) -> None:
        """Profiled twin of :meth:`_run_compiled`.

        Same dispatch, plus per-block entry/step/host-time accounting
        into the block's ``prof_*`` slots — plain attribute bumps, no
        registry lookups on the hot path.  Kept as a separate loop so
        the unprofiled fast path pays nothing for the timers.  A block
        invalidated during its own ``execute`` (decode-cache flush)
        routes its counts through the cache's retired pool instead of
        its now-orphaned slots.
        """
        cpu = self.cpu
        if cpu.halted:
            return
        remaining = budget - (self.steps_executed - start)
        if remaining <= 0:
            return
        blocks = self._blocks
        isa_name = cpu.isa.name
        perf = time.perf_counter
        block = blocks.lookup(isa_name, cpu.pc)
        if block is None:
            block = self._compile_block(cpu)
            if block is None:
                return
        while True:
            if block.steps > remaining:
                return
            before = self.steps_executed
            begin = perf()
            try:
                next_pc = to_unsigned(block.execute(cpu))
            finally:
                elapsed = perf() - begin
                stepped = self.steps_executed - before
                if block.valid:
                    block.prof_entries += 1
                    block.prof_steps += stepped
                    block.prof_seconds += elapsed
                else:
                    blocks.retire_profile(block, 1, stepped, elapsed)
            remaining -= block.steps
            cpu.pc = next_pc
            if cpu.halted:
                return
            previous = block
            block = previous.chain.get(next_pc)
            if block is None or not block.valid:
                block = blocks.lookup(isa_name, next_pc)
                if block is None:
                    block = self._compile_block(cpu)
                    if block is None:
                        return
                if previous.valid:
                    blocks.link(previous, next_pc, block)

    def drain_block_profile(self):
        """Collect and zero the block profiler's accumulated counts."""
        return self._blocks.drain_profile()

    def run(self, max_instructions: int = 1_000_000,
            catch_faults: bool = True) -> ExecutionResult:
        """Run until halt, fault, breakpoint, or the instruction budget.

        With ``catch_faults`` (the default) modelled machine faults become
        part of the result — the behaviour a parent process observes when
        its child crashes, which is what the brute-force attack model needs.
        """
        start = self.steps_executed
        budget = max_instructions
        # Hot loop: hoist the attribute lookups that don't change while
        # running — with no breakpoints set, the membership test is
        # skipped outright (the no-observer warmup fast path).
        cpu = self.cpu
        step = self.step
        breakpoints = self.breakpoints
        injector = _faults.get()
        profiling = False
        try:
            if injector is None and not self.observers and not breakpoints:
                # Threaded-code fast path: dispatch whole compiled blocks.
                # Observers, breakpoints, and chaos injection all need
                # per-instruction visibility, so any of them forces the
                # per-step loop below (which also finishes budget tails
                # smaller than the next block).  With observability on,
                # the profiled twin keeps per-block attribution without
                # leaving the fast path.
                profiling = _obs.enabled()
                if profiling:
                    self._run_compiled_profiled(start, budget)
                else:
                    self._run_compiled(start, budget)
            while not cpu.halted:
                if self.steps_executed - start >= budget:
                    return ExecutionResult(self.steps_executed - start, "limit")
                if breakpoints and cpu.pc in breakpoints:
                    return ExecutionResult(self.steps_executed - start,
                                           "breakpoint")
                step()
                if injector is not None \
                        and (self.steps_executed & 0xFF) == 0:
                    # Chaos: a spurious full decode-cache flush.  Decoding
                    # is pure, so recovery is a transparent re-decode —
                    # but the flush exercises the same invalidation paths
                    # self-modifying code does.
                    event = injector.fire("decode.flush")
                    if event is not None:
                        self.invalidate_decode_cache()
                        _faults.recovered("interpreter.decode", "redecode")
        except MachineFault as fault:
            if not catch_faults:
                raise
            return ExecutionResult(self.steps_executed - start, "fault", fault)
        finally:
            if profiling:
                # Flush even when a fault or a migration request unwinds
                # this frame — the counts are already settled above.
                from ..obs.profile_attr import flush_block_profile
                flush_block_profile(self)
        return ExecutionResult(self.steps_executed - start, "halt")


def _shift_amount(value: int) -> int:
    return value & 31


def _alu_add(cpu, a, b):
    return a + b


def _alu_sub(cpu, a, b):
    return a - b


def _alu_mul(cpu, a, b):
    return to_signed(a) * to_signed(b)


def _alu_div(cpu, a, b):
    if to_signed(b) == 0:
        raise MachineFault(cpu.pc, "integer division by zero")
    return int(to_signed(a) / to_signed(b))  # C-style truncation


def _alu_mod(cpu, a, b):
    if to_signed(b) == 0:
        raise MachineFault(cpu.pc, "integer division by zero")
    sa, sb = to_signed(a), to_signed(b)
    return sa - int(sa / sb) * sb


def _alu_and(cpu, a, b):
    return a & b


def _alu_or(cpu, a, b):
    return a | b


def _alu_xor(cpu, a, b):
    return a ^ b


def _alu_shl(cpu, a, b):
    return a << _shift_amount(b)


def _alu_shr(cpu, a, b):
    return (a & 0xFFFFFFFF) >> _shift_amount(b)


def _alu_sar(cpu, a, b):
    return to_signed(a) >> _shift_amount(b)


_ALU_HANDLERS = {
    Op.ADD: _alu_add,
    Op.SUB: _alu_sub,
    Op.MUL: _alu_mul,
    Op.DIV: _alu_div,
    Op.MOD: _alu_mod,
    Op.AND: _alu_and,
    Op.OR: _alu_or,
    Op.XOR: _alu_xor,
    Op.SHL: _alu_shl,
    Op.SHR: _alu_shr,
    Op.SAR: _alu_sar,
}
