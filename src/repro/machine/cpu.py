"""Architectural CPU state for one core."""

from __future__ import annotations

from typing import List, Optional

from ..isa.base import ISADescription, to_signed, to_unsigned


class CPUState:
    """Register file, program counter, and compare flags for one ISA."""

    __slots__ = ("isa", "regs", "pc", "cmp_value", "halted")

    def __init__(self, isa: ISADescription, pc: int = 0):
        self.isa = isa
        self.regs: List[int] = [0] * isa.num_registers
        self.pc = to_unsigned(pc)
        #: signed result of the last CMP (dst - src); branches test this
        self.cmp_value: int = 0
        self.halted = False

    # ------------------------------------------------------------------
    def get(self, index: int) -> int:
        return self.regs[index]

    def set(self, index: int, value: int) -> None:
        self.regs[index] = to_unsigned(value)

    @property
    def sp(self) -> int:
        return self.regs[self.isa.sp]

    @sp.setter
    def sp(self, value: int) -> None:
        self.regs[self.isa.sp] = to_unsigned(value)

    @property
    def lr(self) -> Optional[int]:
        return None if self.isa.lr is None else self.regs[self.isa.lr]

    @lr.setter
    def lr(self, value: int) -> None:
        if self.isa.lr is None:
            raise AttributeError(f"{self.isa.name} has no link register")
        self.regs[self.isa.lr] = to_unsigned(value)

    def set_compare(self, dst_value: int, src_value: int) -> None:
        self.cmp_value = to_signed(dst_value) - to_signed(src_value)

    def copy(self) -> "CPUState":
        clone = CPUState(self.isa, self.pc)
        clone.regs = list(self.regs)
        clone.cmp_value = self.cmp_value
        clone.halted = self.halted
        return clone

    def snapshot(self) -> dict:
        """A plain-dict snapshot, convenient for assertions in tests."""
        return {
            "isa": self.isa.name,
            "pc": self.pc,
            "regs": list(self.regs),
            "cmp": self.cmp_value,
        }

    def __repr__(self) -> str:
        named = ", ".join(
            f"{self.isa.register_name(i)}={value:#x}"
            for i, value in enumerate(self.regs) if value)
        return f"<CPU {self.isa.name} pc={self.pc:#x} {named}>"
