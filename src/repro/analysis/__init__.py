"""Experiment drivers and reporting for every table/figure of the paper."""

from . import experiments, perfrun, reporting

__all__ = ["experiments", "perfrun", "reporting"]
