"""Experiment drivers: one function per table/figure of the paper.

Every driver returns plain data (lists of dataclass rows or dicts) so
the benchmark harness, tests, and EXPERIMENTS.md generation all consume
the same code path.  See DESIGN.md's experiment index for the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..attacks.bruteforce import BruteForceComparison, simulate_brute_force, table2_row
from ..attacks.galileo import mine_binary
from ..attacks.gadgets import PSRGadgetAnalyzer
from ..attacks.jitrop import JITROPSurface, jitrop_surface
from ..attacks.tailored import (
    entropy_series,
    measure_immunity,
    surviving_vs_probability,
)
from ..core.relocation import PSRConfig
from ..migration.ondemand import classify_blocks, directional_safety
from ..perf.migration_cost import summarize
from ..workloads import (
    ISOMERON_COMPARISON_NAMES,
    SPEC_NAMES,
    WORKLOADS,
    compile_workload,
)
from . import perfrun

#: instruction cap for measured runs — a runaway guard, not a target;
#: perf experiments run their (reduced-size) workloads to completion so
#: every system does equal work
FAST_BUDGET = 4_000_000

#: reduced work parameters for the measured-performance experiments
PERF_WORK = {"bzip2": 1, "gobmk": 1, "hmmer": 1, "lbm": 3, "libquantum": 2,
             "mcf": 3, "milc": 2, "sphinx3": 3, "httpd": 4}


def _perf_binary(name: str):
    return compile_workload(name, PERF_WORK.get(name))


# ----------------------------------------------------------------------
# Figure 3 — classic ROP attack surface
# ----------------------------------------------------------------------
@dataclass
class ClassicROPRow:
    benchmark: str
    total_gadgets: int
    obfuscated: int
    unobfuscated: int

    @property
    def obfuscated_fraction(self) -> float:
        return self.obfuscated / self.total_gadgets if self.total_gadgets else 0.0


def fig3_classic_rop(benchmarks: Sequence[str] = SPEC_NAMES,
                     seed: int = 0) -> List[ClassicROPRow]:
    rows = []
    for name in benchmarks:
        binary = compile_workload(name)
        gadgets = mine_binary(binary, "x86like")
        analyzer = PSRGadgetAnalyzer(binary, "x86like", seed=seed)
        analyses = analyzer.analyze_all(gadgets)
        obfuscated = sum(1 for a in analyses if a.obfuscated)
        rows.append(ClassicROPRow(name, len(analyses), obfuscated,
                                  len(analyses) - obfuscated))
    return rows


# ----------------------------------------------------------------------
# Figure 4 — brute-force attack surface
# ----------------------------------------------------------------------
@dataclass
class BruteForceSurfaceRow:
    benchmark: str
    total_gadgets: int
    surviving: int            # viable for brute force
    eliminated: int

    @property
    def surviving_fraction(self) -> float:
        return self.surviving / self.total_gadgets if self.total_gadgets else 0.0


def fig4_bruteforce_surface(benchmarks: Sequence[str] = SPEC_NAMES,
                            seed: int = 0) -> List[BruteForceSurfaceRow]:
    rows = []
    for name in benchmarks:
        binary = compile_workload(name)
        gadgets = mine_binary(binary, "x86like")
        analyzer = PSRGadgetAnalyzer(binary, "x86like", seed=seed)
        analyses = analyzer.analyze_all(gadgets)
        surviving = sum(1 for a in analyses if a.brute_force_viable)
        rows.append(BruteForceSurfaceRow(name, len(analyses), surviving,
                                         len(analyses) - surviving))
    return rows


# ----------------------------------------------------------------------
# Table 2 — brute-force simulation
# ----------------------------------------------------------------------
def table2_bruteforce(benchmarks: Sequence[str] = SPEC_NAMES,
                      seed: int = 0) -> List[BruteForceComparison]:
    return [table2_row(compile_workload(name), name, seed)
            for name in benchmarks]


# ----------------------------------------------------------------------
# Figure 5 — JIT-ROP attack surface
# ----------------------------------------------------------------------
def fig5_jitrop(benchmarks: Sequence[str] = SPEC_NAMES,
                seed: int = 0,
                steady_state_instructions: int = 400_000,
                ) -> List[JITROPSurface]:
    rows = []
    for name in benchmarks:
        workload = WORKLOADS[name]
        binary = compile_workload(name)
        rows.append(jitrop_surface(
            binary, name, seed=seed, stdin=workload.stdin,
            steady_state_instructions=steady_state_instructions))
    return rows


# ----------------------------------------------------------------------
# Figure 6 — migration-safe basic blocks
# ----------------------------------------------------------------------
@dataclass
class MigrationSafetyRow:
    benchmark: str
    total_blocks: int
    native_fraction: float
    ondemand_fraction: float
    x86_to_arm: float
    arm_to_x86: float


def fig6_migration_safety(benchmarks: Sequence[str] = SPEC_NAMES,
                          ) -> List[MigrationSafetyRow]:
    rows = []
    for name in benchmarks:
        binary = compile_workload(name)
        safety = classify_blocks(binary, name)
        directions = directional_safety(binary, name)
        rows.append(MigrationSafetyRow(
            benchmark=name,
            total_blocks=safety.total_blocks,
            native_fraction=safety.native_fraction,
            ondemand_fraction=safety.ondemand_fraction,
            x86_to_arm=directions["x86_to_arm"],
            arm_to_x86=directions["arm_to_x86"],
        ))
    return rows


# ----------------------------------------------------------------------
# Figure 7 — entropy vs gadget-chain length
# ----------------------------------------------------------------------
def fig7_entropy(chain_lengths: Sequence[int] = tuple(range(1, 13)),
                 psr_bits: float = 13.0,
                 cap: Optional[float] = 1024.0) -> Dict[str, List[float]]:
    return entropy_series(chain_lengths, psr_bits, cap)


# ----------------------------------------------------------------------
# Figure 8 — surviving gadgets vs diversification probability
# ----------------------------------------------------------------------
def fig8_diversification(benchmarks: Sequence[str] = SPEC_NAMES,
                         probabilities: Sequence[float] = tuple(
                             i / 10 for i in range(11)),
                         seed: int = 0) -> Dict[str, List[float]]:
    """Averaged surviving-gadget curves across the suite."""
    totals: Dict[str, List[float]] = {}
    for name in benchmarks:
        binary = compile_workload(name)
        immunity = measure_immunity(binary, name, seed=seed)
        curves = surviving_vs_probability(immunity, probabilities)
        for system, values in curves.items():
            if system not in totals:
                totals[system] = [0.0] * len(probabilities)
            for index, value in enumerate(values):
                totals[system][index] += value
    count = len(benchmarks)
    return {system: [value / count for value in values]
            for system, values in totals.items()}


# ----------------------------------------------------------------------
# Figure 9 — steady-state performance at each optimization level
# ----------------------------------------------------------------------
@dataclass
class OptLevelRow:
    benchmark: str
    #: relative performance vs native (1.0 = native speed) per level
    relative: Dict[str, float]


def fig9_opt_levels(benchmarks: Sequence[str] = SPEC_NAMES, seed: int = 0,
                    budget: int = FAST_BUDGET) -> List[OptLevelRow]:
    rows = []
    for name in benchmarks:
        workload = WORKLOADS[name]
        binary = _perf_binary(name)
        native = perfrun.measure_native(binary, stdin=workload.stdin,
                                        budget=budget)
        relative = {}
        for level in (1, 2, 3):
            measured, _vm = perfrun.measure_psr(
                binary, config=PSRConfig(opt_level=level), seed=seed,
                stdin=workload.stdin, budget=budget)
            relative[f"O{level}"] = measured.relative_to(native)
        rows.append(OptLevelRow(name, relative))
    return rows


# ----------------------------------------------------------------------
# Figure 10 — effect of additional stack randomization space
# ----------------------------------------------------------------------
@dataclass
class StackSizeRow:
    benchmark: str
    #: label ("S8".."S64", KB of randomization space) -> relative perf
    relative: Dict[str, float]


def fig10_stack_sizes(benchmarks: Sequence[str] = SPEC_NAMES, seed: int = 0,
                      budget: int = FAST_BUDGET,
                      pages: Sequence[int] = (2, 4, 8, 16),
                      ) -> List[StackSizeRow]:
    rows = []
    for name in benchmarks:
        workload = WORKLOADS[name]
        binary = _perf_binary(name)
        native = perfrun.measure_native(binary, stdin=workload.stdin,
                                        budget=budget)
        relative = {}
        for page_count in pages:
            measured, _vm = perfrun.measure_psr(
                binary, config=PSRConfig(randomization_pages=page_count),
                seed=seed, stdin=workload.stdin, budget=budget)
            relative[f"S{page_count * 4}"] = measured.relative_to(native)
        rows.append(StackSizeRow(name, relative))
    return rows


# ----------------------------------------------------------------------
# Figure 11 — effect of RAT size
# ----------------------------------------------------------------------
@dataclass
class RATSizeRow:
    benchmark: str
    #: RAT size -> overhead fraction vs the largest RAT (0.0 = none)
    overhead: Dict[int, float]


def fig11_rat_sizes(benchmarks: Sequence[str] = SPEC_NAMES, seed: int = 0,
                    budget: int = FAST_BUDGET,
                    sizes: Sequence[int] = (32, 64, 128, 256, 512, 1024, 2048),
                    ) -> List[RATSizeRow]:
    rows = []
    for name in benchmarks:
        workload = WORKLOADS[name]
        binary = _perf_binary(name)
        measurements = {}
        for size in sizes:
            measured, _vm = perfrun.measure_psr(
                binary, config=PSRConfig(rat_size=size), seed=seed,
                stdin=workload.stdin, budget=budget)
            measurements[size] = measured.seconds
        best = min(measurements.values())
        rows.append(RATSizeRow(name, {
            size: (seconds / best) - 1.0
            for size, seconds in measurements.items()}))
    return rows


# ----------------------------------------------------------------------
# Figure 12 — migration overhead per direction
# ----------------------------------------------------------------------
@dataclass
class MigrationOverheadRow:
    benchmark: str
    arm_to_x86_micros: float
    x86_to_arm_micros: float
    migrations: int


def fig12_migration_overhead(benchmarks: Sequence[str] = SPEC_NAMES,
                             seed: int = 0, budget: int = FAST_BUDGET,
                             checkpoints: int = 10,
                             ) -> List[MigrationOverheadRow]:
    """Force migrations at random execution points; average the costs."""
    rows = []
    for name in benchmarks:
        workload = WORKLOADS[name]
        binary = _perf_binary(name)
        # Spread the forced-migration checkpoints over the workload's
        # actual dynamic length, not the runaway-guard budget.
        native = perfrun.measure_native(binary, stdin=workload.stdin,
                                        budget=budget, warmup=0)
        length = max(native.instructions, 10_000)
        records = []
        for checkpoint in range(checkpoints):
            interval = length // (checkpoints + 2) + 37 * checkpoint
            measured = perfrun.measure_hipstr(
                binary, seed=seed + checkpoint, migration_probability=0.0,
                stdin=workload.stdin, budget=budget,
                phase_interval=max(interval, 1_000), warmup=0)
            records.extend(measured.result.migrations)
        summary = summarize(records)
        rows.append(MigrationOverheadRow(
            benchmark=name,
            arm_to_x86_micros=summary.by_direction["arm_to_x86"],
            x86_to_arm_micros=summary.by_direction["x86_to_arm"],
            migrations=summary.count,
        ))
    return rows


# ----------------------------------------------------------------------
# Figure 13 — effect of code-cache size
# ----------------------------------------------------------------------
@dataclass
class CodeCacheRow:
    benchmark: str
    #: cache size (bytes) -> (capacity misses, security events, overhead)
    by_size: Dict[int, Dict[str, float]]


def fig13_code_cache(benchmarks: Sequence[str] = SPEC_NAMES, seed: int = 0,
                     budget: int = FAST_BUDGET,
                     sizes: Sequence[int] = (2048, 4096, 8192, 16384,
                                             65536, 786432),
                     ) -> List[CodeCacheRow]:
    rows = []
    for name in benchmarks:
        workload = WORKLOADS[name]
        binary = _perf_binary(name)
        by_size: Dict[int, Dict[str, float]] = {}
        baseline: Optional[float] = None
        for size in sorted(sizes, reverse=True):
            measured, vm = perfrun.measure_psr(
                binary, config=PSRConfig(code_cache_size=size), seed=seed,
                stdin=workload.stdin, budget=budget)
            if baseline is None:
                baseline = measured.seconds
            by_size[size] = {
                "capacity_misses": float(vm.cache.stats.capacity_misses),
                "security_events": float(vm.stats.security_events),
                "overhead": measured.seconds / baseline - 1.0,
            }
        rows.append(CodeCacheRow(name, by_size))
    return rows


# ----------------------------------------------------------------------
# Figure 14 — performance comparison with Isomeron
# ----------------------------------------------------------------------
@dataclass
class IsomeronComparisonRow:
    probability: float
    #: system -> average relative performance vs native across benchmarks
    relative: Dict[str, float]


def fig14_isomeron_comparison(
        benchmarks: Sequence[str] = ISOMERON_COMPARISON_NAMES,
        probabilities: Sequence[float] = (0.0, 0.5, 1.0),
        seed: int = 0, budget: int = FAST_BUDGET,
        ) -> List[IsomeronComparisonRow]:
    natives = {}
    binaries = {}
    for name in benchmarks:
        workload = WORKLOADS[name]
        binaries[name] = _perf_binary(name)
        natives[name] = perfrun.measure_native(
            binaries[name], stdin=workload.stdin, budget=budget)

    rows = []
    for probability in probabilities:
        sums: Dict[str, float] = {"isomeron": 0.0, "psr+isomeron": 0.0,
                                  "hipstr-256k": 0.0, "hipstr-2m": 0.0}
        for name in benchmarks:
            workload = WORKLOADS[name]
            binary = binaries[name]
            native = natives[name]
            iso = perfrun.measure_isomeron(
                binary, diversification_probability=probability, seed=seed,
                stdin=workload.stdin, budget=budget)
            sums["isomeron"] += iso.relative_to(native)
            hybrid = perfrun.measure_psr_isomeron(
                binary, diversification_probability=probability, seed=seed,
                stdin=workload.stdin, budget=budget)
            sums["psr+isomeron"] += hybrid.relative_to(native)
            for label, cache in (("hipstr-256k", 256 * 1024),
                                 ("hipstr-2m", 2 * 1024 * 1024)):
                measured = perfrun.measure_hipstr(
                    binary, config=PSRConfig(code_cache_size=cache),
                    seed=seed, migration_probability=probability,
                    stdin=workload.stdin, budget=budget, prewarm=True)
                sums[label] += measured.measurement.relative_to(native)
        rows.append(IsomeronComparisonRow(
            probability=probability,
            relative={system: total / len(benchmarks)
                      for system, total in sums.items()},
        ))
    return rows


# ----------------------------------------------------------------------
# §7.1 httpd case study
# ----------------------------------------------------------------------
@dataclass
class HttpdCaseStudy:
    total_gadgets: int
    obfuscated_fraction: float
    brute_force_attempts: float
    jitrop_viable: int
    surviving_migration: int
    chain_possible: bool


def httpd_case_study(seed: int = 0) -> HttpdCaseStudy:
    workload = WORKLOADS["httpd"]
    binary = compile_workload("httpd")
    gadgets = mine_binary(binary, "x86like")
    analyzer = PSRGadgetAnalyzer(binary, "x86like", seed=seed)
    analyses = analyzer.analyze_all(gadgets)
    obfuscated = sum(1 for a in analyses if a.obfuscated)
    brute = simulate_brute_force(binary, "httpd", seed=seed,
                                 analyses=analyses)
    surface = jitrop_surface(binary, "httpd", seed=seed,
                             stdin=workload.stdin,
                             steady_state_instructions=400_000)
    return HttpdCaseStudy(
        total_gadgets=len(analyses),
        obfuscated_fraction=obfuscated / len(analyses) if analyses else 0.0,
        brute_force_attempts=brute.attempts,
        jitrop_viable=surface.cache_viable,
        surviving_migration=surface.surviving,
        chain_possible=surface.surviving >= 4,
    )
